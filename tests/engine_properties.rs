//! Property-based tests of the whole engine: for random datasets and
//! random skyline specs, the engine (any algorithm, any executor count)
//! must agree with the naive Definition-3.2 oracle.

use proptest::prelude::*;
use sparkline::{Algorithm, DataType, Field, Row, Schema, SessionConfig, SessionContext, Value};
use sparkline_common::{SkylineDim, SkylineSpec, SkylineType};
use sparkline_skyline::{naive_skyline, DominanceChecker};

#[derive(Debug, Clone)]
struct Case {
    rows: Vec<Vec<Option<i64>>>,
    types: Vec<SkylineType>,
    executors: usize,
}

fn case_strategy(allow_null: bool) -> BoxedStrategy<Case> {
    let value = if allow_null {
        prop_oneof![3 => (0i64..7).prop_map(Some), 1 => Just(None)].boxed()
    } else {
        (0i64..7).prop_map(Some).boxed()
    };
    let ty = prop_oneof![
        2 => Just(SkylineType::Min),
        2 => Just(SkylineType::Max),
        1 => Just(SkylineType::Diff),
    ];
    (
        prop::collection::vec(prop::collection::vec(value, 3), 1..60),
        prop::collection::vec(ty, 3),
        1usize..6,
    )
        .prop_map(|(rows, types, executors)| Case {
            rows,
            types,
            executors,
        })
        .boxed()
}

fn run_case(case: &Case, allow_null: bool, algorithm: Algorithm) -> (Vec<String>, Vec<String>) {
    let rows: Vec<Row> = case
        .rows
        .iter()
        .map(|vals| {
            Row::new(
                vals.iter()
                    .map(|v| v.map(Value::Int64).unwrap_or(Value::Null))
                    .collect(),
            )
        })
        .collect();

    // Oracle.
    let spec = SkylineSpec::new(
        case.types
            .iter()
            .enumerate()
            .map(|(i, &ty)| SkylineDim::new(i, ty))
            .collect(),
    );
    let checker = if allow_null {
        DominanceChecker::incomplete(spec)
    } else {
        DominanceChecker::complete(spec)
    };
    let mut expected: Vec<String> = naive_skyline(&rows, &checker)
        .iter()
        .map(|r| r.to_string())
        .collect();
    expected.sort();

    // Engine.
    let ctx = SessionContext::with_config(SessionConfig::default().with_executors(case.executors));
    ctx.register_table(
        "t",
        Schema::new(vec![
            Field::new("a", DataType::Int64, allow_null),
            Field::new("b", DataType::Int64, allow_null),
            Field::new("c", DataType::Int64, allow_null),
        ]),
        rows,
    )
    .unwrap();
    let dims = ["a", "b", "c"]
        .iter()
        .zip(&case.types)
        .map(|(c, ty)| format!("{c} {}", ty.keyword()))
        .collect::<Vec<_>>()
        .join(", ");
    let kw = if allow_null { "" } else { "COMPLETE " };
    let result = ctx
        .sql(&format!("SELECT * FROM t SKYLINE OF {kw}{dims}"))
        .unwrap()
        .collect_with_algorithm(algorithm)
        .unwrap();
    (result.sorted_display(), expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_oracle_complete(case in case_strategy(false)) {
        let (got, expected) = run_case(&case, false, Algorithm::Auto);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn engine_matches_oracle_incomplete(case in case_strategy(true)) {
        let (got, expected) = run_case(&case, true, Algorithm::Auto);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn forced_incomplete_algorithm_matches_oracle_on_complete_data(
        case in case_strategy(false)
    ) {
        let (got, expected) =
            run_case(&case, false, Algorithm::DistributedIncomplete);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn non_distributed_matches_oracle(case in case_strategy(false)) {
        let (got, expected) =
            run_case(&case, false, Algorithm::NonDistributedComplete);
        prop_assert_eq!(got, expected);
    }

    /// The reference rewrite agrees with the oracle on complete data
    /// (Listing 4's SQL semantics coincide with Definition 3.1 when no
    /// NULLs occur).
    #[test]
    fn reference_matches_oracle_on_complete_data(case in case_strategy(false)) {
        // The reference rewrite rejects DIFF-only specs (no strict part);
        // ensure at least one ranked dimension.
        prop_assume!(case.types.iter().any(|t| *t != SkylineType::Diff));
        let (got, expected) = run_case(&case, false, Algorithm::Reference);
        prop_assert_eq!(got, expected);
    }

    /// The Sort-Filter-Skyline extension agrees with the oracle.
    #[test]
    fn sort_filter_skyline_matches_oracle(case in case_strategy(false)) {
        let (got, expected) = run_case(&case, false, Algorithm::SortFilterSkyline);
        prop_assert_eq!(got, expected);
    }
}
