//! Acceptance tests for the pluggable partitioning subsystem and the
//! hierarchical global merge: grid pruning must discard provably dominated
//! cells on anti-correlated data (without changing the skyline), and the
//! tree merge must produce byte-identical results to the paper's flat
//! single-executor merge while actually fanning merge work out.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkline::{
    DataType, Field, MergeStrategy, Row, Schema, SessionConfig, SessionContext, SkylinePartitioning,
};
use sparkline_datagen::distributions::anti_correlated_rows;

fn anti_correlated_session(config: SessionConfig, n: usize, dims: usize) -> SessionContext {
    let ctx = SessionContext::with_config(config);
    let mut rng = StdRng::seed_from_u64(99);
    let rows = anti_correlated_rows(&mut rng, n, dims);
    ctx.register_table(
        "anti",
        Schema::new(
            (0..dims)
                .map(|i| Field::new(format!("d{i}"), DataType::Float64, false))
                .collect(),
        ),
        rows,
    )
    .unwrap();
    ctx
}

const SKYLINE_SQL: &str = "SELECT * FROM anti SKYLINE OF COMPLETE d0 MIN, d1 MIN";

#[test]
fn grid_partitioning_prunes_dominated_cells_on_anti_correlated_data() {
    let standard = anti_correlated_session(SessionConfig::default().with_executors(5), 4_000, 2);
    let grid = anti_correlated_session(
        SessionConfig::default()
            .with_executors(5)
            .with_skyline_partitioning(SkylinePartitioning::Grid),
        4_000,
        2,
    );

    let grid_df = grid.sql(SKYLINE_SQL).unwrap();
    assert!(
        grid_df.explain().unwrap().contains("ExchangeExec [Grid"),
        "{}",
        grid_df.explain().unwrap()
    );
    let grid_result = grid_df.collect().unwrap();
    // The acceptance bar: at least one dominated cell is pruned before the
    // local skyline phase runs, and the pruned rows are accounted for.
    assert!(
        grid_result.metrics.partitions_pruned >= 1,
        "no cell pruned: {:?}",
        grid_result.metrics
    );
    assert!(grid_result.metrics.rows_pruned > 0);
    assert!(grid_result.metrics.corner_tests > 0);

    // Pruning must be invisible in the result.
    let standard_result = standard.sql(SKYLINE_SQL).unwrap().collect().unwrap();
    assert_eq!(
        grid_result.sorted_display(),
        standard_result.sorted_display()
    );
}

#[test]
fn all_partitioning_schemes_agree_on_the_skyline() {
    let expected = anti_correlated_session(SessionConfig::default(), 2_000, 3)
        .sql("SELECT * FROM anti SKYLINE OF COMPLETE d0 MIN, d1 MIN, d2 MIN")
        .unwrap()
        .collect()
        .unwrap()
        .sorted_display();
    for scheme in [
        SkylinePartitioning::Standard,
        SkylinePartitioning::Even,
        SkylinePartitioning::Hash,
        SkylinePartitioning::AngleBased,
        SkylinePartitioning::Grid,
    ] {
        for executors in [1usize, 3, 8] {
            let ctx = anti_correlated_session(
                SessionConfig::default()
                    .with_executors(executors)
                    .with_skyline_partitioning(scheme),
                2_000,
                3,
            );
            let got = ctx
                .sql("SELECT * FROM anti SKYLINE OF COMPLETE d0 MIN, d1 MIN, d2 MIN")
                .unwrap()
                .collect()
                .unwrap()
                .sorted_display();
            assert_eq!(got, expected, "{scheme:?} with {executors} executors");
        }
    }
}

#[test]
fn hierarchical_merge_is_byte_identical_and_parallel() {
    let flat_config = SessionConfig::default()
        .with_executors(8)
        .with_hierarchical_merge_min_partitions(usize::MAX);
    let tree_config = SessionConfig::default()
        .with_executors(8)
        .with_hierarchical_merge_min_partitions(2)
        .with_merge_fan_in(2);

    let flat = anti_correlated_session(flat_config, 3_000, 2)
        .sql(SKYLINE_SQL)
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(
        flat.metrics.merge_rounds, 0,
        "flat merge has no tree rounds"
    );

    let tree_session = anti_correlated_session(tree_config, 3_000, 2);
    let tree_df = tree_session.sql(SKYLINE_SQL).unwrap();
    assert!(
        tree_df.explain().unwrap().contains("hierarchical fan-in 2"),
        "{}",
        tree_df.explain().unwrap()
    );
    let tree = tree_df.collect().unwrap();

    // Byte-identical: same rows in the same order, not just the same set.
    assert_eq!(tree.rows, flat.rows);
    // And the merge actually fanned out over more than one executor: at
    // least one round ran two or more merge tasks concurrently on the
    // 8-executor pool.
    assert!(tree.metrics.merge_rounds >= 2, "{:?}", tree.metrics);
    assert!(tree.metrics.max_merge_fanout > 1, "{:?}", tree.metrics);
    assert!(tree.metrics.merge_tasks > tree.metrics.merge_rounds);
}

#[test]
fn hierarchical_merge_engages_by_executor_count() {
    // Two executors sit below the default threshold: flat plan with the
    // paper's AllTuples gather.
    let small = anti_correlated_session(SessionConfig::default().with_executors(2), 500, 2);
    let explain = small.sql(SKYLINE_SQL).unwrap().explain().unwrap();
    assert!(explain.contains("AllTuples"), "{explain}");
    assert!(!explain.contains("hierarchical"), "{explain}");

    // Eight executors: the tree merge replaces the gather entirely.
    let big = anti_correlated_session(SessionConfig::default().with_executors(8), 500, 2);
    let explain = big.sql(SKYLINE_SQL).unwrap().explain().unwrap();
    assert!(explain.contains("hierarchical fan-in"), "{explain}");
    assert!(!explain.contains("AllTuples"), "{explain}");
}

#[test]
fn grid_pruning_respects_nullable_dimensions() {
    // A nullable dimension routes the query down the incomplete path where
    // grid partitioning (and hence pruning) must not engage.
    let ctx = SessionContext::with_config(
        SessionConfig::default()
            .with_executors(5)
            .with_skyline_partitioning(SkylinePartitioning::Grid),
    );
    let rows: Vec<Row> = (0..100)
        .map(|i: i64| {
            Row::new(vec![
                if i % 7 == 0 {
                    sparkline::Value::Null
                } else {
                    sparkline::Value::Int64(i % 10)
                },
                sparkline::Value::Int64((i * 3) % 10),
            ])
        })
        .collect();
    ctx.register_table(
        "t",
        Schema::new(vec![
            Field::new("a", DataType::Int64, true),
            Field::new("b", DataType::Int64, false),
        ]),
        rows,
    )
    .unwrap();
    let df = ctx.sql("SELECT * FROM t SKYLINE OF a MIN, b MIN").unwrap();
    let explain = df.explain().unwrap();
    assert!(explain.contains("IncompleteGlobalSkylineExec"), "{explain}");
    assert!(!explain.contains("Grid"), "{explain}");
    let result = df.collect().unwrap();
    assert_eq!(result.metrics.partitions_pruned, 0);
    // The incomplete family now tree-merges its global phase at this
    // executor count (PR 5); only the *grid* machinery must stay out.
    // Pinning the merge flat via the knob restores the paper's plan.
    let flat_ctx = ctx.with_shared_catalog(
        SessionConfig::default()
            .with_executors(5)
            .with_skyline_partitioning(SkylinePartitioning::Grid)
            .with_incomplete_tree_merge(false),
    );
    let flat = flat_ctx
        .sql("SELECT * FROM t SKYLINE OF a MIN, b MIN")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(flat.metrics.merge_rounds, 0);
    assert_eq!(flat.metrics.partitions_pruned, 0);
    assert_eq!(flat.sorted_display(), result.sorted_display());
}

#[test]
fn merge_strategy_is_exposed_in_the_public_api() {
    // The config knobs round-trip (smoke test for the core re-exports).
    let config = SessionConfig::default()
        .with_merge_fan_in(3)
        .with_grid_cells_per_dim(8)
        .with_hierarchical_merge_min_partitions(6);
    assert_eq!(config.merge_fan_in, 3);
    assert_eq!(config.grid_cells_per_dim, 8);
    assert_eq!(config.hierarchical_merge_min_partitions, 6);
    let _ = MergeStrategy::Hierarchical { fan_in: 3 };
}
