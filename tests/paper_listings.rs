//! Every SQL listing of the paper, executed end to end: the running hotel
//! example (Listings 1/2), the general syntax (Listing 3), the rewrite
//! schema (Listing 4), and the MusicBrainz queries of Appendix E
//! (Listings 11–14).

use sparkline::{DataType, Field, Row, Schema, SessionContext, Value};
use sparkline_datagen::{musicbrainz, register_musicbrainz, Variant};

fn hotels() -> SessionContext {
    let ctx = SessionContext::new();
    ctx.register_table(
        "hotels",
        Schema::new(vec![
            Field::new("price", DataType::Float64, false),
            Field::new("user_rating", DataType::Int64, false),
            Field::new("beach_distance", DataType::Float64, false),
        ]),
        vec![
            Row::new(vec![50.0.into(), 7.into(), 0.3.into()]),
            Row::new(vec![80.0.into(), 9.into(), 1.0.into()]),
            Row::new(vec![65.0.into(), 7.into(), 0.5.into()]), // dominated
            Row::new(vec![50.0.into(), 7.into(), 0.3.into()]), // duplicate
            Row::new(vec![120.0.into(), 10.into(), 2.0.into()]),
        ],
    )
    .unwrap();
    ctx
}

/// Listing 1: the hotel skyline in plain SQL.
#[test]
fn listing_1_plain_sql() {
    let ctx = hotels();
    let result = ctx
        .sql(
            "SELECT price, user_rating FROM hotels AS o WHERE NOT EXISTS( \
               SELECT * FROM hotels AS i WHERE \
                 i.price <= o.price AND i.user_rating >= o.user_rating \
                 AND (i.price < o.price OR i.user_rating > o.user_rating));",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(result.num_rows(), 4); // incl. the duplicate optimum
}

/// Listing 2: the same query in the extended syntax.
#[test]
fn listing_2_integrated_syntax() {
    let ctx = hotels();
    let integrated = ctx
        .sql("SELECT price, user_rating FROM hotels SKYLINE OF price MIN, user_rating MAX;")
        .unwrap()
        .collect()
        .unwrap();
    let reference = ctx
        .sql(
            "SELECT price, user_rating FROM hotels AS o WHERE NOT EXISTS( \
               SELECT * FROM hotels AS i WHERE \
                 i.price <= o.price AND i.user_rating >= o.user_rating \
                 AND (i.price < o.price OR i.user_rating > o.user_rating));",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(integrated.sorted_display(), reference.sorted_display());
}

/// Listing 3: the full clause grammar — every modifier position.
#[test]
fn listing_3_full_grammar() {
    let ctx = hotels();
    // beach_distance is neither grouped nor aggregated — this must fail
    // (eager) analysis with a clear error, like Spark.
    let err = ctx.sql(
        "SELECT price, user_rating FROM hotels WHERE price > 0 \
         GROUP BY price, user_rating HAVING count(*) >= 1 \
         SKYLINE OF DISTINCT COMPLETE price MIN, user_rating MAX, \
         beach_distance DIFF \
         ORDER BY price",
    );
    assert!(err.is_err());

    let ok = ctx
        .sql(
            "SELECT price, user_rating, beach_distance FROM hotels \
             SKYLINE OF DISTINCT COMPLETE \
             price MIN, user_rating MAX, beach_distance DIFF ORDER BY price",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert!(ok.num_rows() >= 3);
}

/// Listing 4: the general rewrite schema with outer WHERE conditions.
#[test]
fn listing_4_rewrite_with_conditions() {
    let ctx = hotels();
    let integrated = ctx
        .sql(
            "SELECT price, user_rating FROM hotels WHERE price < 100 \
             SKYLINE OF price MIN, user_rating MAX",
        )
        .unwrap()
        .collect()
        .unwrap();
    let rewritten = ctx
        .sql(
            "SELECT price, user_rating FROM hotels AS o WHERE price < 100 AND NOT EXISTS( \
               SELECT * FROM hotels AS i WHERE i.price < 100 \
                 AND i.price <= o.price AND i.user_rating >= o.user_rating \
                 AND (i.price < o.price OR i.user_rating > o.user_rating))",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(integrated.sorted_display(), rewritten.sorted_display());
}

/// Listings 11 + 14: the MusicBrainz complete base query and its skyline.
#[test]
fn listings_11_and_14_musicbrainz_complete() {
    let ctx = SessionContext::new();
    register_musicbrainz(&ctx, 400, 5, Variant::Complete).unwrap();
    let base = ctx
        .sql(&musicbrainz::base_query_complete())
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(base.schema.len(), 7);
    assert_eq!(base.num_rows(), 400);
    let skyline = ctx
        .sql(&musicbrainz::skyline_query(Variant::Complete, 6))
        .unwrap()
        .collect()
        .unwrap();
    assert!(skyline.num_rows() > 0);
    assert!(skyline.num_rows() < base.num_rows());
}

/// Listing 12: the incomplete base query (NULLs flow through).
#[test]
fn listing_12_musicbrainz_incomplete() {
    let ctx = SessionContext::new();
    register_musicbrainz(&ctx, 400, 5, Variant::Incomplete).unwrap();
    let base = ctx
        .sql(&musicbrainz::base_query_incomplete())
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(base.num_rows(), 400);
    let has_nulls = base
        .rows
        .iter()
        .any(|r| r.values().iter().any(Value::is_null));
    assert!(has_nulls, "incomplete base query must expose NULLs");
    let skyline = ctx
        .sql(&musicbrainz::skyline_query(Variant::Incomplete, 4))
        .unwrap()
        .collect()
        .unwrap();
    assert!(skyline.num_rows() < base.num_rows());
}

/// Listing 13: the full reference rewrite of the complex query — the
/// "quite extensive and unwieldy" query the paper contrasts with
/// Listing 14's conciseness.
#[test]
fn listing_13_musicbrainz_reference_rewrite() {
    let ctx = SessionContext::new();
    register_musicbrainz(&ctx, 250, 5, Variant::Complete).unwrap();
    let base = musicbrainz::base_query_complete();
    // The first four Table 13 dimensions: rating MAX, rating_count MAX,
    // length MIN, video MAX — boolean comparisons included, as in the
    // paper's Listing 13.
    let reference_sql = format!(
        "SELECT * FROM ( {base} ) AS o WHERE NOT EXISTS( \
           SELECT * FROM ( {base} ) AS i WHERE \
             i.rating >= o.rating AND \
             i.rating_count >= o.rating_count AND \
             i.length <= o.length AND \
             i.video >= o.video AND ( \
             i.rating > o.rating OR \
             i.rating_count > o.rating_count OR \
             i.length < o.length OR \
             i.video > o.video))"
    );
    let reference = ctx.sql(&reference_sql).unwrap().collect().unwrap();
    let integrated = ctx
        .sql(&musicbrainz::skyline_query(Variant::Complete, 4))
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(integrated.sorted_display(), reference.sorted_display());
}

/// The video flag (boolean skyline dimension) works end to end.
#[test]
fn boolean_skyline_dimension() {
    let ctx = SessionContext::new();
    register_musicbrainz(&ctx, 300, 8, Variant::Complete).unwrap();
    let result = ctx
        .sql(
            "SELECT id, video FROM recording_complete \
             SKYLINE OF video MAX",
        )
        .unwrap()
        .collect()
        .unwrap();
    // All results have video = true (unless none exists at all).
    assert!(result
        .rows
        .iter()
        .all(|r| r.get(1) == &Value::Boolean(true)));
}
