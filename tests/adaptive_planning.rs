//! Differential harness for the statistics-driven adaptive planner
//! (`SkylineStrategy::Adaptive`) and the representative-point pre-filter.
//!
//! The adaptive plan may pick *any* partitioning scheme, merge strategy,
//! grid granularity, and pre-filter budget — all of which are required to
//! be semantically neutral. This suite pins that down: over the Börzsönyi
//! correlated / independent / anti-correlated matrix × dims {2, 4, 8} ×
//! complete / NULL-bearing inputs, the adaptive result must equal the
//! naive oracle *and* every fixed plan shape (even / hash / angle / grid
//! × flat / hierarchical × scalar / columnar × streaming / materialized),
//! compared as sorted row sets (partitioning legitimately permutes raw
//! order, exactly like `tests/partitioning_properties.rs`).
//!
//! It also locks down determinism (seeded sampling ⇒ repeated `EXPLAIN`s
//! and runs agree) and the pre-filter's no-lost-skyline-point property
//! over random schemas with MIN/MAX/DIFF dims and NULLs.

mod common;

use common::{generate, oracle, run, session_with, skyline_sql, DISTRIBUTIONS};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkline::{
    DataType, Field, Row, Schema, SessionConfig, SessionContext, SkylinePartitioning,
    SkylineStrategy, Value,
};
use sparkline_common::{SkylineDim, SkylineSpec, SkylineType};
use sparkline_skyline::{naive_skyline, DominanceChecker};

const FIXED_SCHEMES: [SkylinePartitioning; 4] = [
    SkylinePartitioning::Even,
    SkylinePartitioning::Hash,
    SkylinePartitioning::AngleBased,
    SkylinePartitioning::Grid,
];

/// Every fixed plan-shape combination: scheme × merge × kernel × model.
fn fixed_configs() -> Vec<(String, SessionConfig)> {
    let mut out = Vec::new();
    for scheme in FIXED_SCHEMES {
        for hierarchical in [false, true] {
            for vectorized in [false, true] {
                for streaming in [false, true] {
                    let config = SessionConfig::default()
                        .with_executors(4)
                        .with_skyline_partitioning(scheme)
                        .with_hierarchical_merge_min_partitions(if hierarchical {
                            2
                        } else {
                            usize::MAX
                        })
                        .with_merge_fan_in(2)
                        .with_vectorized_dominance(vectorized)
                        .with_streaming_execution(streaming);
                    out.push((
                        format!(
                            "{scheme:?}/{}/{}/{}",
                            if hierarchical { "tree" } else { "flat" },
                            if vectorized { "columnar" } else { "scalar" },
                            if streaming { "stream" } else { "mat" },
                        ),
                        config,
                    ));
                }
            }
        }
    }
    out
}

fn adaptive_config() -> SessionConfig {
    SessionConfig::default()
        .with_executors(4)
        .with_skyline_strategy(SkylineStrategy::Adaptive)
        .with_sample_size(64)
}

#[test]
fn adaptive_matches_oracle_and_every_fixed_plan_shape() {
    for dist in DISTRIBUTIONS {
        for dims in [2usize, 4, 8] {
            for with_nulls in [false, true] {
                let n = if dims == 8 { 60 } else { 90 };
                let rows = generate(dist, 11, n, dims, with_nulls);
                let expected = oracle(&rows, dims, with_nulls);
                // The adaptive plan, across kernel × execution model.
                for vectorized in [false, true] {
                    for streaming in [false, true] {
                        let ctx = session_with(
                            rows.clone(),
                            dims,
                            with_nulls,
                            adaptive_config()
                                .with_vectorized_dominance(vectorized)
                                .with_streaming_execution(streaming),
                        );
                        assert_eq!(
                            run(&ctx, dims),
                            expected,
                            "adaptive {dist}/{dims}d/nulls={with_nulls}/v={vectorized}/s={streaming}"
                        );
                    }
                }
                // Every fixed plan shape agrees byte-for-byte (as sorted
                // row sets) with the oracle — and hence with adaptive.
                for (label, config) in fixed_configs() {
                    let ctx = session_with(rows.clone(), dims, with_nulls, config);
                    assert_eq!(
                        run(&ctx, dims),
                        expected,
                        "fixed {label} on {dist}/{dims}d/nulls={with_nulls}"
                    );
                }
            }
        }
    }
}

#[test]
fn adaptive_picks_different_schemes_per_distribution() {
    // Correlated data must plan differently from anti-correlated data —
    // the point of the adaptive subsystem (acceptance criterion of the
    // ext5 experiment, checked here without wall clocks).
    let mut chosen = Vec::new();
    for dist in ["correlated", "anti_correlated"] {
        let rows = generate(dist, 3, 600, 3, false);
        let ctx = session_with(rows, 3, false, adaptive_config().with_sample_size(256));
        let result = ctx.sql(&skyline_sql(3)).unwrap().collect().unwrap();
        assert!(result.metrics.sample_rows > 0, "{dist}: sampled");
        chosen.push((dist, result.metrics.chosen_partitioning_label()));
    }
    assert_ne!(
        chosen[0].1, chosen[1].1,
        "adaptive planning chose one scheme for both distributions: {chosen:?}"
    );
    assert_eq!(chosen[0].1, "grid", "correlated data prunes best on grids");
    assert_eq!(
        chosen[1].1, "angle",
        "anti-correlated data angle-partitions"
    );
}

#[test]
fn prefilter_drops_rows_and_preserves_results() {
    let rows = generate("correlated", 5, 800, 3, false);
    let expected = oracle(&rows, 3, false);
    let on = session_with(
        rows.clone(),
        3,
        false,
        adaptive_config().with_sample_size(128),
    );
    let off = session_with(
        rows,
        3,
        false,
        adaptive_config()
            .with_sample_size(128)
            .with_representative_prefilter(false),
    );
    let r_on = on.sql(&skyline_sql(3)).unwrap().collect().unwrap();
    let r_off = off.sql(&skyline_sql(3)).unwrap().collect().unwrap();
    assert_eq!(r_on.sorted_display(), expected);
    assert_eq!(r_off.sorted_display(), expected);
    assert!(
        r_on.metrics.prefilter_rows_dropped > 0,
        "correlated data must trip the pre-filter: {:?}",
        r_on.metrics
    );
    assert_eq!(r_off.metrics.prefilter_rows_dropped, 0);
    assert!(
        r_off.metrics.sample_rows > 0,
        "sampling drove the plan even with the filter off: {:?}",
        r_off.metrics
    );
}

#[test]
fn repeated_explains_and_runs_are_deterministic() {
    // Seeded sampling: the same query in the same session config must
    // plan identically every time — same EXPLAIN text, same chosen
    // strategy, same sample and pre-filter metrics.
    let make = || {
        session_with(
            generate("independent", 9, 500, 3, false),
            3,
            false,
            adaptive_config(),
        )
    };
    let sql = skyline_sql(3);
    let (a, b) = (make(), make());
    let explain_a = a.sql(&sql).unwrap().explain().unwrap();
    let explain_b = b.sql(&sql).unwrap().explain().unwrap();
    assert_eq!(explain_a, explain_b, "plan must not vary across sessions");
    assert_eq!(
        a.sql(&sql).unwrap().explain().unwrap(),
        explain_a,
        "plan must not vary across repeated EXPLAINs"
    );
    let m1 = a.sql(&sql).unwrap().collect().unwrap().metrics;
    let m2 = a.sql(&sql).unwrap().collect().unwrap().metrics;
    assert_eq!(m1.sample_rows, m2.sample_rows);
    assert_eq!(m1.chosen_partitioning, m2.chosen_partitioning);
    assert_eq!(m1.prefilter_rows_dropped, m2.prefilter_rows_dropped);
    assert_eq!(m1.rows_output, m2.rows_output);
    // A different sampling seed is allowed to plan differently, but must
    // still be self-consistent.
    let c = session_with(
        generate("independent", 9, 500, 3, false),
        3,
        false,
        adaptive_config().with_sample_seed(7),
    );
    let explain_c = c.sql(&sql).unwrap().explain().unwrap();
    assert_eq!(c.sql(&sql).unwrap().explain().unwrap(), explain_c);
}

#[test]
fn adaptive_handles_unsampleable_inputs() {
    // A join input defeats plan-time sampling: adaptive must fall back to
    // the static knobs (no pre-filter, no panic) and stay correct.
    let ctx = SessionContext::with_config(adaptive_config());
    let rows: Vec<Row> = (0..40)
        .map(|i: i64| Row::new(vec![Value::Int64(i), Value::Int64((i * 7) % 40)]))
        .collect();
    ctx.register_table(
        "a",
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("x", DataType::Int64, false),
        ]),
        rows.clone(),
    )
    .unwrap();
    ctx.register_table(
        "b",
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("y", DataType::Int64, false),
        ]),
        rows,
    )
    .unwrap();
    let df = ctx
        .sql("SELECT * FROM a JOIN b ON a.id = b.id SKYLINE OF x MIN, y MIN")
        .unwrap();
    let explain = df.explain().unwrap();
    assert!(
        !explain.contains("SkylinePreFilterExec"),
        "no sample, no pre-filter:\n{explain}"
    );
    let result = df.collect().unwrap();
    assert!(result.num_rows() > 0);
    assert_eq!(result.metrics.sample_rows, 0);
}

#[test]
fn prefilter_respects_where_clauses() {
    // The sample is pushed through the WHERE clause, so a representative
    // point the predicate excludes can never poison the filter. (0,0)
    // dominates everything but is filtered out; every d0 >= 1 row with
    // d1 = 0 must survive.
    let mut rows = vec![Row::new(vec![Value::Float64(0.0), Value::Float64(0.0)])];
    rows.extend((1..40).map(|i| Row::new(vec![Value::Float64(f64::from(i)), Value::Float64(0.0)])));
    let ctx = session_with(rows, 2, false, adaptive_config());
    let result = ctx
        .sql("SELECT * FROM t WHERE d0 >= 1 SKYLINE OF d0 MIN, d1 MIN")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(result.num_rows(), 1);
    assert_eq!(result.rows[0].get(0), &Value::Float64(1.0));
    // The sample is drawn from the filter's *output*: all 39 surviving
    // rows, not a filtered-down remnant of a pre-filter draw.
    assert_eq!(result.metrics.sample_rows, 39);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The pre-filter never drops a true skyline point: filter-on and
    /// filter-off plans agree (and match the oracle) over random schemas
    /// with MIN/MAX/DIFF dimensions and NULL-bearing values under the
    /// declared-COMPLETE relation.
    #[test]
    fn prefilter_on_off_equality(
        seed in 0u64..500,
        n in 1usize..160,
        dims in 2usize..5,
        null_pct in 0u32..25,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let types: Vec<SkylineType> = (0..dims)
            .map(|i| match (seed as usize + i) % 3 {
                0 => SkylineType::Min,
                1 => SkylineType::Max,
                _ => SkylineType::Diff,
            })
            .collect();
        let rows: Vec<Row> = (0..n)
            .map(|_| {
                Row::new(
                    (0..dims)
                        .map(|_| {
                            if rng.gen_range(0u32..100) < null_pct {
                                Value::Null
                            } else {
                                Value::Int64(rng.gen_range(0i64..6))
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let spec = SkylineSpec::new(
            types
                .iter()
                .enumerate()
                .map(|(i, &ty)| SkylineDim::new(i, ty))
                .collect(),
        );
        let checker = DominanceChecker::complete(spec);
        let mut expected: Vec<String> = naive_skyline(&rows, &checker)
            .iter()
            .map(|r| r.to_string())
            .collect();
        expected.sort();
        let dim_list = types
            .iter()
            .enumerate()
            .map(|(i, ty)| format!("d{i} {}", ty.keyword()))
            .collect::<Vec<_>>()
            .join(", ");
        // COMPLETE is declared, so the complete relation applies even to
        // NULL-bearing rows and the pre-filter stays live.
        let sql = format!("SELECT * FROM t SKYLINE OF COMPLETE {dim_list}");
        for prefilter in [true, false] {
            let config = adaptive_config()
                .with_sample_size(32)
                .with_representative_prefilter(prefilter);
            let ctx = SessionContext::with_config(config);
            ctx.register_table(
                "t",
                Schema::new(
                    (0..dims)
                        .map(|i| Field::new(format!("d{i}"), DataType::Int64, true))
                        .collect(),
                ),
                rows.clone(),
            )
            .unwrap();
            let got = ctx.sql(&sql).unwrap().collect().unwrap().sorted_display();
            prop_assert_eq!(
                &got,
                &expected,
                "prefilter={} seed={} n={} dims={} nulls={}%",
                prefilter,
                seed,
                n,
                dims,
                null_pct
            );
        }
    }
}
