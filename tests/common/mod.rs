//! Shared dataset / session / oracle helpers for the integration suites.
//!
//! The Börzsönyi distribution × dimension × NULL-fraction matrix used by
//! `adaptive_planning.rs`, `streaming_equivalence.rs`,
//! `incomplete_semantics.rs`, and `incomplete_merge.rs` is generated here,
//! so every differential harness drives one generator (and a fix to the
//! matrix fixes all suites at once).

// Each integration-test binary compiles its own copy of this module and
// uses only a subset of the helpers.
#![allow(dead_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkline::{DataType, Field, Row, Schema, SessionConfig, SessionContext, Value};
use sparkline_common::{SkylineDim, SkylineSpec};
use sparkline_datagen::distributions::{anti_correlated_rows, correlated_rows, independent_rows};
use sparkline_skyline::{naive_skyline, DominanceChecker};

/// The Börzsönyi workload matrix (§6.1).
pub const DISTRIBUTIONS: [&str; 3] = ["correlated", "independent", "anti_correlated"];

/// Seeded rows of one named distribution.
pub fn distribution_rows(dist: &str, seed: u64, n: usize, dims: usize) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    match dist {
        "correlated" => correlated_rows(&mut rng, n, dims),
        "independent" => independent_rows(&mut rng, n, dims),
        "anti_correlated" => anti_correlated_rows(&mut rng, n, dims),
        other => panic!("unknown distribution {other}"),
    }
}

/// Deterministic light incompleteness: every 5th row loses one value
/// (the `adaptive_planning.rs` pattern).
pub fn null_every_fifth(rows: &mut [Row], dims: usize) {
    for (i, row) in rows.iter_mut().enumerate() {
        if i % 5 == 0 {
            let mut values = row.values().to_vec();
            values[i % dims] = Value::Null;
            *row = Row::new(values);
        }
    }
}

/// Seeded per-value incompleteness: each dimension value independently
/// becomes NULL with probability `null_fraction`.
pub fn inject_nulls(rows: &mut [Row], null_fraction: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for row in rows.iter_mut() {
        let values: Vec<Value> = row
            .values()
            .iter()
            .map(|v| {
                if rng.gen_bool(null_fraction) {
                    Value::Null
                } else {
                    v.clone()
                }
            })
            .collect();
        *row = Row::new(values);
    }
}

/// One cell of the distribution matrix, optionally with the light
/// every-5th-row incompleteness.
pub fn generate(dist: &str, seed: u64, n: usize, dims: usize, with_nulls: bool) -> Vec<Row> {
    let mut rows = distribution_rows(dist, seed, n, dims);
    if with_nulls {
        null_every_fifth(&mut rows, dims);
    }
    rows
}

/// One cell of the distribution matrix with a target per-value NULL
/// fraction (the incomplete-family matrix).
pub fn generate_with_null_fraction(
    dist: &str,
    seed: u64,
    n: usize,
    dims: usize,
    null_fraction: f64,
) -> Vec<Row> {
    let mut rows = distribution_rows(dist, seed, n, dims);
    inject_nulls(&mut rows, null_fraction, seed.wrapping_add(0x9E37));
    rows
}

/// Oracle: naive Definition-3.2 skyline (all dims MIN) under the relation
/// the engine will select (complete for NULL-free data, incomplete
/// otherwise), as sorted display strings.
pub fn oracle(rows: &[Row], dims: usize, incomplete: bool) -> Vec<String> {
    let spec = SkylineSpec::new((0..dims).map(SkylineDim::min).collect());
    let checker = if incomplete {
        DominanceChecker::incomplete(spec)
    } else {
        DominanceChecker::complete(spec)
    };
    let mut v: Vec<String> = naive_skyline(rows, &checker)
        .iter()
        .map(|r| r.to_string())
        .collect();
    v.sort();
    v
}

/// A session over `config` with the rows registered as table `t` with
/// `dims` float columns `d0..dN`.
pub fn session_with(
    rows: Vec<Row>,
    dims: usize,
    nullable: bool,
    config: SessionConfig,
) -> SessionContext {
    let ctx = SessionContext::with_config(config);
    ctx.register_table(
        "t",
        Schema::new(
            (0..dims)
                .map(|i| Field::new(format!("d{i}"), DataType::Float64, nullable))
                .collect(),
        ),
        rows,
    )
    .unwrap();
    ctx
}

/// `SELECT * FROM t SKYLINE OF d0 MIN, ..., dN MIN`.
pub fn skyline_sql(dims: usize) -> String {
    let dim_list = (0..dims)
        .map(|i| format!("d{i} MIN"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("SELECT * FROM t SKYLINE OF {dim_list}")
}

/// Run the all-MIN skyline over `t` and return the sorted display rows.
pub fn run(ctx: &SessionContext, dims: usize) -> Vec<String> {
    ctx.sql(&skyline_sql(dims))
        .unwrap()
        .collect()
        .unwrap()
        .sorted_display()
}

/// Session with a 3-column nullable Int64 table `t` (the
/// `incomplete_semantics.rs` fixture).
pub fn incomplete_session(rows: Vec<Row>) -> SessionContext {
    let ctx = SessionContext::new();
    ctx.register_table(
        "t",
        Schema::new(vec![
            Field::new("a", DataType::Int64, true),
            Field::new("b", DataType::Int64, true),
            Field::new("c", DataType::Int64, true),
        ]),
        rows,
    )
    .unwrap();
    ctx
}

/// A 3-column Int64 row where `None` is NULL.
pub fn row3(a: Option<i64>, b: Option<i64>, c: Option<i64>) -> Row {
    Row::new(vec![
        a.map(Value::Int64).unwrap_or(Value::Null),
        b.map(Value::Int64).unwrap_or(Value::Null),
        c.map(Value::Int64).unwrap_or(Value::Null),
    ])
}
