//! The paper's §5.9 correctness validation: the integrated skyline
//! computation yields the same result as the equivalent plain-SQL query in
//! the style of Listing 4 — across datasets, dimension counts, algorithms,
//! and executor counts.

use sparkline::{Algorithm, SessionConfig, SessionContext};
use sparkline_datagen::{
    airbnb, register_airbnb, register_store_sales, skyline_query_for, store_sales, Variant,
};

/// Build the Listing 4 plain-SQL rewrite for a base table.
fn reference_sql(table: &str, dims: &[(&str, &str)], d: usize) -> String {
    let weak: Vec<String> = dims[..d]
        .iter()
        .map(|(c, ty)| match *ty {
            "MIN" => format!("i.{c} <= o.{c}"),
            "MAX" => format!("i.{c} >= o.{c}"),
            _ => format!("i.{c} = o.{c}"),
        })
        .collect();
    let strict: Vec<String> = dims[..d]
        .iter()
        .filter(|(_, ty)| *ty != "DIFF")
        .map(|(c, ty)| match *ty {
            "MIN" => format!("i.{c} < o.{c}"),
            _ => format!("i.{c} > o.{c}"),
        })
        .collect();
    format!(
        "SELECT * FROM {table} AS o WHERE NOT EXISTS( \
           SELECT * FROM {table} AS i WHERE {} AND ({}))",
        weak.join(" AND "),
        strict.join(" OR ")
    )
}

#[test]
fn airbnb_integrated_equals_handwritten_reference() {
    let ctx = SessionContext::new();
    register_airbnb(&ctx, 1200, 11, Variant::Complete).unwrap();
    for d in 1..=6 {
        let integrated = ctx
            .sql(&skyline_query_for("airbnb", &airbnb::SKYLINE_DIMS, d, true))
            .unwrap()
            .collect()
            .unwrap();
        let reference = ctx
            .sql(&reference_sql("airbnb", &airbnb::SKYLINE_DIMS, d))
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(
            integrated.sorted_display(),
            reference.sorted_display(),
            "dims={d}"
        );
    }
}

#[test]
fn store_sales_integrated_equals_reference_algorithm() {
    let ctx = SessionContext::new();
    register_store_sales(&ctx, 1500, 13, Variant::Complete).unwrap();
    for d in [2usize, 4, 6] {
        let df = ctx
            .sql(&skyline_query_for(
                "store_sales",
                &store_sales::SKYLINE_DIMS,
                d,
                true,
            ))
            .unwrap();
        let integrated = df.collect().unwrap();
        let reference = df.collect_with_algorithm(Algorithm::Reference).unwrap();
        assert_eq!(
            integrated.sorted_display(),
            reference.sorted_display(),
            "dims={d}"
        );
    }
}

#[test]
fn all_algorithms_and_executor_counts_agree_on_complete_data() {
    let base = SessionContext::new();
    register_airbnb(&base, 800, 17, Variant::Complete).unwrap();
    let sql = skyline_query_for("airbnb", &airbnb::SKYLINE_DIMS, 4, true);
    let expected = base.sql(&sql).unwrap().collect().unwrap().sorted_display();
    assert!(!expected.is_empty());
    for executors in [1usize, 3, 7] {
        let ctx = base.with_shared_catalog(SessionConfig::default().with_executors(executors));
        for algorithm in Algorithm::paper_algorithms() {
            let got = ctx
                .sql(&sql)
                .unwrap()
                .collect_with_algorithm(algorithm)
                .unwrap();
            assert_eq!(
                got.sorted_display(),
                expected,
                "{} with {executors} executors",
                algorithm.label()
            );
        }
    }
}

#[test]
fn diff_dimension_equivalence() {
    // DIFF partitions the skyline per group (Definition 3.1); the
    // reference rewrite expresses it as an equality conjunct.
    let ctx = SessionContext::new();
    register_store_sales(&ctx, 800, 23, Variant::Complete).unwrap();
    let integrated = ctx
        .sql(
            "SELECT * FROM store_sales \
             SKYLINE OF COMPLETE ss_quantity DIFF, ss_wholesale_cost MIN, \
             ss_list_price MIN",
        )
        .unwrap()
        .collect()
        .unwrap();
    let reference = ctx
        .sql(
            "SELECT * FROM store_sales AS o WHERE NOT EXISTS( \
               SELECT * FROM store_sales AS i WHERE \
                 i.ss_quantity = o.ss_quantity AND \
                 i.ss_wholesale_cost <= o.ss_wholesale_cost AND \
                 i.ss_list_price <= o.ss_list_price AND ( \
                 i.ss_wholesale_cost < o.ss_wholesale_cost OR \
                 i.ss_list_price < o.ss_list_price))",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(integrated.sorted_display(), reference.sorted_display());
    // Every quantity group contributes at least one tuple.
    assert!(integrated.num_rows() >= 90);
}

#[test]
fn skyline_over_filtered_subquery_equals_reference() {
    let ctx = SessionContext::new();
    register_airbnb(&ctx, 1000, 29, Variant::Complete).unwrap();
    let integrated = ctx
        .sql(
            "SELECT price, beds FROM airbnb WHERE accommodates >= 4 \
             SKYLINE OF price MIN, beds MAX",
        )
        .unwrap()
        .collect()
        .unwrap();
    let reference = ctx
        .sql(
            "SELECT price, beds FROM airbnb AS o WHERE accommodates >= 4 \
             AND NOT EXISTS( \
               SELECT * FROM airbnb AS i WHERE i.accommodates >= 4 AND \
                 i.price <= o.price AND i.beds >= o.beds AND \
                 (i.price < o.price OR i.beds > o.beds))",
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(integrated.sorted_display(), reference.sorted_display());
}
