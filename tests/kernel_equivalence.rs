//! Differential suite for the dominance-kernel knob: forcing
//! `dominance_kernel` to `scalar`, `chunked`, `simd`, or `auto` must be
//! invisible in the results — byte-identical rows in identical order on
//! every cell of the shared Börzsönyi matrix (3 distributions × dims
//! {2, 4, 8} × NULL fractions), on DIFF/MIN/MAX dimension mixes, and on
//! non-numeric DIFF columns that demote the kernel to its scalar
//! fallback. Only the performed-test counters may differ between knobs,
//! and those must attribute the work consistently: the scalar knob
//! batches nothing, the chunked knob runs no SIMD tests, and the SIMD
//! knob reports `simd_tests` exactly when the host has a SIMD tier.

mod common;

use common::{generate_with_null_fraction, oracle, skyline_sql, DISTRIBUTIONS};
use proptest::prelude::*;
use sparkline::{
    DataType, DominanceKernel, Field, Row, Schema, SessionConfig, SessionContext, Value,
};
use sparkline_skyline::KernelTier;

/// Every setting of the knob, scalar baseline first.
const KERNELS: [DominanceKernel; 4] = [
    DominanceKernel::Scalar,
    DominanceKernel::Chunked,
    DominanceKernel::Simd,
    DominanceKernel::Auto,
];

/// A session with the rows as table `t` (`dims` float columns) and the
/// dominance kernel pinned.
fn kernel_session(
    rows: Vec<Row>,
    dims: usize,
    nullable: bool,
    kernel: DominanceKernel,
) -> SessionContext {
    let ctx = SessionContext::with_config(
        SessionConfig::default()
            .with_executors(3)
            .with_dominance_kernel(kernel),
    );
    ctx.register_table(
        "t",
        Schema::new(
            (0..dims)
                .map(|i| Field::new(format!("d{i}"), DataType::Float64, nullable))
                .collect(),
        ),
        rows,
    )
    .unwrap();
    ctx
}

#[test]
fn kernel_knobs_are_byte_identical_across_the_matrix() {
    for dist in DISTRIBUTIONS {
        for dims in [2usize, 4, 8] {
            for null_fraction in [0.0, 0.2] {
                let rows = generate_with_null_fraction(dist, 11, 300, dims, null_fraction);
                let expected = oracle(&rows, dims, null_fraction > 0.0);
                let mut baseline: Option<Vec<Row>> = None;
                for kernel in KERNELS {
                    let ctx = kernel_session(rows.clone(), dims, null_fraction > 0.0, kernel);
                    let result = ctx.sql(&skyline_sql(dims)).unwrap().collect().unwrap();
                    let mut sorted = result.sorted_display();
                    sorted.sort();
                    assert_eq!(
                        sorted, expected,
                        "{dist} dims={dims} nf={null_fraction} {kernel:?} vs oracle"
                    );
                    match &baseline {
                        None => baseline = Some(result.rows),
                        Some(rows) => assert_eq!(
                            &result.rows, rows,
                            "{dist} dims={dims} nf={null_fraction} {kernel:?}: \
                             rows (and their order) must not depend on the knob"
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn kernel_knobs_agree_on_diff_min_max_mixes() {
    for dist in DISTRIBUTIONS {
        let rows = generate_with_null_fraction(dist, 23, 400, 4, 0.0);
        let sql = "SELECT * FROM t SKYLINE OF d0 DIFF, d1 MIN, d2 MAX, d3 MIN";
        let mut baseline: Option<Vec<Row>> = None;
        for kernel in KERNELS {
            let ctx = kernel_session(rows.clone(), 4, false, kernel);
            let result = ctx.sql(sql).unwrap().collect().unwrap();
            let m = result.metrics;
            if kernel == DominanceKernel::Scalar {
                assert_eq!(m.batched_tests, 0, "{dist}: scalar knob must not batch");
                assert!(m.scalar_tests > 0, "{dist}");
            } else {
                // Numeric DIFF dims ride the kernel's equality mask — no
                // scalar demotion.
                assert!(m.batched_tests > 0, "{dist} {kernel:?}: {m:?}");
            }
            match &baseline {
                None => baseline = Some(result.rows),
                Some(rows) => assert_eq!(&result.rows, rows, "{dist} {kernel:?}"),
            }
        }
    }
}

#[test]
fn non_numeric_diff_demotes_every_kernel_to_the_same_scalar_path() {
    // A string DIFF column cannot be encoded; all knobs must agree with
    // the scalar baseline through the fallback.
    let rows: Vec<Row> = (0..120)
        .map(|i: i64| {
            Row::new(vec![
                Value::str(format!("g{}", i % 3)),
                Value::Float64((i % 17) as f64),
                Value::Float64(((i * 7) % 13) as f64),
            ])
        })
        .collect();
    let schema = Schema::new(vec![
        Field::new("g", DataType::Utf8, false),
        Field::new("d1", DataType::Float64, false),
        Field::new("d2", DataType::Float64, false),
    ]);
    let sql = "SELECT * FROM t SKYLINE OF g DIFF, d1 MIN, d2 MIN";
    let mut baseline: Option<Vec<Row>> = None;
    for kernel in KERNELS {
        let ctx = SessionContext::with_config(
            SessionConfig::default()
                .with_executors(2)
                .with_dominance_kernel(kernel),
        );
        ctx.register_table("t", schema.clone(), rows.clone())
            .unwrap();
        let result = ctx.sql(sql).unwrap().collect().unwrap();
        assert!(
            result.metrics.scalar_tests > 0,
            "{kernel:?} demotes to scalar"
        );
        match &baseline {
            None => baseline = Some(result.rows),
            Some(rows) => assert_eq!(&result.rows, rows, "{kernel:?}"),
        }
    }
}

#[test]
fn forced_knobs_attribute_work_to_the_right_tier() {
    let rows = generate_with_null_fraction("independent", 5, 500, 3, 0.0);
    let run = |kernel: DominanceKernel| {
        let ctx = kernel_session(rows.clone(), 3, false, kernel);
        let result = ctx.sql(&skyline_sql(3)).unwrap().collect().unwrap();
        result.metrics
    };

    let scalar = run(DominanceKernel::Scalar);
    assert_eq!(scalar.batched_tests, 0, "{scalar:?}");
    assert_eq!(scalar.simd_tests, 0, "{scalar:?}");
    assert_eq!(scalar.multi_candidate_passes, 0, "{scalar:?}");
    assert_eq!(scalar.scalar_tests, scalar.dominance_tests, "{scalar:?}");

    let chunked = run(DominanceKernel::Chunked);
    assert!(chunked.batched_tests > 0, "{chunked:?}");
    assert_eq!(chunked.simd_tests, 0, "chunked knob must not use SIMD");
    assert!(chunked.multi_candidate_passes > 0, "{chunked:?}");

    let simd = run(DominanceKernel::Simd);
    assert!(simd.batched_tests > 0, "{simd:?}");
    assert!(simd.multi_candidate_passes > 0, "{simd:?}");
    assert!(
        simd.simd_tests <= simd.batched_tests,
        "SIMD tests are a subset of batched tests: {simd:?}"
    );
    if KernelTier::detect().is_simd() {
        assert!(simd.simd_tests > 0, "host has a SIMD tier: {simd:?}");
    } else {
        assert_eq!(simd.simd_tests, 0, "no SIMD tier on this host: {simd:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random small nullable datasets with random MIN/MAX/DIFF dimension
    /// mixes: every kernel knob returns exactly the rows (and order) the
    /// scalar checker produces.
    #[test]
    fn random_specs_are_knob_invariant(
        rows in prop::collection::vec(
            prop::collection::vec(
                prop_oneof![4 => (0i64..8).prop_map(Some), 1 => Just(None)],
                3,
            ),
            1..90,
        ),
        dim_kinds in prop::collection::vec(0u8..3, 2),
        executors in 1usize..4,
    ) {
        let schema = Schema::new(
            (0..3)
                .map(|i| Field::new(format!("d{i}"), DataType::Int64, true))
                .collect(),
        );
        let table: Vec<Row> = rows
            .iter()
            .map(|vals| {
                Row::new(
                    vals.iter()
                        .map(|v| v.map(Value::Int64).unwrap_or(Value::Null))
                        .collect(),
                )
            })
            .collect();
        // d0 is always a strict dimension so the spec stays meaningful.
        let dims: Vec<String> = std::iter::once("d0 MIN".to_string())
            .chain(dim_kinds.iter().enumerate().map(|(i, k)| {
                let kind = match k {
                    0 => "MIN",
                    1 => "MAX",
                    _ => "DIFF",
                };
                format!("d{} {kind}", i + 1)
            }))
            .collect();
        let sql = format!("SELECT * FROM t SKYLINE OF {}", dims.join(", "));
        let mut baseline: Option<Vec<Row>> = None;
        for kernel in KERNELS {
            let ctx = SessionContext::with_config(
                SessionConfig::default()
                    .with_executors(executors)
                    .with_dominance_kernel(kernel),
            );
            ctx.register_table("t", schema.clone(), table.clone()).unwrap();
            let result = ctx.sql(&sql).unwrap().collect().unwrap();
            match &baseline {
                None => baseline = Some(result.rows),
                Some(rows) => prop_assert_eq!(&result.rows, rows, "{:?}", kernel),
            }
        }
    }
}
