//! Differential suite for the out-of-core columnar block storage:
//!
//! * a skyline query over a **disk-resident** table must be
//!   byte-identical to the same query over the same rows held in memory
//!   — across the shared Börzsönyi matrix (± NULLs), the streaming and
//!   materialized execution models, and every dominance-kernel knob;
//! * block skipping (both min/max and dominance) is a pure perf
//!   optimisation: turning it off must not change a single row, and
//!   turning it on must only move work from `blocks_read` to the
//!   `blocks_skipped_*` counters;
//! * `write_table` → `DiskTable::open` → decode is a lossless round
//!   trip (property-tested, including NULLs and negative values).

mod common;

use common::{generate, oracle, run, session_with, skyline_sql, DISTRIBUTIONS};
use proptest::prelude::*;
use sparkline::{
    DataType, DominanceKernel, Field, Row, Schema, SessionConfig, SessionContext, Value,
};
use sparkline_storage::{write_table, DiskTable, WriterOptions};

/// Self-cleaning scratch directory for block files.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "sparkline-storage-eq-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn file(&self, name: &str) -> std::path::PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A session whose table `t` is the given rows **on disk**: the rows are
/// written to a block file in `dir` and registered as a disk table, so
/// every scan streams blocks through `DiskScanExec`.
fn disk_session(
    rows: Vec<Row>,
    dims: usize,
    nullable: bool,
    config: SessionConfig,
    dir: &TempDir,
    tag: &str,
) -> SessionContext {
    let ctx = session_with(rows, dims, nullable, config);
    let path = dir.file(&format!("{tag}.spk"));
    ctx.copy_table_to_disk("t", &path).unwrap();
    // Replaces the in-memory registration: `t` is now disk-resident.
    ctx.register_disk_table("t", &path).unwrap();
    ctx
}

#[test]
fn disk_tables_match_memory_tables_across_the_matrix() {
    let dir = TempDir::new("matrix");
    for dist in DISTRIBUTIONS {
        for dims in [2usize, 4] {
            for with_nulls in [false, true] {
                for streaming in [true, false] {
                    let rows = generate(dist, 23, 240, dims, with_nulls);
                    let config = SessionConfig::default()
                        .with_executors(3)
                        .with_streaming_execution(streaming)
                        .with_storage_block_rows(64);
                    let mem = session_with(rows.clone(), dims, with_nulls, config.clone());
                    let tag = format!("{dist}-{dims}-{with_nulls}-{streaming}");
                    let disk = disk_session(rows.clone(), dims, with_nulls, config, &dir, &tag);
                    let expected = oracle(&rows, dims, with_nulls);
                    let mem_out = run(&mem, dims);
                    let disk_out = run(&disk, dims);
                    assert_eq!(disk_out, mem_out, "disk vs memory diverged: {tag}");
                    assert_eq!(disk_out, expected, "disk vs oracle diverged: {tag}");
                }
            }
        }
    }
}

#[test]
fn disk_tables_match_memory_tables_on_every_kernel() {
    let dir = TempDir::new("kernels");
    let rows = generate("anti_correlated", 41, 300, 3, false);
    for kernel in [
        DominanceKernel::Scalar,
        DominanceKernel::Chunked,
        DominanceKernel::Simd,
        DominanceKernel::Auto,
    ] {
        let config = SessionConfig::default()
            .with_executors(2)
            .with_dominance_kernel(kernel)
            .with_storage_block_rows(50);
        let mem = session_with(rows.clone(), 3, false, config.clone());
        let disk = disk_session(rows.clone(), 3, false, config, &dir, &format!("{kernel:?}"));
        assert_eq!(
            run(&disk, 3),
            run(&mem, 3),
            "disk vs memory diverged under {kernel:?}"
        );
    }
}

/// Dominance skipping on correlated data: the planner's representative
/// pre-filter points must prune whole blocks (counted, fewer bytes
/// decoded) without changing the result.
#[test]
fn dominance_skipping_is_invisible_and_counted() {
    let dir = TempDir::new("dominance");
    let rows = generate("correlated", 7, 4000, 3, false);
    let base = SessionConfig::default()
        .with_executors(3)
        .with_storage_block_rows(128)
        .with_skyline_strategy(sparkline::SkylineStrategy::Adaptive);
    let sql = skyline_sql(3);

    let on = disk_session(rows.clone(), 3, false, base.clone(), &dir, "on");
    let off = disk_session(
        rows.clone(),
        3,
        false,
        base.with_disk_dominance_skipping(false),
        &dir,
        "off",
    );
    let r_on = on.sql(&sql).unwrap().collect().unwrap();
    let r_off = off.sql(&sql).unwrap().collect().unwrap();
    assert_eq!(r_on.sorted_display(), r_off.sorted_display());

    assert!(
        r_on.metrics.blocks_skipped_dominance > 0,
        "correlated data should let representative points prune blocks: {:?}",
        r_on.metrics
    );
    assert_eq!(r_off.metrics.blocks_skipped_dominance, 0);
    assert!(
        r_on.metrics.bytes_decoded < r_off.metrics.bytes_decoded,
        "skipping must strictly reduce decoded bytes ({} vs {})",
        r_on.metrics.bytes_decoded,
        r_off.metrics.bytes_decoded
    );
    // Every block is accounted for exactly once: read or skipped.
    assert_eq!(
        r_on.metrics.blocks_read + r_on.metrics.blocks_skipped_dominance,
        r_off.metrics.blocks_read
    );
}

/// Min/max skipping on a range-clustered file: blocks whose `d0` range
/// cannot satisfy the pushed-down filter are never read.
#[test]
fn minmax_skipping_prunes_filtered_scans() {
    let dir = TempDir::new("minmax");
    // Sorted by d0 so the 64-row blocks carry disjoint d0 ranges.
    let mut rows = generate("independent", 13, 640, 2, false);
    rows.sort_by(|a, b| {
        let d0 = |r: &Row| match r.get(0) {
            Value::Float64(f) => *f,
            _ => f64::NAN,
        };
        d0(a).partial_cmp(&d0(b)).unwrap()
    });
    let config = SessionConfig::default()
        .with_executors(2)
        .with_storage_block_rows(64);
    let sql = "SELECT * FROM t WHERE d0 < 0.25 SKYLINE OF d0 MIN, d1 MIN";

    let mem = session_with(rows.clone(), 2, false, config.clone());
    let on = disk_session(rows.clone(), 2, false, config.clone(), &dir, "on");
    let off = disk_session(
        rows.clone(),
        2,
        false,
        config.with_disk_minmax_skipping(false),
        &dir,
        "off",
    );
    let r_mem = mem.sql(sql).unwrap().collect().unwrap();
    let r_on = on.sql(sql).unwrap().collect().unwrap();
    let r_off = off.sql(sql).unwrap().collect().unwrap();
    assert_eq!(r_on.sorted_display(), r_mem.sorted_display());
    assert_eq!(r_on.sorted_display(), r_off.sorted_display());
    assert!(
        r_on.metrics.blocks_skipped_minmax > 0,
        "clustered file + range filter should skip blocks: {:?}",
        r_on.metrics
    );
    assert_eq!(r_off.metrics.blocks_skipped_minmax, 0);
    assert!(r_on.metrics.blocks_read < r_off.metrics.blocks_read);
}

/// EXPLAIN over a disk table names the scan and its static skip counts.
#[test]
fn explain_shows_disk_scan_with_skip_counts() {
    let dir = TempDir::new("explain");
    let mut rows = generate("independent", 17, 256, 2, false);
    rows.sort_by(|a, b| {
        let d0 = |r: &Row| match r.get(0) {
            Value::Float64(f) => *f,
            _ => f64::NAN,
        };
        d0(a).partial_cmp(&d0(b)).unwrap()
    });
    let config = SessionConfig::default().with_storage_block_rows(64);
    let ctx = disk_session(rows, 2, false, config, &dir, "explain");
    let plan = ctx
        .sql("SELECT * FROM t WHERE d0 < 0.1 SKYLINE OF d0 MIN, d1 MIN")
        .unwrap()
        .explain()
        .unwrap();
    assert!(
        plan.contains("DiskScanExec") && plan.contains("disk(blocks="),
        "EXPLAIN should tag the disk scan with its block counts:\n{plan}"
    );
}

/// Rows with grid-valued floats (duplicates, negatives) and NULLs.
fn prop_rows(values: Vec<Vec<Option<i32>>>) -> Vec<Row> {
    values
        .into_iter()
        .map(|vals| {
            Row::new(
                vals.into_iter()
                    .map(|v| match v {
                        Some(i) => Value::Float64(f64::from(i) * 0.25),
                        None => Value::Null,
                    })
                    .collect(),
            )
        })
        .collect()
}

fn prop_case() -> BoxedStrategy<(Vec<Vec<Option<i32>>>, usize)> {
    let value = prop_oneof![4 => (-6i32..6).prop_map(Some), 1 => Just(None)];
    (
        prop::collection::vec(prop::collection::vec(value, 3), 1..120),
        1usize..40,
    )
        .boxed()
}

/// write → open → decode every block reproduces the input rows exactly,
/// for any block granularity.
fn check_round_trip(values: Vec<Vec<Option<i32>>>, block_rows: usize) {
    let dir = TempDir::new("roundtrip");
    let rows = prop_rows(values);
    let schema = Schema::new(
        (0..3)
            .map(|i| Field::new(format!("d{i}"), DataType::Float64, true))
            .collect(),
    )
    .into_ref();
    let path = dir.file("t.spk");
    let summary = write_table(
        &path,
        schema,
        &rows,
        WriterOptions {
            block_rows,
            ..WriterOptions::default()
        },
    )
    .unwrap();
    assert_eq!(summary.rows, rows.len() as u64);
    let table = DiskTable::open(&path).unwrap();
    assert_eq!(table.total_rows(), rows.len() as u64);
    let mut decoded = Vec::new();
    for i in 0..table.num_blocks() {
        decoded.extend(table.decode_block(i).unwrap());
    }
    assert_eq!(decoded, rows);
}

/// Block skipping is sound: for random data and block sizes, the disk
/// skyline with both skip kinds on equals skipping off equals the
/// in-memory run.
fn check_skipping_soundness(values: Vec<Vec<Option<i32>>>, block_rows: usize) {
    let dir = TempDir::new("soundness");
    let rows = prop_rows(values);
    let config = SessionConfig::default()
        .with_executors(2)
        .with_storage_block_rows(block_rows)
        .with_skyline_strategy(sparkline::SkylineStrategy::Adaptive);
    let mem = session_with(rows.clone(), 3, true, config.clone());
    let on = disk_session(rows.clone(), 3, true, config.clone(), &dir, "on");
    let off = disk_session(
        rows,
        3,
        true,
        config
            .with_disk_minmax_skipping(false)
            .with_disk_dominance_skipping(false),
        &dir,
        "off",
    );
    let sql = "SELECT * FROM t WHERE d0 < 1.0 SKYLINE OF d0 MIN, d1 MIN, d2 MAX";
    let r_mem = mem.sql(sql).unwrap().collect().unwrap().sorted_display();
    let r_on = on.sql(sql).unwrap().collect().unwrap().sorted_display();
    let r_off = off.sql(sql).unwrap().collect().unwrap().sorted_display();
    assert_eq!(r_on, r_off);
    assert_eq!(r_on, r_mem);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn round_trip_preserves_rows(case in prop_case()) {
        let (values, block_rows) = case;
        check_round_trip(values, block_rows);
    }

    #[test]
    fn skipping_on_equals_skipping_off(case in prop_case()) {
        let (values, block_rows) = case;
        check_skipping_soundness(values, block_rows);
    }
}
