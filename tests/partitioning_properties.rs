//! Partitioning correctness properties: the two-phase skyline must equal
//! the naive Definition-3.2 oracle under **every** partitioning scheme
//! (even / hash / angle / grid) on every benchmark distribution
//! (correlated / independent / anti-correlated), for any executor count —
//! including the empty-input and single-partition edge cases. The scheme
//! may only change *where* tuples are processed (and, for the grid, how
//! many provably dominated tuples are skipped), never the result.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkline::{DataType, Field, Row, Schema, SessionConfig, SessionContext, SkylinePartitioning};
use sparkline_common::{SkylineDim, SkylineSpec};
use sparkline_datagen::distributions::{anti_correlated_rows, correlated_rows, independent_rows};
use sparkline_skyline::{naive_skyline, DominanceChecker};

const SCHEMES: [SkylinePartitioning; 5] = [
    SkylinePartitioning::Standard,
    SkylinePartitioning::Even,
    SkylinePartitioning::Hash,
    SkylinePartitioning::AngleBased,
    SkylinePartitioning::Grid,
];

#[derive(Debug, Clone, Copy, PartialEq)]
enum Distribution {
    Correlated,
    Independent,
    AntiCorrelated,
}

fn generate(dist: Distribution, seed: u64, n: usize, dims: usize) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    match dist {
        Distribution::Correlated => correlated_rows(&mut rng, n, dims),
        Distribution::Independent => independent_rows(&mut rng, n, dims),
        Distribution::AntiCorrelated => anti_correlated_rows(&mut rng, n, dims),
    }
}

/// Oracle skyline (sorted display strings) for MIN dimensions.
fn oracle(rows: &[Row], dims: usize) -> Vec<String> {
    let spec = SkylineSpec::new((0..dims).map(SkylineDim::min).collect());
    let checker = DominanceChecker::complete(spec);
    let mut v: Vec<String> = naive_skyline(rows, &checker)
        .iter()
        .map(|r| r.to_string())
        .collect();
    v.sort();
    v
}

/// Engine skyline (sorted display strings) under one scheme.
fn engine(
    rows: Vec<Row>,
    dims: usize,
    scheme: SkylinePartitioning,
    executors: usize,
) -> Vec<String> {
    let ctx = SessionContext::with_config(
        SessionConfig::default()
            .with_executors(executors)
            .with_skyline_partitioning(scheme),
    );
    ctx.register_table(
        "t",
        Schema::new(
            (0..dims)
                .map(|i| Field::new(format!("d{i}"), DataType::Float64, false))
                .collect(),
        ),
        rows,
    )
    .unwrap();
    let dim_list = (0..dims)
        .map(|i| format!("d{i} MIN"))
        .collect::<Vec<_>>()
        .join(", ");
    ctx.sql(&format!("SELECT * FROM t SKYLINE OF COMPLETE {dim_list}"))
        .unwrap()
        .collect()
        .unwrap()
        .sorted_display()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every scheme × distribution × executor count equals the oracle.
    #[test]
    fn partitioned_two_phase_equals_oracle(
        seed in 0u64..1_000,
        n in 0usize..250,
        executors in 1usize..7,
        dims in 2usize..4,
    ) {
        for dist in [
            Distribution::Correlated,
            Distribution::Independent,
            Distribution::AntiCorrelated,
        ] {
            let rows = generate(dist, seed, n, dims);
            let expected = oracle(&rows, dims);
            for scheme in SCHEMES {
                let got = engine(rows.clone(), dims, scheme, executors);
                prop_assert_eq!(
                    &got,
                    &expected,
                    "{:?} / {:?} / {} executors / {} rows",
                    scheme,
                    dist,
                    executors,
                    n
                );
            }
        }
    }
}

#[test]
fn empty_input_yields_empty_skyline_under_every_scheme() {
    for scheme in SCHEMES {
        for executors in [1usize, 4] {
            let got = engine(Vec::new(), 2, scheme, executors);
            assert!(got.is_empty(), "{scheme:?} with {executors} executors");
        }
    }
}

#[test]
fn single_partition_degenerates_gracefully() {
    // One executor means one partition everywhere: every scheme must
    // degenerate to the direct skyline.
    let rows = generate(Distribution::AntiCorrelated, 7, 300, 3);
    let expected = oracle(&rows, 3);
    for scheme in SCHEMES {
        assert_eq!(
            engine(rows.clone(), 3, scheme, 1),
            expected,
            "{scheme:?} single partition"
        );
    }
}

#[test]
fn more_executors_than_rows_is_sound() {
    let rows = generate(Distribution::Independent, 3, 4, 2);
    let expected = oracle(&rows, 2);
    for scheme in SCHEMES {
        assert_eq!(
            engine(rows.clone(), 2, scheme, 16),
            expected,
            "{scheme:?} with 16 executors / 4 rows"
        );
    }
}
