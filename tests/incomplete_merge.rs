//! Differential harness for the incomplete-data hierarchical global merge
//! (PR 5), in the PR 4 style: over the Börzsönyi correlated / independent
//! / anti-correlated matrix × dims {2, 4, 8} × NULL fractions {0.1, 0.3,
//! 0.6} × partition counts {1, 3, 8} × streaming / materialized execution,
//! the bitmap-class-aware tree merge must equal the paper's flat
//! single-executor all-pairs pass **byte-for-byte** (same rows, same
//! order — the deferred-deletion merge's identity theorem, see
//! `sparkline_skyline::incomplete`), and both must equal the naive
//! Definition-3.2 incomplete oracle as sorted row sets.
//!
//! A proptest locks down the two directions of correctness separately: no
//! true incomplete-skyline member is ever dropped, and no globally
//! dominated tuple survives the deferred-deletion replay.

mod common;

use common::{generate_with_null_fraction, oracle, skyline_sql, DISTRIBUTIONS};
use proptest::prelude::*;
use sparkline::{
    DataType, Field, Row, Schema, SessionConfig, SessionContext, SkylineStrategy, Value,
};
use sparkline_common::{SkylineDim, SkylineSpec};
use sparkline_skyline::{naive_skyline, DominanceChecker};

const NULL_FRACTIONS: [f64; 3] = [0.1, 0.3, 0.6];
const PARTITIONS: [usize; 3] = [1, 3, 8];

fn session(rows: Vec<Row>, dims: usize, config: SessionConfig) -> SessionContext {
    let ctx = SessionContext::with_config(config);
    ctx.register_table(
        "t",
        Schema::new(
            (0..dims)
                .map(|i| Field::new(format!("d{i}"), DataType::Float64, true))
                .collect(),
        ),
        rows,
    )
    .unwrap();
    ctx
}

/// Flat (paper) plan: the knob pins the incomplete global phase to the
/// single-executor all-pairs pass.
fn flat_config(executors: usize, streaming: bool) -> SessionConfig {
    SessionConfig::default()
        .with_executors(executors)
        .with_incomplete_tree_merge(false)
        .with_streaming_execution(streaming)
}

/// Tree plan: the hierarchical merge engages at any executor count.
fn tree_config(executors: usize, streaming: bool) -> SessionConfig {
    SessionConfig::default()
        .with_executors(executors)
        .with_hierarchical_merge_min_partitions(1)
        .with_merge_fan_in(2)
        .with_streaming_execution(streaming)
}

#[test]
fn tree_merge_equals_flat_merge_and_oracle_across_the_matrix() {
    for dist in DISTRIBUTIONS {
        for dims in [2usize, 4, 8] {
            for null_fraction in NULL_FRACTIONS {
                let n = if dims == 8 { 60 } else { 90 };
                let rows = generate_with_null_fraction(dist, 17, n, dims, null_fraction);
                let expected = oracle(&rows, dims, true);
                let sql = skyline_sql(dims);
                for parts in PARTITIONS {
                    for streaming in [true, false] {
                        let label = format!(
                            "{dist}/{dims}d/nulls={null_fraction}/parts={parts}/stream={streaming}"
                        );
                        let flat = session(rows.clone(), dims, flat_config(parts, streaming))
                            .sql(&sql)
                            .unwrap()
                            .collect()
                            .unwrap();
                        let tree = session(rows.clone(), dims, tree_config(parts, streaming))
                            .sql(&sql)
                            .unwrap()
                            .collect()
                            .unwrap();
                        // Byte identity: same rows in the same raw order,
                        // not just as sets.
                        assert_eq!(tree.rows, flat.rows, "{label}");
                        assert_eq!(tree.sorted_display(), expected, "{label} vs oracle");
                        // The deferred-deletion sets agree: flat and tree
                        // flag exactly the same tuples.
                        assert_eq!(
                            tree.metrics.deferred_deletions, flat.metrics.deferred_deletions,
                            "{label} deferred sets"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn scalar_and_vectorized_tree_merges_agree() {
    // The per-class columnar path of the merge must be byte-identical to
    // the scalar flag loop (including its fallbacks).
    for dist in DISTRIBUTIONS {
        let rows = generate_with_null_fraction(dist, 23, 120, 3, 0.3);
        let expected = oracle(&rows, 3, true);
        let sql = skyline_sql(3);
        let run = |vectorized: bool| {
            session(
                rows.clone(),
                3,
                tree_config(5, true).with_vectorized_dominance(vectorized),
            )
            .sql(&sql)
            .unwrap()
            .collect()
            .unwrap()
        };
        let scalar = run(false);
        let vectorized = run(true);
        assert_eq!(scalar.rows, vectorized.rows, "{dist}");
        assert_eq!(scalar.sorted_display(), expected, "{dist}");
        assert_eq!(
            scalar.metrics.deferred_deletions,
            vectorized.metrics.deferred_deletions
        );
    }
}

#[test]
fn tree_merge_parallelizes_and_reports_its_metrics() {
    let rows = generate_with_null_fraction("anti_correlated", 5, 400, 3, 0.3);
    let sql = skyline_sql(3);
    let tree = session(rows.clone(), 3, tree_config(8, true))
        .sql(&sql)
        .unwrap()
        .collect()
        .unwrap();
    let flat = session(rows, 3, flat_config(8, true))
        .sql(&sql)
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(tree.rows, flat.rows);
    let m = &tree.metrics;
    assert!(m.merge_rounds >= 1, "tree rounds ran: {m:?}");
    assert!(m.max_merge_fanout >= 1, "{m:?}");
    assert!(
        m.classes_merged > 1,
        "NULL-bearing data spreads over several bitmap classes: {m:?}"
    );
    assert!(
        m.deferred_deletions > 0,
        "cross-class losers flagged: {m:?}"
    );
    assert_eq!(m.deferred_deletions, flat.metrics.deferred_deletions);
    assert_eq!(flat.metrics.merge_rounds, 0, "flat plan has no tree rounds");
    assert_eq!(flat.metrics.classes_merged, 0, "flat plan reports no merge");
}

#[test]
fn adaptive_strategy_tree_merges_null_bearing_data() {
    // End-to-end: the adaptive planner (satellite fix) reads the sampled
    // NULL fractions and selects the tree merge for the incomplete family
    // once the pool is large enough — results unchanged.
    let rows = generate_with_null_fraction("independent", 11, 300, 3, 0.3);
    let expected = oracle(&rows, 3, true);
    let sql = skyline_sql(3);
    let adaptive = session(
        rows.clone(),
        3,
        SessionConfig::default()
            .with_executors(8)
            .with_skyline_strategy(SkylineStrategy::Adaptive),
    );
    let explain = adaptive.sql(&sql).unwrap().explain().unwrap();
    assert!(
        explain.contains("hierarchical fan-in"),
        "adaptive picks the tree on NULL-bearing data:\n{explain}"
    );
    let result = adaptive.sql(&sql).unwrap().collect().unwrap();
    assert_eq!(result.sorted_display(), expected);
    assert!(result.metrics.merge_rounds >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two-sided correctness of the deferred-deletion replay on random
    /// NULL-bearing data: (a) completeness — no true incomplete-skyline
    /// member is ever dropped by the tree merge; (b) soundness — no
    /// globally dominated tuple survives the replay. Together with the
    /// multiplicity check this is exact multiset equality with the naive
    /// oracle, for every partitioning of the input.
    #[test]
    fn no_member_dropped_and_no_dominated_survivor(
        rows in prop::collection::vec(
            prop::collection::vec(
                prop_oneof![3 => (0i64..6).prop_map(Some), 1 => Just(None)],
                3,
            ),
            1..70,
        ),
        executors in 1usize..9,
        fan_in in 2usize..5,
    ) {
        let table: Vec<Row> = rows
            .iter()
            .map(|r| {
                Row::new(
                    r.iter()
                        .map(|v| v.map(Value::Int64).unwrap_or(Value::Null))
                        .collect(),
                )
            })
            .collect();
        let spec = SkylineSpec::new((0..3).map(SkylineDim::min).collect());
        let checker = DominanceChecker::incomplete(spec);
        let mut expected: Vec<String> = naive_skyline(&table, &checker)
            .iter()
            .map(|r| r.to_string())
            .collect();
        expected.sort();
        let ctx = SessionContext::with_config(
            SessionConfig::default()
                .with_executors(executors)
                .with_hierarchical_merge_min_partitions(1)
                .with_merge_fan_in(fan_in)
                .with_batch_size(16),
        );
        ctx.register_table(
            "t",
            Schema::new(
                (0..3)
                    .map(|i| Field::new(format!("d{i}"), DataType::Int64, true))
                    .collect(),
            ),
            table,
        )
        .unwrap();
        let got = ctx
            .sql("SELECT * FROM t SKYLINE OF d0 MIN, d1 MIN, d2 MIN")
            .unwrap()
            .collect()
            .unwrap()
            .sorted_display();
        for member in &expected {
            prop_assert!(
                got.contains(member),
                "true skyline member dropped: {member} (executors={executors}, fan_in={fan_in})"
            );
        }
        for survivor in &got {
            prop_assert!(
                expected.contains(survivor),
                "dominated tuple survived the replay: {survivor} \
                 (executors={executors}, fan_in={fan_in})"
            );
        }
        prop_assert_eq!(got, expected, "multiset equality");
    }
}
