//! Differential suite for incremental skyline maintenance (the PR 10
//! tentpole) and its satellite bugfixes.
//!
//! The core property: after ANY interleaving of inserts and deletes, a
//! [`MaintainedSkyline`]'s skyline is byte-identical to a cold BNL
//! recompute over the surviving rows — exercised across the shared
//! Börzsönyi matrix (3 distributions × dims {2, 4, 8}), under a
//! proptest over random mutation sequences (including the k=0
//! worst case, where every tracked delete forces a rebuild), and
//! end-to-end through the server's maintained-view cache path, where a
//! mutation refreshes a skyline query's result-cache entry by delta and
//! the served bytes must still equal direct engine execution.
//!
//! Regression coverage for the three satellite bugfixes rides along:
//! quote-aware wire INSERT splitting (round-trip of literals containing
//! `,`/`;`/`''`), cancel-vs-error counters, and validated foreign-key
//! registration that no longer bumps the catalog version on failure.

mod common;

use common::{distribution_rows, DISTRIBUTIONS};
use proptest::prelude::*;
use sparkline::{DataType, Field, Row, Schema, SessionConfig, SessionContext, Value};
use sparkline_common::{SkylineDim, SkylineSpec};
use sparkline_server::{render_rows, QueryService, ServerClient, ServerConfig, SkylineServer};
use sparkline_skyline::{bnl_skyline, DominanceChecker, MaintainedSkyline, SkylineStats};

/// All-MIN spec over `dims` columns.
fn min_spec(dims: usize) -> SkylineSpec {
    SkylineSpec::new((0..dims).map(SkylineDim::min).collect())
}

/// The cold-recompute oracle: order-preserving BNL over the live rows.
fn recompute(rows: &[Row], dims: usize) -> Vec<Row> {
    let checker = DominanceChecker::complete(min_spec(dims));
    bnl_skyline(rows.iter().cloned(), &checker, &mut SkylineStats::default())
}

/// Assert the maintained skyline is byte-identical (rows AND order) to
/// a cold recompute over `live`.
fn assert_matches_recompute(sky: &MaintainedSkyline, live: &[Row], dims: usize, at: &str) {
    let maintained: Vec<String> = sky.skyline_rows().iter().map(|r| r.to_string()).collect();
    let cold: Vec<String> = recompute(live, dims)
        .iter()
        .map(|r| r.to_string())
        .collect();
    assert_eq!(maintained, cold, "maintained != recompute {at}");
}

/// Drive one matrix cell through a deterministic insert/delete
/// interleaving, checking byte-identity with the recompute oracle after
/// every single mutation.
fn drive_cell(dist: &str, dims: usize, k: u32, seed: u64) {
    let rows = distribution_rows(dist, seed, 300, dims);
    let (base, tail) = rows.split_at(200);
    let mut sky = MaintainedSkyline::new(min_spec(dims), k, base).unwrap();
    let mut live: Vec<Row> = base.to_vec();
    assert_matches_recompute(&sky, &live, dims, &format!("{dist}/{dims}d seed"));

    // Interleave: two inserts, then one delete from a rolling position.
    let mut next_delete = 7usize;
    for (i, row) in tail.iter().enumerate() {
        sky.apply_insert(row.clone());
        live.push(row.clone());
        if i % 2 == 1 && !live.is_empty() {
            let pos = next_delete % live.len();
            next_delete = next_delete.wrapping_mul(31).wrapping_add(11);
            sky.apply_delete(pos).unwrap();
            live.remove(pos);
        }
        assert_matches_recompute(&sky, &live, dims, &format!("{dist}/{dims}d step {i}"));
    }
    // Drain the table to empty: the delete path must stay exact all the
    // way down (this crosses the erosion budget repeatedly).
    while !live.is_empty() {
        let pos = next_delete % live.len();
        next_delete = next_delete.wrapping_mul(31).wrapping_add(11);
        sky.apply_delete(pos).unwrap();
        live.remove(pos);
        assert_matches_recompute(&sky, &live, dims, &format!("{dist}/{dims}d drain"));
    }
    assert!(sky.is_empty());
}

#[test]
fn maintained_skyline_matches_recompute_across_the_matrix() {
    for dist in DISTRIBUTIONS {
        for dims in [2usize, 4, 8] {
            drive_cell(dist, dims, 8, 0xB0E5);
        }
    }
}

#[test]
fn zero_skyband_depth_rebuilds_but_stays_exact() {
    // k = 0 tracks only the skyline itself: every tracked delete
    // exhausts the erosion budget and forces a rebuild — the worst case
    // for the maintenance path, still required to be exact.
    for dist in DISTRIBUTIONS {
        drive_cell(dist, 3, 0, 0xD1CE);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random small datasets and random mutation programs: after every
    /// operation the maintained skyline equals a cold recompute.
    #[test]
    fn random_mutation_sequences_stay_exact(
        base in prop::collection::vec(prop::collection::vec(0i64..12, 3), 0..40),
        ops in prop::collection::vec((0u8..3, prop::collection::vec(0i64..12, 3), 0usize..64), 1..60),
        k in 0u32..4,
    ) {
        let to_row = |vals: &Vec<i64>| Row::new(vals.iter().map(|&v| Value::Int64(v)).collect());
        let base_rows: Vec<Row> = base.iter().map(to_row).collect();
        let mut sky = MaintainedSkyline::new(min_spec(3), k, &base_rows).unwrap();
        let mut live = base_rows;
        for (kind, vals, pick) in &ops {
            // kind 0 → insert; 1/2 → delete (when non-empty) so the
            // program is delete-heavy enough to cross erosion budgets.
            if *kind == 0 || live.is_empty() {
                let row = to_row(vals);
                sky.apply_insert(row.clone());
                live.push(row);
            } else {
                let pos = pick % live.len();
                sky.apply_delete(pos).unwrap();
                live.remove(pos);
            }
            let maintained: Vec<String> =
                sky.skyline_rows().iter().map(|r| r.to_string()).collect();
            let cold: Vec<String> =
                recompute(&live, 3).iter().map(|r| r.to_string()).collect();
            prop_assert_eq!(maintained, cold);
        }
    }
}

// ---------------------------------------------------------------------
// Server integration: the maintained-view cache path
// ---------------------------------------------------------------------

fn hotel_schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int64, false),
        Field::new("price", DataType::Int64, false),
        Field::new("rating", DataType::Int64, false),
    ])
}

fn hotel_rows(n: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            let price = (i * 37) % 1000;
            let rating = ((999 - price) + (i * 13) % 200 - 100).max(0);
            Row::new(vec![
                Value::Int64(i),
                Value::Int64(price),
                Value::Int64(rating),
            ])
        })
        .collect()
}

const SKY: &str = "SELECT price, rating FROM hotels SKYLINE OF price MIN, rating MAX";

/// A server whose session runs single-executor (one partition keeps the
/// engine's skyline output in arrival order, the order the maintained
/// view reproduces — the view layer validates this at install time and
/// simply declines to install otherwise).
fn view_server(n: i64) -> SkylineServer {
    let session = SessionConfig::default().with_executors(1);
    let ctx = SessionContext::with_config(session.clone());
    ctx.register_table("hotels", hotel_schema(), hotel_rows(n))
        .unwrap();
    let config = ServerConfig {
        session,
        ..ServerConfig::default()
    };
    SkylineServer::start_with_service(QueryService::with_session(ctx, config)).unwrap()
}

#[test]
fn served_results_after_mutations_match_direct_execution() {
    let server = view_server(240);
    let mut client = ServerClient::connect(server.addr()).unwrap();

    let cold = client.query(SKY).unwrap();
    assert_eq!(cold.result_cache, "miss");
    assert_eq!(
        server.service().view_count(),
        1,
        "skyline query must install a maintained view"
    );

    // A mix of inserts (front-joining and dominated) and deletes; after
    // each mutation the served bytes must equal a direct execution on
    // the same catalog, AND be served from the refreshed cache entry.
    let mutations: &[(&str, &str)] = &[
        ("insert", "9001,3,996"),          // joins the front
        ("insert", "9002,999,0"),          // dominated, band only
        ("delete", "price = 3"),           // remove the new champion
        ("insert", "9003,1,1;9004,2,990"), // two at once
        ("delete", "rating < 50"),         // bulk delete
        ("delete", "price = 123456"),      // matches nothing
    ];
    for (kind, arg) in mutations {
        match *kind {
            "insert" => {
                client.insert("hotels", arg).unwrap();
            }
            _ => {
                client.delete("hotels", Some(arg)).unwrap();
            }
        }
        let served = client.query(SKY).unwrap();
        let direct = render_rows(
            &server
                .service()
                .session()
                .sql(SKY)
                .unwrap()
                .collect()
                .unwrap(),
        );
        assert_eq!(
            served.rows, direct,
            "served bytes diverged after {kind} {arg}"
        );
        assert_eq!(
            served.result_cache, "hit",
            "mutation should refresh, not invalidate ({kind} {arg})"
        );
    }
}

#[test]
fn delete_verb_end_to_end() {
    let server = view_server(50);
    let mut client = ServerClient::connect(server.addr()).unwrap();

    // Predicate delete, no-match delete, and delete-all.
    let removed = client.delete("hotels", Some("id < 10")).unwrap();
    assert_eq!(removed, 10);
    assert_eq!(client.delete("hotels", Some("id < 10")).unwrap(), 0);
    let rest = client.delete("hotels", None).unwrap();
    assert_eq!(rest, 40);
    let empty = client.query("SELECT id FROM hotels").unwrap();
    assert!(empty.rows.is_empty());

    // Errors surface cleanly and keep the connection alive.
    assert!(client.delete("nowhere", None).is_err());
    assert!(client.delete("hotels", Some("no_such_col = 1")).is_err());
    client.ping().unwrap();
}

// ---------------------------------------------------------------------
// Satellite bugfix regressions
// ---------------------------------------------------------------------

#[test]
fn quoted_literals_survive_the_wire_round_trip() {
    // Regression: INSERT row splitting used to tear on ',' and ';'
    // inside string literals.
    let session = SessionConfig::default().with_executors(1);
    let ctx = SessionContext::with_config(session.clone());
    ctx.register_table(
        "guests",
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("name", DataType::Utf8, true),
        ]),
        vec![],
    )
    .unwrap();
    let config = ServerConfig {
        session,
        ..ServerConfig::default()
    };
    let server =
        SkylineServer::start_with_service(QueryService::with_session(ctx, config)).unwrap();
    let mut client = ServerClient::connect(server.addr()).unwrap();

    let count = client
        .insert("guests", "1,'Hotel, The';2,'semi;colon';3,'it''s, fine'")
        .unwrap();
    assert_eq!(count, 3, "three rows, not torn into more");
    let all = client.query("SELECT id, name FROM guests").unwrap();
    assert_eq!(
        all.rows,
        vec![
            "1\tHotel, The".to_string(),
            "2\tsemi;colon".to_string(),
            "3\tit's, fine".to_string(),
        ]
    );

    // The same literal-aware scanning guards the DELETE predicate.
    let removed = client
        .delete("guests", Some("name = 'Hotel, The';"))
        .unwrap();
    assert_eq!(removed, 1);
    assert!(client.insert("guests", "4,'oops").is_err(), "unterminated");
    client.ping().unwrap();
}

#[test]
fn cancelled_queries_do_not_count_as_errors() {
    let ctx = SessionContext::new();
    ctx.register_table("t", hotel_schema(), hotel_rows(50))
        .unwrap();
    let svc = QueryService::with_session(ctx, ServerConfig::default());

    // Cancel delivered before execution: cancelled, not an error.
    let id = svc.register_query();
    assert!(svc.cancel_query(id));
    assert!(svc
        .run_query(id, "SELECT id FROM t")
        .unwrap_err()
        .is_cancelled());

    // A real failure still lands in `errors`.
    let id = svc.register_query();
    assert!(svc.run_query(id, "SELECT nope FROM missing").is_err());

    let stats = svc.stats();
    assert_eq!(stats.queries, 2);
    assert_eq!(stats.cancelled, 1, "{stats:?}");
    assert_eq!(stats.errors, 1, "{stats:?}");
    let line = svc.stats_line();
    assert!(line.contains("cancelled=1"), "{line}");
    assert!(line.contains("errors=1"), "{line}");
}

#[test]
fn foreign_key_validation_rejects_and_never_bumps() {
    let ctx = SessionContext::new();
    ctx.register_table("t", hotel_schema(), vec![]).unwrap();
    ctx.register_table("u", hotel_schema(), vec![]).unwrap();
    let before = ctx.catalog_version();

    // Unknown table, then unknown column: both plan errors, and the
    // catalog version must not move (no cached generation retired).
    let err = ctx
        .register_foreign_key("t", "id", "missing", "id")
        .unwrap_err();
    assert!(err.to_string().contains("unknown table"), "{err}");
    let err = ctx
        .register_foreign_key("t", "no_such_col", "u", "id")
        .unwrap_err();
    assert!(err.to_string().contains("unknown column"), "{err}");
    assert_eq!(ctx.catalog_version(), before, "failed FK bumped version");

    // A valid declaration registers and bumps exactly once.
    ctx.register_foreign_key("t", "id", "u", "id").unwrap();
    assert_eq!(ctx.catalog_version(), before + 1);
}
