//! Integration tests for the multi-tenant query service: concurrent
//! wire clients against direct `SessionContext` execution
//! (byte-identity), cache invalidation across table mutations, and
//! mid-query cancel-by-id from a second connection.

use std::time::{Duration, Instant};

use sparkline::{DataType, Field, Row, Schema, SessionConfig, SessionContext, Value};
use sparkline_server::{render_rows, QueryService, ServerClient, ServerConfig, SkylineServer};

/// A deterministic anti-correlated-ish dataset (no RNG needed: a fixed
/// recurrence), large enough that queries do real skyline work.
fn hotel_rows(n: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            let price = (i * 37) % 1000;
            let rating = ((999 - price) + (i * 13) % 200 - 100).max(0);
            Row::new(vec![
                Value::Int64(i),
                Value::Int64(price),
                Value::Int64(rating),
            ])
        })
        .collect()
}

fn hotel_schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int64, false),
        Field::new("price", DataType::Int64, false),
        Field::new("rating", DataType::Int64, false),
    ])
}

fn session_with_hotels(config: SessionConfig, n: i64) -> SessionContext {
    let ctx = SessionContext::with_config(config);
    ctx.register_table("hotels", hotel_schema(), hotel_rows(n))
        .unwrap();
    ctx
}

const SKY: &str = "SELECT price, rating FROM hotels SKYLINE OF price MIN, rating MAX";

#[test]
fn concurrent_clients_match_direct_execution_byte_for_byte() {
    let ctx = session_with_hotels(SessionConfig::default(), 600);
    // The reference: the same query executed directly on the session,
    // rendered by the same row renderer the server uses.
    let direct = render_rows(&ctx.sql(SKY).unwrap().collect().unwrap());
    assert!(!direct.is_empty());

    let service = QueryService::with_session(ctx, ServerConfig::default());
    let server = SkylineServer::start_with_service(service).unwrap();
    let addr = server.addr();

    // Several spellings that normalize to one cache entry, plus queries
    // issued concurrently from many tenants: every response body must
    // equal the direct rendering, hit or miss.
    let spellings = [
        SKY.to_string(),
        SKY.to_lowercase(),
        format!("  {}  ;", SKY.replace(' ', "  ")),
    ];
    let n_clients = 6;
    let queries_per_client = 4;
    std::thread::scope(|scope| {
        for c in 0..n_clients {
            let direct = &direct;
            let spellings = &spellings;
            scope.spawn(move || {
                let mut client = ServerClient::connect(addr).unwrap();
                client.ping().unwrap();
                for q in 0..queries_per_client {
                    let sql = &spellings[(c + q) % spellings.len()];
                    let response = client.query(sql).unwrap();
                    assert_eq!(
                        &response.rows, direct,
                        "client {c} query {q} diverged (result={})",
                        response.result_cache
                    );
                }
                client.quit().unwrap();
            });
        }
    });

    let stats = server.service().stats();
    assert_eq!(stats.queries, (n_clients * queries_per_client) as u64);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.active, 0);
    // All spellings share one key, so at most one cold miss per catalog
    // version can exist; everything else was served from a cache.
    assert!(
        stats.result_hits >= stats.queries - stats.result_misses,
        "{stats:?}"
    );
    assert!(stats.result_hits > 0, "{stats:?}");
}

#[test]
fn result_cache_misses_after_each_table_mutation() {
    let ctx = session_with_hotels(SessionConfig::default(), 200);
    // Maintained views off: this test pins the *baseline* invalidation
    // path, where every mutation discards the cached generation. (With
    // views on, a skyline query's entry is refreshed by delta instead —
    // covered by tests/incremental_skyline.rs.)
    let config = ServerConfig {
        maintained_views: false,
        ..ServerConfig::default()
    };
    let service = QueryService::with_session(ctx, config);
    let server = SkylineServer::start_with_service(service).unwrap();
    let mut client = ServerClient::connect(server.addr()).unwrap();

    let cold = client.query(SKY).unwrap();
    assert_eq!(cold.result_cache, "miss");
    let hot = client.query(SKY).unwrap();
    assert_eq!(hot.result_cache, "hit");
    assert_eq!(hot.rows, cold.rows);

    // An INSERT bumps the catalog version: the next query must re-run,
    // and (0, 1000) beats every existing point into the skyline.
    let count = client.insert("hotels", "9001,0,1000").unwrap();
    assert_eq!(count, 201);
    let after_insert = client.query(SKY).unwrap();
    assert_eq!(after_insert.result_cache, "miss", "stale hit after insert");
    assert!(after_insert.rows.contains(&"0\t1000".to_string()));
    assert_ne!(after_insert.rows, hot.rows);

    // Re-registering the table (another mutation path) invalidates too.
    server
        .service()
        .session()
        .register_table("hotels", hotel_schema(), hotel_rows(10))
        .unwrap();
    let after_replace = client.query(SKY).unwrap();
    assert_eq!(after_replace.result_cache, "miss");

    // DROP: the table is gone — later queries fail, TABLES is empty.
    assert!(client.drop_table("hotels").unwrap());
    assert!(client.query(SKY).is_err());
    assert!(client.tables().unwrap().is_empty());
}

#[test]
fn cancel_by_id_reaches_a_mid_query_backoff_from_another_connection() {
    // Deterministic slow query: full-rate fault injection makes the
    // first scan attempt fail with a retryable fault, and a huge retry
    // backoff parks the query in QueryControl::backoff_wait — exactly
    // where a cancel must land without waiting out the backoff.
    let session_config = SessionConfig::default()
        .with_fault_injection(0xC0FFEE, 1.0)
        .with_max_retries(3)
        .with_retry_backoff(Duration::from_secs(30));
    let config = ServerConfig {
        session: session_config.clone(),
        ..ServerConfig::default()
    };
    let ctx = session_with_hotels(session_config, 200);
    let service = QueryService::with_session(ctx, config);
    let server = SkylineServer::start_with_service(service).unwrap();

    let mut runner = ServerClient::connect(server.addr()).unwrap();
    let mut canceller = ServerClient::connect(server.addr()).unwrap();

    let started = Instant::now();
    let id = runner.send_query(SKY).unwrap();
    // Give the query a moment to hit the injected fault and enter the
    // backoff wait, then cancel it from the second connection.
    std::thread::sleep(Duration::from_millis(100));
    assert!(canceller.cancel(id).unwrap(), "query {id} not found");
    let err = runner.finish_query(id).unwrap_err();
    let message = err.to_string().to_lowercase();
    assert!(message.contains("cancel"), "{err}");
    // Far less than the 30 s backoff: the wait observed the cancel.
    assert!(started.elapsed() < Duration::from_secs(10));

    // The id was deregistered with the query: a second cancel reports
    // not-delivered, and the server keeps answering.
    assert!(!canceller.cancel(id).unwrap());
    canceller.ping().unwrap();
}

#[test]
fn wire_errors_are_single_line_and_connection_survives() {
    let ctx = session_with_hotels(SessionConfig::default(), 50);
    let service = QueryService::with_session(ctx, ServerConfig::default());
    let server = SkylineServer::start_with_service(service).unwrap();
    let mut client = ServerClient::connect(server.addr()).unwrap();

    // Bad SQL errors but keeps the connection usable.
    assert!(client.query("SELECT nope FROM missing").is_err());
    client.ping().unwrap();
    // Bad insert literal errors cleanly.
    assert!(client.insert("hotels", "not-a-number,2,3").is_err());
    // Insert into a missing table errors cleanly.
    assert!(client.insert("nowhere", "1,2,3").is_err());
    // Valid traffic still flows afterwards.
    assert_eq!(client.tables().unwrap(), vec!["hotels".to_string()]);
    let response = client.query(SKY).unwrap();
    assert!(!response.rows.is_empty());
    let stats = client.stats().unwrap();
    assert!(stats.contains("queries=2"), "{stats}");
    assert!(stats.contains("errors=1"), "{stats}");
    client.quit().unwrap();
}
