//! Streaming-equivalence suite for the pull-based execution model:
//!
//! * every operator, run through the pipelined stream model, must produce
//!   results **byte-identical** (same rows, same order) to the seed's
//!   materialized model (`streaming_execution = false` re-materializes
//!   every operator boundary) — across hand-built plans, all skyline
//!   algorithms, and the Börzsönyi correlated / independent /
//!   anti-correlated datagen distributions;
//! * `LIMIT k` over a large scan must pull only `O(k / batch_size)`
//!   batches and read `O(k)` rows — the short-circuit the stream model
//!   exists for;
//! * the streamed pipeline's `peak_rows_in_flight` must stay strictly
//!   below the materialized model's on a multi-operator pipeline.

mod common;

use common::{distribution_rows, generate_with_null_fraction, DISTRIBUTIONS};
use proptest::prelude::*;
use sparkline::{Algorithm, DataType, Field, Row, Schema, SessionConfig, SessionContext, Value};

/// A session over the given config with a set of shared test tables, all
/// drawn from the shared distribution matrix generator.
fn session_with(config: SessionConfig) -> SessionContext {
    let ctx = SessionContext::with_config(config);
    for (name, dist) in ["corr", "indep", "anti"].iter().zip(DISTRIBUTIONS) {
        let schema = Schema::new(
            (0..3)
                .map(|i| Field::new(format!("d{i}"), DataType::Float64, false))
                .collect(),
        );
        ctx.register_table(*name, schema, distribution_rows(dist, 7, 400, 3))
            .unwrap();
    }
    // An incomplete variant of the independent data, exercising the
    // null-bitmap plan.
    let schema = Schema::new(
        (0..3)
            .map(|i| Field::new(format!("d{i}"), DataType::Float64, true))
            .collect(),
    );
    ctx.register_table(
        "inc",
        schema,
        generate_with_null_fraction("independent", 7, 300, 3, 0.25),
    )
    .unwrap();
    // Small integer tables for joins / aggregates / distinct.
    let g_schema = Schema::new(vec![
        Field::new("k", DataType::Int64, false),
        Field::new("v", DataType::Int64, true),
    ]);
    let g_rows: Vec<Row> = (0..200)
        .map(|i| {
            let v = if i % 9 == 0 {
                Value::Null
            } else {
                Value::Int64((i * 13) % 40)
            };
            Row::new(vec![Value::Int64(i % 7), v])
        })
        .collect();
    ctx.register_table("g", g_schema, g_rows).unwrap();
    let u_schema = Schema::new(vec![
        Field::new("k", DataType::Int64, false),
        Field::new("w", DataType::Int64, false),
    ]);
    let u_rows: Vec<Row> = (0..40)
        .map(|i| Row::new(vec![Value::Int64(i % 11), Value::Int64(i)]))
        .collect();
    ctx.register_table("u", u_schema, u_rows).unwrap();
    ctx
}

fn run_both(config: SessionConfig, sql: &str, algorithm: Algorithm) -> (Vec<Row>, Vec<Row>) {
    let streaming = session_with(config.clone().with_streaming_execution(true));
    let materialized = session_with(config.with_streaming_execution(false));
    let s = streaming
        .sql(sql)
        .and_then(|df| df.collect_with_algorithm(algorithm))
        .unwrap_or_else(|e| panic!("streaming failed for {sql:?}: {e}"));
    let m = materialized
        .sql(sql)
        .and_then(|df| df.collect_with_algorithm(algorithm))
        .unwrap_or_else(|e| panic!("materialized failed for {sql:?}: {e}"));
    (s.rows, m.rows)
}

/// The operator gauntlet: narrow chains, breakers, joins, every skyline
/// algorithm family, on every datagen distribution — streamed and
/// materialized executions must match row-for-row, byte-for-byte.
#[test]
fn streaming_matches_materialized_across_operators() {
    let queries: Vec<(String, Algorithm)> = {
        let mut q: Vec<(String, Algorithm)> = Vec::new();
        for table in ["corr", "indep", "anti"] {
            q.push((format!("SELECT * FROM {table}"), Algorithm::Auto));
            q.push((
                format!("SELECT * FROM {table} WHERE d0 <= 0.8"),
                Algorithm::Auto,
            ));
            q.push((
                format!("SELECT d0 + d1 AS s, d2 FROM {table} LIMIT 37"),
                Algorithm::Auto,
            ));
            q.push((
                format!("SELECT * FROM {table} ORDER BY d0 DESC, d1"),
                Algorithm::Auto,
            ));
            q.push((
                format!("SELECT * FROM {table} SKYLINE OF d0 MIN, d1 MIN, d2 MIN"),
                Algorithm::Auto,
            ));
            q.push((
                format!("SELECT * FROM {table} SKYLINE OF d0 MIN, d1 MAX"),
                Algorithm::DistributedComplete,
            ));
            q.push((
                format!("SELECT * FROM {table} SKYLINE OF d0 MIN, d1 MIN"),
                Algorithm::SortFilterSkyline,
            ));
            q.push((
                format!("SELECT * FROM {table} SKYLINE OF d0 MIN, d1 MIN"),
                Algorithm::NonDistributedComplete,
            ));
            q.push((
                format!("SELECT * FROM {table} SKYLINE OF d0 MIN"),
                Algorithm::Auto, // single-dim → MinMaxFilterExec
            ));
        }
        // Incomplete data: null-bitmap exchange + grouped local phase +
        // all-pairs global (deterministic first-seen class order).
        q.push((
            "SELECT * FROM inc SKYLINE OF d0 MIN, d1 MIN, d2 MIN".into(),
            Algorithm::Auto,
        ));
        q.push((
            "SELECT * FROM inc SKYLINE OF d0 MIN, d1 MAX".into(),
            Algorithm::DistributedIncomplete,
        ));
        // Reference rewrite: NOT EXISTS → anti nested-loop join.
        q.push((
            "SELECT * FROM g SKYLINE OF k MIN, v MAX".into(),
            Algorithm::Reference,
        ));
        // Distinct, aggregation (ordered for a deterministic comparison),
        // and joins (hash + outer).
        q.push(("SELECT DISTINCT k FROM g".into(), Algorithm::Auto));
        q.push((
            "SELECT k, count(*) AS c, sum(v) AS s FROM g GROUP BY k ORDER BY k".into(),
            Algorithm::Auto,
        ));
        q.push((
            "SELECT g.k, g.v, u.w FROM g JOIN u ON g.k = u.k WHERE u.w > 3".into(),
            Algorithm::Auto,
        ));
        q.push((
            "SELECT g.k, u.w FROM g LEFT JOIN u ON g.k = u.k LIMIT 50".into(),
            Algorithm::Auto,
        ));
        q
    };
    for (sql, algorithm) in queries {
        for executors in [1usize, 4] {
            let config = SessionConfig::default()
                .with_executors(executors)
                .with_batch_size(64);
            let (s, m) = run_both(config, &sql, algorithm);
            assert_eq!(
                s, m,
                "streaming vs materialized mismatch for {sql:?} ({algorithm:?}, {executors} executors)"
            );
        }
    }
}

/// Strategy knobs ride along: hierarchical merge, grid partitioning, and
/// the scalar dominance path must all stay byte-identical under streaming.
#[test]
fn streaming_matches_materialized_with_strategy_knobs() {
    use sparkline::SkylinePartitioning;
    let sql = "SELECT * FROM anti SKYLINE OF d0 MIN, d1 MIN, d2 MIN";
    let configs: Vec<SessionConfig> = vec![
        SessionConfig::default()
            .with_executors(5)
            .with_batch_size(32)
            .with_hierarchical_merge_min_partitions(2)
            .with_merge_fan_in(2),
        SessionConfig::default()
            .with_executors(5)
            .with_batch_size(32)
            .with_skyline_partitioning(SkylinePartitioning::Grid),
        SessionConfig::default()
            .with_executors(3)
            .with_batch_size(32)
            .with_skyline_partitioning(SkylinePartitioning::AngleBased),
        SessionConfig::default()
            .with_executors(3)
            .with_batch_size(32)
            .with_vectorized_dominance(false),
    ];
    for config in configs {
        let (s, m) = run_both(config.clone(), sql, Algorithm::DistributedComplete);
        assert_eq!(s, m, "mismatch under {config:?}");
    }
}

/// The short-circuit acceptance criterion: `LIMIT k` over an N-row scan
/// reads O(k) rows and pulls O(k / batch_size) batches, while the
/// materialized model reads all N.
#[test]
fn limit_short_circuits_the_scan() {
    let n: usize = 50_000;
    let schema = Schema::new(vec![Field::new("x", DataType::Int64, false)]);
    let rows: Vec<Row> = (0..n as i64)
        .map(|i| Row::new(vec![Value::Int64(i)]))
        .collect();

    let run = |streaming: bool| {
        let ctx = SessionContext::with_config(
            SessionConfig::default()
                .with_executors(4)
                .with_streaming_execution(streaming),
        );
        ctx.register_table("big", schema.clone(), rows.clone())
            .unwrap();
        // The limit sits above a projection: the pushdown rule moves it
        // below, so the short-circuit reaches the scan.
        ctx.sql("SELECT x + 1 AS y FROM big LIMIT 10")
            .unwrap()
            .collect()
            .unwrap()
    };

    let streamed = run(true);
    assert_eq!(streamed.num_rows(), 10);
    let batch_size = SessionConfig::default().batch_size as u64;
    assert!(
        streamed.metrics.rows_scanned <= 2 * batch_size,
        "scan must stop after O(k) rows, read {} of {n}",
        streamed.metrics.rows_scanned
    );
    // O(k / batch_size) batches end-to-end: one scan batch, one projected
    // batch, one limited batch (plus slack for the boundaries).
    assert!(
        streamed.metrics.batches_emitted <= 8,
        "LIMIT pulled {} batches",
        streamed.metrics.batches_emitted
    );

    let materialized = run(false);
    assert_eq!(materialized.num_rows(), 10);
    assert_eq!(
        materialized.metrics.rows_scanned, n as u64,
        "the materialized model reads everything"
    );
    assert_eq!(streamed.rows, materialized.rows, "same 10 rows either way");
}

/// Bounded peak memory: on a scan → filter → skyline → limit pipeline the
/// streamed execution must hold strictly fewer rows in flight than the
/// materialized model.
#[test]
fn streaming_peak_rows_in_flight_is_below_materialized() {
    let sql = "SELECT * FROM anti WHERE d0 <= 0.9 SKYLINE OF d0 MIN, d1 MIN, d2 MIN LIMIT 16";
    let run = |streaming: bool| {
        let ctx = session_with(
            SessionConfig::default()
                .with_executors(4)
                .with_batch_size(32)
                .with_streaming_execution(streaming),
        );
        ctx.sql(sql).unwrap().collect().unwrap()
    };
    let streamed = run(true);
    let materialized = run(false);
    assert_eq!(streamed.rows, materialized.rows, "byte-identical results");
    assert!(
        streamed.metrics.peak_rows_in_flight < materialized.metrics.peak_rows_in_flight,
        "streaming peak {} must be below materialized peak {}",
        streamed.metrics.peak_rows_in_flight,
        materialized.metrics.peak_rows_in_flight
    );
}

/// EXPLAIN ANALYZE surfaces the stream gauges.
#[test]
fn explain_analyze_reports_stream_gauges() {
    let ctx = session_with(SessionConfig::default().with_executors(2));
    let report = ctx
        .sql("SELECT * FROM indep SKYLINE OF d0 MIN, d1 MIN")
        .unwrap()
        .explain_analyze()
        .unwrap();
    assert!(report.contains("== Physical Plan =="), "{report}");
    assert!(report.contains("batches emitted:"), "{report}");
    assert!(report.contains("peak rows in flight:"), "{report}");
    assert!(report.contains("dominance tests:"), "{report}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random small datasets (with NULLs): the streamed skyline plan —
    /// whichever algorithm Listing 8 selects — matches the materialized
    /// execution byte-for-byte.
    #[test]
    fn random_skylines_stream_identically(
        rows in prop::collection::vec(
            prop::collection::vec(
                prop_oneof![4 => (0i64..8).prop_map(Some), 1 => Just(None)],
                3,
            ),
            1..80,
        ),
        executors in 1usize..5,
    ) {
        let schema = Schema::new(
            (0..3)
                .map(|i| Field::new(format!("c{i}"), DataType::Int64, true))
                .collect(),
        );
        let table: Vec<Row> = rows
            .iter()
            .map(|r| {
                Row::new(
                    r.iter()
                        .map(|v| v.map(Value::Int64).unwrap_or(Value::Null))
                        .collect(),
                )
            })
            .collect();
        let run = |streaming: bool| {
            let ctx = SessionContext::with_config(
                SessionConfig::default()
                    .with_executors(executors)
                    .with_batch_size(16)
                    .with_streaming_execution(streaming),
            );
            ctx.register_table("t", schema.clone(), table.clone()).unwrap();
            ctx.sql("SELECT * FROM t SKYLINE OF c0 MIN, c1 MAX, c2 MIN")
                .unwrap()
                .collect()
                .unwrap()
                .rows
        };
        prop_assert_eq!(run(true), run(false));
    }
}
