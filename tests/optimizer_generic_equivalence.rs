//! Reference-vs-integrated equivalence on the MusicBrainz complex query,
//! with the generic optimizer rules both on and off (promoted from the
//! ad-hoc `examples/_dbg.rs` check into a real regression test): the
//! hand-written `NOT EXISTS` reference query and the integrated
//! `SKYLINE OF` query must agree row-for-row, and toggling the generic
//! optimizations must change neither side.

use sparkline::{SessionConfig, SessionContext};
use sparkline_datagen::{musicbrainz, register_musicbrainz, Variant};

fn reference_sql() -> String {
    let base = musicbrainz::base_query_complete();
    format!(
        "SELECT * FROM ( {base} ) AS o WHERE NOT EXISTS( \
           SELECT * FROM ( {base} ) AS i WHERE \
             i.rating >= o.rating AND i.rating_count >= o.rating_count AND \
             i.length <= o.length AND i.video >= o.video AND ( \
             i.rating > o.rating OR i.rating_count > o.rating_count OR \
             i.length < o.length OR i.video > o.video))"
    )
}

#[test]
fn reference_equals_integrated_with_and_without_generic_optimizations() {
    let mut baseline: Option<Vec<String>> = None;
    for generic in [true, false] {
        let ctx = SessionContext::with_config(
            SessionConfig::default().with_generic_optimizations(generic),
        );
        register_musicbrainz(&ctx, 250, 5, Variant::Complete).unwrap();
        let reference = ctx
            .sql(&reference_sql())
            .unwrap()
            .collect()
            .unwrap()
            .sorted_display();
        let integrated = ctx
            .sql(&musicbrainz::skyline_query(Variant::Complete, 4))
            .unwrap()
            .collect()
            .unwrap()
            .sorted_display();
        assert!(!integrated.is_empty(), "generic={generic}: empty skyline");
        assert_eq!(
            reference, integrated,
            "generic={generic}: reference and integrated skylines diverge"
        );
        // The optimizer toggle must not change the result either.
        match &baseline {
            None => baseline = Some(integrated),
            Some(expected) => assert_eq!(
                &integrated, expected,
                "generic optimizations changed the skyline"
            ),
        }
    }
}
