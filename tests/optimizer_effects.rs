//! Optimizer rules must never change results — only plans and cost. Each
//! §5.4 rule is checked for semantic neutrality and for actually firing.

use sparkline::{Algorithm, SessionConfig, SessionContext};
use sparkline_datagen::{airbnb, register_airbnb, skyline_query_for, Variant};

fn session(config: SessionConfig) -> SessionContext {
    let ctx = SessionContext::with_config(config);
    register_airbnb(&ctx, 1000, 41, Variant::Complete).unwrap();
    // A non-reductive join partner (1:1 on id).
    let rows: Vec<sparkline::Row> = (0..1000i64)
        .map(|i| sparkline::Row::new(vec![i.into(), ((i * 13) % 50).into()]))
        .collect();
    ctx.register_table(
        "scores",
        sparkline::Schema::new(vec![
            sparkline::Field::new("listing_id", sparkline::DataType::Int64, false),
            sparkline::Field::new("score", sparkline::DataType::Int64, false),
        ]),
        rows,
    )
    .unwrap();
    ctx.register_foreign_key("airbnb", "id", "scores", "listing_id")
        .unwrap();
    ctx
}

#[test]
#[allow(clippy::single_element_loop)]
fn single_dim_rewrite_is_semantically_neutral() {
    let on = session(SessionConfig::default().with_single_dim_rewrite(true));
    let off = session(SessionConfig::default().with_single_dim_rewrite(false));
    for (table, dims, complete) in [("airbnb", &airbnb::SKYLINE_DIMS, true)] {
        let sql = skyline_query_for(table, dims, 1, complete);
        let a = on.sql(&sql).unwrap();
        let b = off.sql(&sql).unwrap();
        assert!(a.explain().unwrap().contains("MinMaxFilterExec"));
        assert!(!b.explain().unwrap().contains("MinMaxFilterExec"));
        assert_eq!(
            a.collect().unwrap().sorted_display(),
            b.collect().unwrap().sorted_display()
        );
    }
}

#[test]
fn single_dim_rewrite_handles_max_direction() {
    let ctx = session(SessionConfig::default());
    let sql = "SELECT * FROM airbnb SKYLINE OF accommodates MAX";
    let result = ctx.sql(sql).unwrap().collect().unwrap();
    assert!(result.num_rows() >= 1);
    // All results attain the maximum.
    let max = result
        .rows
        .iter()
        .map(|r| match r.get(2) {
            sparkline::Value::Int64(v) => *v,
            other => panic!("{other:?}"),
        })
        .max()
        .unwrap();
    assert!(result
        .rows
        .iter()
        .all(|r| r.get(2) == &sparkline::Value::Int64(max)));
}

#[test]
fn left_outer_join_pushdown_is_semantically_neutral() {
    let on = session(SessionConfig::default().with_skyline_join_pushdown(true));
    let off = session(SessionConfig::default().with_skyline_join_pushdown(false));
    let sql = "SELECT * FROM airbnb LEFT OUTER JOIN scores \
               ON airbnb.id = scores.listing_id \
               SKYLINE OF price MIN, accommodates MAX";
    let a = on.sql(sql).unwrap();
    let b = off.sql(sql).unwrap();
    // With the rule: the Skyline sits below the join in the plan.
    let explain_on = a.explain().unwrap();
    let plan_section = explain_on
        .split("== Optimized Logical Plan ==")
        .nth(1)
        .unwrap();
    let sky_pos = plan_section.find("Skyline").unwrap();
    let join_pos = plan_section.find("Join").unwrap();
    assert!(sky_pos > join_pos, "skyline below join:\n{explain_on}");
    assert_eq!(
        a.collect().unwrap().sorted_display(),
        b.collect().unwrap().sorted_display()
    );
}

#[test]
fn fk_inner_join_pushdown_is_semantically_neutral() {
    let on = session(SessionConfig::default().with_skyline_join_pushdown(true));
    let off = session(SessionConfig::default().with_skyline_join_pushdown(false));
    // airbnb.id is declared as an FK into scores.listing_id, so every
    // airbnb row has a partner: the inner join is non-reductive.
    let sql = "SELECT * FROM airbnb JOIN scores ON airbnb.id = scores.listing_id \
               SKYLINE OF price MIN, beds MAX";
    assert_eq!(
        on.sql(sql).unwrap().collect().unwrap().sorted_display(),
        off.sql(sql).unwrap().collect().unwrap().sorted_display()
    );
}

#[test]
fn generic_optimizations_are_semantically_neutral() {
    let on = session(SessionConfig::default().with_generic_optimizations(true));
    let off = session(SessionConfig::default().with_generic_optimizations(false));
    let sql = "SELECT price, beds FROM airbnb \
               WHERE price < 500 AND 1 < 2 AND beds >= 1 \
               SKYLINE OF price MIN, beds MAX ORDER BY price LIMIT 50";
    assert_eq!(
        on.sql(sql).unwrap().collect().unwrap().sorted_display(),
        off.sql(sql).unwrap().collect().unwrap().sorted_display()
    );
}

#[test]
fn reference_algorithm_explain_shows_anti_join() {
    let ctx = session(SessionConfig::default());
    let sql = skyline_query_for("airbnb", &airbnb::SKYLINE_DIMS, 3, true);
    let explain = ctx
        .sql(&sql)
        .unwrap()
        .explain_with(Algorithm::Reference)
        .unwrap();
    assert!(explain.contains("LeftAnti"), "{explain}");
    assert!(
        !explain.contains("SkylineExec"),
        "reference plan must not contain skyline operators:\n{explain}"
    );
}

#[test]
fn angle_partitioning_is_semantically_neutral() {
    use sparkline::SkylinePartitioning;
    let standard = session(SessionConfig::default().with_executors(4));
    let angled = session(
        SessionConfig::default()
            .with_executors(4)
            .with_skyline_partitioning(SkylinePartitioning::AngleBased),
    );
    for d in [2usize, 4, 6] {
        let sql = skyline_query_for("airbnb", &airbnb::SKYLINE_DIMS, d, true);
        let a = angled.sql(&sql).unwrap();
        let s = standard.sql(&sql).unwrap();
        if d > 1 {
            assert!(
                a.explain().unwrap().contains("AngleBased"),
                "{}",
                a.explain().unwrap()
            );
        }
        assert_eq!(
            a.collect().unwrap().sorted_display(),
            s.collect().unwrap().sorted_display(),
            "dims={d}"
        );
    }
}

#[test]
fn sort_filter_skyline_algorithm_is_semantically_neutral() {
    let ctx = session(SessionConfig::default().with_executors(3));
    for d in [2usize, 4, 6] {
        let sql = skyline_query_for("airbnb", &airbnb::SKYLINE_DIMS, d, true);
        let df = ctx.sql(&sql).unwrap();
        let bnl = df
            .collect_with_algorithm(Algorithm::DistributedComplete)
            .unwrap();
        let sfs = df
            .collect_with_algorithm(Algorithm::SortFilterSkyline)
            .unwrap();
        assert_eq!(bnl.sorted_display(), sfs.sorted_display(), "dims={d}");
    }
    let explain = ctx
        .sql(&skyline_query_for("airbnb", &airbnb::SKYLINE_DIMS, 3, true))
        .unwrap()
        .explain_with(Algorithm::SortFilterSkyline)
        .unwrap();
    assert!(explain.contains("SFS"), "{explain}");
}

#[test]
fn adaptive_explain_shows_strategy_sample_and_prefilter() {
    use sparkline::SkylineStrategy;
    let ctx = session(
        SessionConfig::default()
            .with_executors(5)
            .with_skyline_strategy(SkylineStrategy::Adaptive),
    );
    let sql = skyline_query_for("airbnb", &airbnb::SKYLINE_DIMS, 3, true);
    let df = ctx.sql(&sql).unwrap();
    // EXPLAIN: the pre-filter node names its point and sample counts, and
    // the custom exchange names the chosen scheme.
    let explain = df.explain().unwrap();
    assert!(
        explain.contains("SkylinePreFilterExec ["),
        "pre-filter node missing:\n{explain}"
    );
    assert!(
        explain.contains("representative points from") && explain.contains("sampled rows"),
        "pre-filter describe must carry its counts:\n{explain}"
    );
    assert!(
        explain.contains("ExchangeExec [Even]")
            || explain.contains("ExchangeExec [Hash")
            || explain.contains("ExchangeExec [AngleBased")
            || explain.contains("ExchangeExec [Grid"),
        "adaptive plan must name its chosen scheme:\n{explain}"
    );
    // EXPLAIN ANALYZE: chosen strategy, sample size, and the pre-filter
    // drop counter render, and render stably across runs (wall-clock and
    // memory lines excluded — everything else must match).
    let analyze = df.explain_analyze().unwrap();
    assert!(analyze.contains("chosen partitioning: "), "{analyze}");
    assert!(analyze.contains("sample rows: "), "{analyze}");
    assert!(analyze.contains("prefilter rows dropped: "), "{analyze}");
    let strategy_line = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("chosen partitioning"))
            .unwrap()
            .to_string()
    };
    assert_ne!(
        strategy_line(&analyze),
        "chosen partitioning: standard",
        "adaptive plan picked a scheme:\n{analyze}"
    );
    // Scheduler-dependent gauges (wall clock, memory, the in-flight
    // peaks and batch counts) legitimately vary run to run; everything
    // else must be stable.
    let stable = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| {
                !l.starts_with("elapsed")
                    && !l.starts_with("peak memory")
                    && !l.starts_with("peak rows in flight")
                    && !l.starts_with("batches emitted")
            })
            .map(str::to_string)
            .collect()
    };
    let again = df.explain_analyze().unwrap();
    assert_eq!(stable(&analyze), stable(&again), "analyze output unstable");
    // The static plan renders the same lines with neutral values.
    let static_ctx = session(SessionConfig::default());
    let static_analyze = static_ctx.sql(&sql).unwrap().explain_analyze().unwrap();
    assert!(static_analyze.contains("chosen partitioning: standard"));
    assert!(static_analyze.contains("sample rows: 0"));
    assert!(static_analyze.contains("prefilter rows dropped: 0"));
}

#[test]
fn adaptive_incomplete_explain_surfaces_the_merge_choice() {
    // Satellite fix (PR 5): `select_adaptive` no longer ignores the
    // per-dimension NULL fractions for the incomplete family — the chosen
    // (or refused) merge strategy and the statistics behind it are
    // rendered in EXPLAIN instead of the static knobs.
    use sparkline::{DataType, Field, Row, Schema, SessionContext, SkylineStrategy, Value};
    let mk_rows = |with_nulls: bool| -> Vec<Row> {
        (0..120i64)
            .map(|i| {
                Row::new(vec![
                    if with_nulls && i % 4 == 0 {
                        Value::Null
                    } else {
                        Value::Int64((i * 7) % 30)
                    },
                    Value::Int64((i * 11) % 30),
                ])
            })
            .collect()
    };
    let mk_ctx = |rows: Vec<Row>, strategy: SkylineStrategy| {
        let ctx = SessionContext::with_config(
            SessionConfig::default()
                .with_executors(8)
                .with_skyline_strategy(strategy),
        );
        ctx.register_table(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int64, true),
                Field::new("b", DataType::Int64, false),
            ]),
            rows,
        )
        .unwrap();
        ctx
    };
    let sql = "SELECT * FROM t SKYLINE OF a MIN, b MIN";
    // NULL-bearing sample → the tree merge is chosen, and EXPLAIN names
    // the decision with the driving statistic.
    let chosen = mk_ctx(mk_rows(true), SkylineStrategy::Adaptive)
        .sql(sql)
        .unwrap()
        .explain()
        .unwrap();
    assert!(
        chosen.contains("IncompleteGlobalSkylineExec"),
        "incomplete family expected:\n{chosen}"
    );
    assert!(
        chosen.contains("hierarchical fan-in") && chosen.contains("adaptive: tree"),
        "chosen strategy must be surfaced:\n{chosen}"
    );
    assert!(
        chosen.contains("max NULL fraction 0.25"),
        "the driving NULL fraction must be surfaced:\n{chosen}"
    );
    // A nullable schema without actual NULLs → a single bitmap class: the
    // tree merge is *refused* and EXPLAIN says so (instead of silently
    // printing the static knobs).
    let refused = mk_ctx(mk_rows(false), SkylineStrategy::Adaptive)
        .sql(sql)
        .unwrap()
        .explain()
        .unwrap();
    assert!(
        refused.contains("adaptive: flat (max NULL fraction 0.00"),
        "refusal must be surfaced with its reason:\n{refused}"
    );
    assert!(
        refused.contains("ExchangeExec [AllTuples]"),
        "refused plan keeps the paper's gather:\n{refused}"
    );
    // Static plans carry no adaptive note — the knobs speak for
    // themselves.
    let static_explain = mk_ctx(mk_rows(true), SkylineStrategy::Auto)
        .sql(sql)
        .unwrap()
        .explain()
        .unwrap();
    assert!(
        !static_explain.contains("adaptive:"),
        "static plan must not claim adaptivity:\n{static_explain}"
    );
    // EXPLAIN ANALYZE surfaces the new counters for the incomplete family.
    let analyze = mk_ctx(mk_rows(true), SkylineStrategy::Adaptive)
        .sql(sql)
        .unwrap()
        .explain_analyze()
        .unwrap();
    assert!(analyze.contains("deferred deletions: "), "{analyze}");
    assert!(analyze.contains("classes merged: "), "{analyze}");
}

#[test]
fn dominance_test_counts_reflect_optimization() {
    // The single-dimension rewrite eliminates dominance tests entirely.
    let ctx = session(SessionConfig::default());
    let sql = skyline_query_for("airbnb", &airbnb::SKYLINE_DIMS, 1, true);
    let result = ctx.sql(&sql).unwrap().collect().unwrap();
    assert_eq!(result.metrics.dominance_tests, 0, "MinMax scan needs none");
    let sql6 = skyline_query_for("airbnb", &airbnb::SKYLINE_DIMS, 6, true);
    let result6 = ctx.sql(&sql6).unwrap().collect().unwrap();
    assert!(result6.metrics.dominance_tests > 0);
}
