//! Fault-tolerance differential suite: deterministic fault injection,
//! partition retry, enforced memory budgets, graceful degradation, and
//! cancellation.
//!
//! The core contract under test: a run with `fault_rate > 0` and retries
//! enabled must return **byte-identical** rows to the fault-free run of
//! the same query (the injector is deterministic and fire-once, so every
//! retry makes strict progress and recomputes the same partition from the
//! same immutable lineage), while a run with retries disabled must fail
//! with a clean, typed error — never a panic.

mod common;

use proptest::prelude::*;
use sparkline::{QueryResult, SessionConfig, SessionContext};
use sparkline_common::Row;
use sparkline_exec::{stream::breaker_streams, TaskContext};

const DIMS: usize = 3;

fn run_query(ctx: &SessionContext) -> QueryResult {
    ctx.sql(&common::skyline_sql(DIMS))
        .unwrap()
        .collect()
        .unwrap()
}

fn try_query(ctx: &SessionContext) -> sparkline::Result<QueryResult> {
    ctx.sql(&common::skyline_sql(DIMS))?.collect()
}

/// The faulty config mirrored by every differential case: deterministic
/// seed, enough retries to absorb every fire-once fault on a partition.
fn faulty(seed: u64, rate: f64) -> SessionConfig {
    SessionConfig::new()
        .with_executors(4)
        .with_fault_injection(seed, rate)
        .with_max_retries(16)
}

#[test]
fn injected_faults_recover_to_identical_results() {
    let mut total_faults = 0;
    let mut total_retries = 0;
    for dist in common::DISTRIBUTIONS {
        for with_nulls in [false, true] {
            let rows = common::generate(dist, 7, 400, DIMS, with_nulls);
            let clean = common::session_with(
                rows.clone(),
                DIMS,
                with_nulls,
                SessionConfig::new().with_executors(4),
            );
            let chaotic = common::session_with(rows, DIMS, with_nulls, faulty(0xFA17_5EED, 0.15));
            let expected = run_query(&clean);
            let got = run_query(&chaotic);
            assert_eq!(
                got.rows, expected.rows,
                "{dist} nulls={with_nulls}: retried run diverged from fault-free run"
            );
            total_faults += got.metrics.faults_injected;
            total_retries += got.metrics.retries_attempted;
        }
    }
    assert!(total_faults > 0, "no fault fired across the whole matrix");
    assert!(
        total_retries >= total_faults,
        "every injected fault needs at least one retry ({total_retries} < {total_faults})"
    );
}

#[test]
fn pinned_seed_reproduces_the_same_fault_pattern() {
    let rows = common::generate("independent", 11, 300, DIMS, false);
    let first = run_query(&common::session_with(
        rows.clone(),
        DIMS,
        false,
        faulty(42, 0.2),
    ));
    let second = run_query(&common::session_with(rows, DIMS, false, faulty(42, 0.2)));
    assert!(first.metrics.faults_injected > 0, "pinned seed never fired");
    assert_eq!(
        first.metrics.faults_injected, second.metrics.faults_injected,
        "same seed, same rate, different fault pattern"
    );
    assert_eq!(first.rows, second.rows);
}

#[test]
fn retries_disabled_surface_a_clean_typed_error() {
    let rows = common::generate("independent", 3, 200, DIMS, false);
    let ctx = common::session_with(
        rows,
        DIMS,
        false,
        SessionConfig::new()
            .with_executors(4)
            .with_fault_injection(1, 1.0)
            .with_max_retries(0),
    );
    let err = try_query(&ctx).expect_err("rate 1.0 with no retries must fail");
    assert!(
        err.is_retryable(),
        "the surfaced error must be the injected transient fault, got: {err}"
    );
}

#[test]
fn impossible_budget_is_a_clean_resource_exhausted_error() {
    let rows = common::generate("correlated", 5, 300, DIMS, false);
    let ctx = common::session_with(
        rows,
        DIMS,
        false,
        SessionConfig::new().with_executors(4).with_memory_budget(1),
    );
    let err = try_query(&ctx).expect_err("a 1-byte budget cannot run a skyline");
    assert!(
        err.is_resource_exhausted(),
        "expected ResourceExhausted after the degradation ladder ran dry, got: {err}"
    );
}

#[test]
fn tight_budget_degrades_materialized_to_streaming() {
    let rows = common::generate("correlated", 9, 600, DIMS, false);
    let table_bytes: usize = rows.iter().map(Row::estimated_bytes).sum();
    let baseline = run_query(&common::session_with(
        rows.clone(),
        DIMS,
        false,
        SessionConfig::new().with_executors(4),
    ));
    // A budget the materialized model (which holds the full scanned
    // table at its first operator boundary) must blow, but the streaming
    // model (whose buffered state is the skyline windows) fits
    // comfortably — the correlated distribution keeps the skyline tiny.
    let ctx = common::session_with(
        rows,
        DIMS,
        false,
        SessionConfig::new()
            .with_executors(4)
            .with_streaming_execution(false)
            .with_memory_budget(table_bytes / 2),
    );
    let result = run_query(&ctx);
    assert_eq!(result.sorted_display(), baseline.sorted_display());
    assert!(
        result.metrics.degraded_paths >= 1,
        "the run must record its downgrade: {:?}",
        result.metrics
    );
    assert!(
        result.metrics.budget_denials >= 1,
        "the downgrade must have been driven by a denial: {:?}",
        result.metrics
    );
}

#[test]
fn session_cancel_aborts_and_reset_recovers() {
    let rows = common::generate("independent", 13, 200, DIMS, false);
    let ctx = common::session_with(rows, DIMS, false, SessionConfig::new().with_executors(2));
    ctx.cancel();
    assert!(ctx.is_cancelled());
    let err = try_query(&ctx).expect_err("a cancelled session must not run queries");
    assert!(err.is_cancelled(), "expected Cancelled, got: {err}");
    ctx.reset_cancel();
    assert!(!run_query(&ctx).rows.is_empty());
}

#[test]
fn abandoning_a_cancelled_query_releases_every_reservation() {
    let schema = sparkline_common::Schema::new(vec![sparkline_common::Field::new(
        "x",
        sparkline_common::DataType::Int64,
        false,
    )])
    .into_ref();
    let ctx = TaskContext::new(2).with_batch_size(8);
    let parts: Vec<Vec<Row>> = (0..2)
        .map(|p| {
            (0..64)
                .map(|i| Row::new(vec![sparkline_common::Value::Int64(p * 64 + i)]))
                .collect()
        })
        .collect();
    let mut streams = breaker_streams(schema, &ctx, 2, move || Ok(parts));
    // First pull runs the breaker compute; both result slots now hold
    // byte reservations.
    assert!(streams[0].next_batch().unwrap().is_some());
    assert!(
        ctx.memory.current_bytes() > 0,
        "breaker results must be charged while their streams live"
    );
    // Cancel mid-emission, the way an operator's consumer loop would
    // observe it, then abandon the streams.
    ctx.control.cancel();
    let err = ctx.control.check().unwrap_err();
    assert!(err.is_cancelled());
    drop(streams);
    assert_eq!(
        ctx.memory.current_bytes(),
        0,
        "abandoning the query must release every reservation"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seed, any firing pattern: the retried run converges to the
    /// fault-free result, byte for byte.
    #[test]
    fn retried_runs_match_fault_free_for_any_seed(seed in 0u64..(1u64 << 48)) {
        let rows = common::generate("anti_correlated", 17, 240, DIMS, false);
        let clean = common::session_with(
            rows.clone(),
            DIMS,
            false,
            SessionConfig::new().with_executors(3),
        );
        let chaotic = common::session_with(rows, DIMS, false, faulty(seed, 0.1).with_executors(3));
        prop_assert_eq!(run_query(&chaotic).rows, run_query(&clean).rows);
    }
}
