//! End-to-end SQL feature coverage of the engine substrate: projections,
//! filters, joins, aggregates, sorting, limits, distinct, subqueries —
//! the machinery the paper's complex queries (Appendix E) rely on.

use sparkline::{DataType, Field, Row, Schema, SessionContext, Value};

fn session() -> SessionContext {
    let ctx = SessionContext::new();
    ctx.register_table(
        "orders",
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("customer", DataType::Utf8, false),
            Field::new("amount", DataType::Float64, false),
            Field::new("region", DataType::Utf8, true),
        ]),
        vec![
            Row::new(vec![1.into(), "ada".into(), 10.0.into(), "eu".into()]),
            Row::new(vec![2.into(), "ada".into(), 30.0.into(), "eu".into()]),
            Row::new(vec![3.into(), "bob".into(), 20.0.into(), "us".into()]),
            Row::new(vec![4.into(), "bob".into(), 5.5.into(), Value::Null]),
            Row::new(vec![5.into(), "eve".into(), 99.0.into(), "us".into()]),
        ],
    )
    .unwrap();
    ctx.register_table(
        "customers",
        Schema::new(vec![
            Field::new("name", DataType::Utf8, false),
            Field::new("tier", DataType::Int64, false),
        ]),
        vec![
            Row::new(vec!["ada".into(), 1.into()]),
            Row::new(vec!["bob".into(), 2.into()]),
            // eve has no customer record (exercises outer joins).
        ],
    )
    .unwrap();
    ctx
}

fn run(ctx: &SessionContext, sql: &str) -> Vec<String> {
    ctx.sql(sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
        .collect()
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
        .sorted_display()
}

#[test]
fn projection_arithmetic_aliases() {
    let ctx = session();
    let rows = run(
        &ctx,
        "SELECT id, amount * 2 AS double_amount FROM orders WHERE id = 1",
    );
    assert_eq!(rows, vec!["(1, 20.0)"]);
}

#[test]
fn where_with_string_and_null_predicates() {
    let ctx = session();
    assert_eq!(
        run(&ctx, "SELECT id FROM orders WHERE region = 'us'").len(),
        2
    );
    assert_eq!(
        run(&ctx, "SELECT id FROM orders WHERE region IS NULL"),
        vec!["(4)"]
    );
    assert_eq!(
        run(&ctx, "SELECT id FROM orders WHERE region IS NOT NULL").len(),
        4
    );
}

#[test]
fn group_by_having_order_limit() {
    let ctx = session();
    let rows = run(
        &ctx,
        "SELECT customer, count(*) AS n, sum(amount) AS total FROM orders \
         GROUP BY customer HAVING count(*) > 1 ORDER BY total DESC LIMIT 1",
    );
    assert_eq!(rows, vec!["(ada, 2, 40.0)"]);
}

#[test]
fn global_aggregates() {
    let ctx = session();
    let rows = run(
        &ctx,
        "SELECT count(*), min(amount), max(amount), avg(amount), count(region) FROM orders",
    );
    assert_eq!(rows, vec!["(5, 5.5, 99.0, 32.9, 4)"]);
}

#[test]
fn inner_join_and_qualified_stars() {
    let ctx = session();
    let rows = run(
        &ctx,
        "SELECT orders.id, customers.tier FROM orders \
         JOIN customers ON orders.customer = customers.name ORDER BY orders.id",
    );
    assert_eq!(rows.len(), 4, "eve's orders drop out");
}

#[test]
fn left_outer_join_pads_missing_partner() {
    let ctx = session();
    let rows = run(
        &ctx,
        "SELECT orders.id, customers.tier FROM orders \
         LEFT OUTER JOIN customers ON orders.customer = customers.name \
         WHERE orders.id = 5",
    );
    assert_eq!(rows, vec!["(5, NULL)"]);
}

#[test]
fn using_join_merges_columns() {
    let ctx = session();
    ctx.register_table(
        "regions",
        Schema::new(vec![
            Field::new("region", DataType::Utf8, false),
            Field::new("vat", DataType::Float64, false),
        ]),
        vec![
            Row::new(vec!["eu".into(), 0.2.into()]),
            Row::new(vec!["us".into(), 0.1.into()]),
        ],
    )
    .unwrap();
    let rows = run(
        &ctx,
        "SELECT id, region, vat FROM orders JOIN regions USING (region) ORDER BY id",
    );
    assert_eq!(rows.len(), 4);
    assert!(rows[0].starts_with("(1, eu, 0.2"));
}

#[test]
fn derived_table_aggregation() {
    let ctx = session();
    let rows = run(
        &ctx,
        "SELECT t.customer FROM (SELECT customer, sum(amount) AS s FROM orders \
         GROUP BY customer) t WHERE t.s > 30 ORDER BY t.customer",
    );
    assert_eq!(rows, vec!["(ada)", "(eve)"]);
}

#[test]
fn exists_and_not_exists_subqueries() {
    let ctx = session();
    let with_customer = run(
        &ctx,
        "SELECT id FROM orders AS o WHERE EXISTS( \
           SELECT * FROM customers AS c WHERE c.name = o.customer)",
    );
    assert_eq!(with_customer.len(), 4);
    let without_customer = run(
        &ctx,
        "SELECT id FROM orders AS o WHERE NOT EXISTS( \
           SELECT * FROM customers AS c WHERE c.name = o.customer)",
    );
    assert_eq!(without_customer, vec!["(5)"]);
}

#[test]
fn select_distinct() {
    let ctx = session();
    assert_eq!(run(&ctx, "SELECT DISTINCT customer FROM orders").len(), 3);
}

#[test]
fn order_by_unselected_column() {
    let ctx = session();
    let rows = run(&ctx, "SELECT id FROM orders ORDER BY amount DESC LIMIT 2");
    assert_eq!(rows.len(), 2);
    assert!(rows.contains(&"(5)".to_string()));
    assert!(rows.contains(&"(2)".to_string()));
}

#[test]
fn ifnull_and_coalesce_functions() {
    let ctx = session();
    let rows = run(
        &ctx,
        "SELECT id, ifnull(region, 'unknown') FROM orders WHERE id = 4",
    );
    assert_eq!(rows, vec!["(4, unknown)"]);
    let rows = run(
        &ctx,
        "SELECT coalesce(NULL, region, 'x') FROM orders WHERE id = 1",
    );
    assert_eq!(rows, vec!["(eu)"]);
}

#[test]
fn cast_expression() {
    let ctx = session();
    let rows = run(
        &ctx,
        "SELECT CAST(amount AS BIGINT) FROM orders WHERE id = 3",
    );
    assert_eq!(rows, vec!["(20)"]);
}

#[test]
fn cross_join_cardinality() {
    let ctx = session();
    let rows = run(
        &ctx,
        "SELECT orders.id, customers.name FROM orders, customers",
    );
    assert_eq!(rows.len(), 10);
}

#[test]
fn table_less_select() {
    let ctx = session();
    assert_eq!(run(&ctx, "SELECT 1 + 1 AS two"), vec!["(2)"]);
}

#[test]
fn division_by_zero_yields_null() {
    let ctx = session();
    assert_eq!(run(&ctx, "SELECT 1 / 0"), vec!["(NULL)"]);
}

#[test]
fn skyline_composes_with_every_feature() {
    // Skyline over a join + aggregate + having, below order by / limit.
    let ctx = session();
    let rows = run(
        &ctx,
        "SELECT customer, sum(amount) AS total FROM orders \
         GROUP BY customer HAVING count(*) >= 1 \
         SKYLINE OF count(*) MIN, sum(amount) MAX \
         ORDER BY customer LIMIT 10",
    );
    // (ada: n=2,total=40), (bob: n=2,total=25.5), (eve: n=1,total=99):
    // eve dominates both (fewer orders, higher total).
    assert_eq!(rows, vec!["(eve, 99.0)"]);
}
