//! Incomplete-data semantics end to end (paper §3, §5.7, Appendix A):
//! cyclic dominance, Lemma 5.1's partitioning, executor-count robustness,
//! and the agreement of complete and incomplete algorithms on complete
//! data.

mod common;

use common::{incomplete_session, row3};
use sparkline::{Algorithm, Row, SessionConfig, SessionContext};
use sparkline_common::{SkylineDim, SkylineSpec, SkylineType};
use sparkline_datagen::{register_store_sales, skyline_query_for, store_sales, Variant};
use sparkline_skyline::{naive_skyline, DominanceChecker};

#[test]
fn appendix_a_cycle_yields_empty_skyline_at_any_executor_count() {
    let rows = vec![
        row3(Some(1), None, Some(10)),
        row3(Some(3), Some(2), None),
        row3(None, Some(5), Some(3)),
    ];
    let base = incomplete_session(rows);
    for executors in [1usize, 2, 3, 5, 10] {
        let ctx = base.with_shared_catalog(SessionConfig::default().with_executors(executors));
        let result = ctx
            .sql("SELECT * FROM t SKYLINE OF a MIN, b MIN, c MIN")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(result.num_rows(), 0, "{executors} executors");
    }
}

#[test]
fn engine_matches_naive_incomplete_oracle_on_random_data() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Row> = (0..150)
            .map(|_| {
                row3(
                    rng.gen_bool(0.75).then(|| rng.gen_range(0..8)),
                    rng.gen_bool(0.75).then(|| rng.gen_range(0..8)),
                    rng.gen_bool(0.75).then(|| rng.gen_range(0..8)),
                )
            })
            .collect();
        let spec = SkylineSpec::new(vec![
            SkylineDim::new(0, SkylineType::Min),
            SkylineDim::new(1, SkylineType::Max),
            SkylineDim::new(2, SkylineType::Min),
        ]);
        let checker = DominanceChecker::incomplete(spec);
        let mut oracle: Vec<String> = naive_skyline(&rows, &checker)
            .iter()
            .map(|r| r.to_string())
            .collect();
        oracle.sort();

        let ctx = incomplete_session(rows)
            .with_shared_catalog(SessionConfig::default().with_executors(3));
        let result = ctx
            .sql("SELECT * FROM t SKYLINE OF a MIN, b MAX, c MIN")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(result.sorted_display(), oracle, "seed {seed}");
    }
}

#[test]
fn incomplete_algorithm_correct_on_complete_data() {
    // §5.7: "Selecting an algorithm which can handle incomplete datasets
    // yields the correct result also for a complete dataset".
    let ctx = SessionContext::new();
    register_store_sales(&ctx, 1000, 31, Variant::Complete).unwrap();
    let sql = skyline_query_for("store_sales", &store_sales::SKYLINE_DIMS, 5, false);
    let df = ctx.sql(&sql).unwrap();
    let complete = df
        .collect_with_algorithm(Algorithm::DistributedComplete)
        .unwrap();
    let incomplete = df
        .collect_with_algorithm(Algorithm::DistributedIncomplete)
        .unwrap();
    assert_eq!(complete.sorted_display(), incomplete.sorted_display());
}

#[test]
fn incomplete_on_complete_data_degenerates_to_single_partition() {
    // The paper's worst case: no NULLs → one bitmap partition → the local
    // phase cannot parallelize and the global phase does the entire work.
    let ctx = SessionContext::with_config(SessionConfig::default().with_executors(4));
    register_store_sales(&ctx, 400, 37, Variant::Complete).unwrap();
    let sql = skyline_query_for("store_sales", &store_sales::SKYLINE_DIMS, 3, false);
    let df = ctx.sql(&sql).unwrap();
    let incomplete = df
        .collect_with_algorithm(Algorithm::DistributedIncomplete)
        .unwrap();
    let complete = df
        .collect_with_algorithm(Algorithm::DistributedComplete)
        .unwrap();
    assert_eq!(incomplete.sorted_display(), complete.sorted_display());
    // The plan shape shows the degeneration: the null-bitmap exchange puts
    // every (NULL-free) tuple into one partition, so the local phase runs
    // on a single executor. (The resulting slowdown is a wall-clock
    // phenomenon measured by the harness, not a dominance-test count.)
    let explain = ctx
        .with_shared_catalog(
            SessionConfig::default()
                .with_executors(4)
                .with_skyline_strategy(sparkline::SkylineStrategy::DistributedIncomplete),
        )
        .sql(&sql)
        .unwrap()
        .explain()
        .unwrap();
    assert!(explain.contains("NullBitmap"), "{explain}");
    assert!(explain.contains("IncompleteGlobalSkylineExec"), "{explain}");
}

#[test]
fn adaptive_prefilter_is_inert_on_incomplete_data() {
    // The representative pre-filter discards tuples a broadcast point
    // strictly dominates — sound only under the transitive complete
    // relation. Under the incomplete relation a dominated tuple may still
    // cancel its dominator (Appendix A's cycles), so the adaptive planner
    // must keep the filter out of the bitmap-partitioned plan entirely:
    // same results, and zero rows dropped.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(4);
    let rows: Vec<Row> = (0..200)
        .map(|_| {
            row3(
                rng.gen_bool(0.7).then(|| rng.gen_range(0..6)),
                rng.gen_bool(0.7).then(|| rng.gen_range(0..6)),
                rng.gen_bool(0.7).then(|| rng.gen_range(0..6)),
            )
        })
        .collect();
    let adaptive = incomplete_session(rows.clone()).with_shared_catalog(
        SessionConfig::default()
            .with_executors(3)
            .with_skyline_strategy(sparkline::SkylineStrategy::Adaptive),
    );
    let default =
        incomplete_session(rows).with_shared_catalog(SessionConfig::default().with_executors(3));
    let sql = "SELECT * FROM t SKYLINE OF a MIN, b MAX, c MIN";
    let explain = adaptive.sql(sql).unwrap().explain().unwrap();
    assert!(
        explain.contains("NullBitmap") && !explain.contains("SkylinePreFilterExec"),
        "bitmap-class plan must carry no pre-filter:\n{explain}"
    );
    let a = adaptive.sql(sql).unwrap().collect().unwrap();
    let d = default.sql(sql).unwrap().collect().unwrap();
    assert_eq!(a.sorted_display(), d.sorted_display());
    assert_eq!(a.metrics.prefilter_rows_dropped, 0);
}

#[test]
fn adaptive_prefilter_coexists_with_bitmap_classes_under_complete() {
    // Declaring COMPLETE on NULL-bearing data selects the complete
    // relation, where NULL rows are incomparable to everything: the
    // pre-filter may fire for fully-valued rows but must pass every
    // NULL-bearing tuple through to the windows.
    let mut rows = vec![
        row3(Some(1), Some(1), Some(1)),
        row3(None, Some(9), Some(9)),
        row3(Some(9), None, Some(9)),
    ];
    rows.extend((2..60).map(|i| row3(Some(i), Some(i), Some(i))));
    let ctx = incomplete_session(rows).with_shared_catalog(
        SessionConfig::default()
            .with_executors(3)
            .with_skyline_strategy(sparkline::SkylineStrategy::Adaptive),
    );
    let result = ctx
        .sql("SELECT * FROM t SKYLINE OF COMPLETE a MIN, b MIN, c MIN")
        .unwrap()
        .collect()
        .unwrap();
    // (1,1,1) plus the two incomparable NULL-bearing rows.
    assert_eq!(result.num_rows(), 3);
    assert!(
        result.metrics.prefilter_rows_dropped > 0,
        "dominated complete rows should be dropped early: {:?}",
        result.metrics
    );
}

#[test]
fn null_only_tuples_join_the_skyline() {
    // A tuple that is NULL in every skyline dimension is incomparable to
    // everything — it must appear in the skyline.
    let rows = vec![
        row3(Some(1), Some(1), Some(1)),
        row3(None, None, None),
        row3(Some(2), Some(2), Some(2)),
    ];
    let ctx = incomplete_session(rows);
    let result = ctx
        .sql("SELECT * FROM t SKYLINE OF a MIN, b MIN, c MIN")
        .unwrap()
        .collect()
        .unwrap();
    // (1,1,1) dominates (2,2,2); the all-NULL row is incomparable.
    assert_eq!(result.num_rows(), 2);
}

#[test]
fn distinct_on_incomplete_data() {
    let rows = vec![
        row3(Some(1), None, Some(5)),
        row3(Some(1), None, Some(5)), // identical incl. NULL pattern
        row3(Some(1), Some(2), Some(5)),
    ];
    let ctx = incomplete_session(rows);
    let with_distinct = ctx
        .sql("SELECT * FROM t SKYLINE OF DISTINCT a MIN, b MIN, c MIN")
        .unwrap()
        .collect()
        .unwrap();
    let without = ctx
        .sql("SELECT * FROM t SKYLINE OF a MIN, b MIN, c MIN")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(without.num_rows(), with_distinct.num_rows() + 1);
}

#[test]
fn complete_keyword_overrides_detection_and_changes_result_semantics() {
    // Applying the complete algorithm to data that does contain NULLs uses
    // the unrestricted dominance test where NULL comparisons make tuples
    // incomparable — NULL rows survive. This mirrors the paper's note that
    // correctness under COMPLETE "only depends on whether null values
    // actually appear in the data".
    let rows = vec![
        row3(Some(1), Some(1), Some(1)),
        row3(None, Some(0), Some(0)),
    ];
    let ctx = incomplete_session(rows);
    let forced_complete = ctx
        .sql("SELECT * FROM t SKYLINE OF COMPLETE a MIN, b MIN, c MIN")
        .unwrap()
        .collect()
        .unwrap();
    // Under the complete relation the NULL row is incomparable: 2 rows.
    assert_eq!(forced_complete.num_rows(), 2);
    let auto = ctx
        .sql("SELECT * FROM t SKYLINE OF a MIN, b MIN, c MIN")
        .unwrap()
        .collect()
        .unwrap();
    // Under the incomplete relation (*,0,0) dominates (1,1,1)... and
    // (1,1,1) does not dominate back (b,c are worse). Skyline = {(*,0,0)}.
    assert_eq!(auto.num_rows(), 1);
}
