//! Skylines over incomplete data (paper §3, §5.7, Appendix A): cyclic
//! dominance, the null-bitmap-partitioned algorithm, and the `COMPLETE`
//! keyword override.
//!
//! ```bash
//! cargo run --example incomplete_data
//! ```

use sparkline::{DataType, Field, Row, Schema, SessionContext, Value};

fn main() -> sparkline::Result<()> {
    let ctx = SessionContext::new();

    // The paper's cyclic example (§3): a=(1,*,10), b=(3,2,*), c=(*,5,3).
    // Under the incomplete dominance relation a ≺ b ≺ c ≺ a: every tuple
    // is dominated, so the skyline is EMPTY. The algorithm of Gulzar et
    // al. [20] returns {c} here — Appendix A shows why deferred deletion
    // is required.
    ctx.register_table(
        "points",
        Schema::new(vec![
            Field::new("name", DataType::Utf8, false),
            Field::new("x", DataType::Int64, true),
            Field::new("y", DataType::Int64, true),
            Field::new("z", DataType::Int64, true),
        ]),
        vec![
            Row::new(vec![Value::str("a"), 1.into(), Value::Null, 10.into()]),
            Row::new(vec![Value::str("b"), 3.into(), 2.into(), Value::Null]),
            Row::new(vec![Value::str("c"), Value::Null, 5.into(), 3.into()]),
        ],
    )?;

    let df = ctx.sql("SELECT * FROM points SKYLINE OF x MIN, y MIN, z MIN")?;
    let result = df.collect()?;
    println!(
        "Cyclic dominance example: skyline has {} rows (expected 0)",
        result.num_rows()
    );
    assert_eq!(result.num_rows(), 0);

    // The physical plan shows the incomplete pipeline: null-bitmap
    // exchange, local skylines, all-pairs global phase.
    println!("\n{}", df.explain()?);

    // A dataset that *could* contain NULLs but doesn't: without COMPLETE
    // the engine must be conservative; with COMPLETE the user unlocks the
    // faster algorithm (§5.5, Listing 8).
    ctx.register_table(
        "measurements",
        Schema::new(vec![
            Field::new("latency", DataType::Int64, true), // nullable column!
            Field::new("throughput", DataType::Int64, true),
        ]),
        (0..1000i64)
            .map(|i| {
                Row::new(vec![
                    Value::Int64(100 + (i * 37) % 900),
                    Value::Int64(10 + (i * 91) % 490),
                ])
            })
            .collect(),
    )?;

    let without = ctx.sql("SELECT * FROM measurements SKYLINE OF latency MIN, throughput MAX")?;
    let with =
        ctx.sql("SELECT * FROM measurements SKYLINE OF COMPLETE latency MIN, throughput MAX")?;
    println!(
        "Without COMPLETE: {}",
        first_skyline_node(&without.explain()?)
    );
    println!("With COMPLETE:    {}", first_skyline_node(&with.explain()?));
    let a = without.collect()?;
    let b = with.collect()?;
    assert_eq!(a.sorted_display(), b.sorted_display());
    println!(
        "\nSame {} skyline rows either way — but the COMPLETE variant ran \
         {} dominance tests vs {} (no all-pairs phase).",
        a.num_rows(),
        b.metrics.dominance_tests,
        a.metrics.dominance_tests,
    );
    Ok(())
}

fn first_skyline_node(explain: &str) -> &str {
    explain
        .lines()
        .find(|l| l.contains("SkylineExec"))
        .map(str::trim)
        .unwrap_or("<none>")
}
