//! Skylines over complex queries: the paper's MusicBrainz experiment
//! (Appendix E) — a base query with joins, aggregation and `ifnull`,
//! topped by a skyline, versus its unwieldy plain-SQL rewrite
//! (Listing 13 vs Listing 14).
//!
//! ```bash
//! cargo run --release --example musicbrainz_complex
//! ```

use sparkline::{Algorithm, SessionConfig, SessionContext};
use sparkline_datagen::{musicbrainz, register_musicbrainz, Variant};

fn main() -> sparkline::Result<()> {
    let recordings = std::env::var("MB_RECORDINGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000);
    let ctx = SessionContext::with_config(SessionConfig::default().with_executors(3));
    let (table, n) = register_musicbrainz(&ctx, recordings, 99, Variant::Complete)?;
    println!("Registered '{table}' (+ track, recording_meta) with {n} recordings\n");

    // "Find the best and most often rated recordings which are the
    // shortest, have a video, appear on many tracks, early on the album."
    let query = musicbrainz::skyline_query(Variant::Complete, 6);
    println!("Skyline query (Listing 14 shape):\n  {query}\n");

    let df = ctx.sql(&query)?;
    let result = df.collect()?;
    println!(
        "Integrated skyline: {} rows in {:.1?} ({} dominance tests)",
        result.num_rows(),
        result.elapsed,
        result.metrics.dominance_tests
    );

    let reference = df.collect_with_algorithm(Algorithm::Reference)?;
    println!(
        "Reference rewrite:  {} rows in {:.1?} (the Listing 13 plan)",
        reference.num_rows(),
        reference.elapsed
    );
    assert_eq!(result.sorted_display(), reference.sorted_display());
    println!("Both return identical rows.\n");

    // Appendix E also emphasizes readability: print the physical plan of
    // the integrated query so the two-phase skyline is visible on top of
    // the join/aggregate pipeline.
    println!("{}", df.explain()?);
    Ok(())
}
