//! Quickstart: the paper's running hotel example (Figure 1, Listings 1/2).
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use sparkline::functions::{col, smax, smin};
use sparkline::{DataType, Field, Row, Schema, SessionContext, Value};

fn main() -> sparkline::Result<()> {
    let ctx = SessionContext::new();

    // A small hotel relation: price per night (minimize) and user rating
    // (maximize).
    let hotels = [
        ("Seaside Inn", 120, 8),
        ("Budget Stay", 45, 4),
        ("Grand Palace", 280, 10),
        ("City Nest", 75, 7),
        ("Harbor View", 95, 8), // dominated by Seaside Inn? no: cheaper!
        ("Old Mill", 130, 6),   // dominated (City Nest is cheaper & better)
        ("Cheap Sleep", 35, 2),
        ("Plaza Royal", 300, 9), // dominated by Grand Palace
    ];
    ctx.register_table(
        "hotels",
        Schema::new(vec![
            Field::new("name", DataType::Utf8, false),
            Field::new("price", DataType::Int64, false),
            Field::new("user_rating", DataType::Int64, false),
        ]),
        hotels
            .iter()
            .map(|&(n, p, r)| Row::new(vec![Value::str(n), Value::Int64(p), Value::Int64(r)]))
            .collect(),
    )?;

    // ---- The paper's Listing 2: integrated skyline syntax. ----
    let integrated = ctx
        .sql(
            "SELECT name, price, user_rating FROM hotels \
             SKYLINE OF price MIN, user_rating MAX \
             ORDER BY price",
        )?
        .collect()?;
    println!("Skyline (SKYLINE OF price MIN, user_rating MAX):");
    println!("{}", integrated.format_table());

    // ---- The paper's Listing 1: the same query in plain SQL. ----
    let reference = ctx
        .sql(
            "SELECT name, price, user_rating FROM hotels AS o WHERE NOT EXISTS( \
               SELECT * FROM hotels AS i WHERE \
                 i.price <= o.price AND i.user_rating >= o.user_rating \
                 AND (i.price < o.price OR i.user_rating > o.user_rating)) \
             ORDER BY price",
        )?
        .collect()?;
    assert_eq!(integrated.sorted_display(), reference.sorted_display());
    println!("Plain-SQL rewrite (Listing 1) returns the same rows.\n");

    // ---- The DataFrame API (paper §5.8). ----
    let df = ctx
        .table("hotels")?
        .skyline(vec![smin(col("price")), smax(col("user_rating"))]);
    println!(
        "DataFrame API skyline: {} rows, {} dominance tests",
        df.collect()?.num_rows(),
        df.collect()?.metrics.dominance_tests
    );

    // ---- What the engine does under the hood. ----
    println!("\n{}", df.explain()?);
    Ok(())
}
