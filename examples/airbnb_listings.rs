//! Skyline queries over the (synthetic) Inside Airbnb dataset — the
//! paper's real-world workload (§6.2, Table 1): find accommodation
//! listings that are Pareto-optimal in up to six dimensions.
//!
//! ```bash
//! cargo run --release --example airbnb_listings
//! ```

use std::time::Instant;

use sparkline::{Algorithm, SessionConfig, SessionContext};
use sparkline_datagen::{airbnb, register_airbnb, skyline_query_for, Variant};

fn main() -> sparkline::Result<()> {
    let rows = std::env::var("AIRBNB_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let ctx = SessionContext::with_config(SessionConfig::default().with_executors(5));
    let (table, n) = register_airbnb(&ctx, rows, 42, Variant::Complete)?;
    println!("Registered '{table}' with {n} listings (complete variant)\n");

    // Sweep dimension counts like the paper's Figure 3.
    println!(
        "{:<4} {:>10} {:>12} {:>14}",
        "dims", "skyline", "time", "dom. tests"
    );
    for d in 1..=6 {
        let query = skyline_query_for(&table, &airbnb::SKYLINE_DIMS, d, true);
        let started = Instant::now();
        let result = ctx.sql(&query)?.collect()?;
        println!(
            "{:<4} {:>10} {:>9.1?} {:>14}",
            d,
            result.num_rows(),
            started.elapsed(),
            result.metrics.dominance_tests
        );
    }

    // The paper's headline comparison: integrated vs reference (Listing 4)
    // on the full 6-dimensional query.
    println!("\nAlgorithm comparison (6 dimensions):");
    let query = skyline_query_for(&table, &airbnb::SKYLINE_DIMS, 6, true);
    let df = ctx.sql(&query)?;
    for algorithm in [Algorithm::DistributedComplete, Algorithm::Reference] {
        let result = df.collect_with_algorithm(algorithm)?;
        println!(
            "  {:<24} {:>9.1?}  ({} rows)",
            algorithm.label(),
            result.elapsed,
            result.num_rows()
        );
    }

    // Show the best budget-friendly picks.
    let top = ctx
        .sql(&format!(
            "SELECT id, price, accommodates, review_scores_rating FROM {table} \
             SKYLINE OF COMPLETE price MIN, review_scores_rating MAX \
             ORDER BY price LIMIT 5"
        ))?
        .collect()?;
    println!("\nBest price/rating trade-offs:\n{}", top.format_table());
    Ok(())
}
