use sparkline::{SessionConfig, SessionContext};
use sparkline_datagen::{musicbrainz, register_musicbrainz, Variant};

fn main() {
    for generic in [true, false] {
        let ctx = SessionContext::with_config(
            SessionConfig::default().with_generic_optimizations(generic),
        );
        register_musicbrainz(&ctx, 250, 5, Variant::Complete).unwrap();
        let base = musicbrainz::base_query_complete();
        let reference_sql = format!(
            "SELECT * FROM ( {base} ) AS o WHERE NOT EXISTS( \
               SELECT * FROM ( {base} ) AS i WHERE \
                 i.rating >= o.rating AND i.rating_count >= o.rating_count AND \
                 i.length <= o.length AND i.video >= o.video AND ( \
                 i.rating > o.rating OR i.rating_count > o.rating_count OR \
                 i.length < o.length OR i.video > o.video))"
        );
        let r = ctx.sql(&reference_sql).unwrap().collect().unwrap();
        let i = ctx
            .sql(&musicbrainz::skyline_query(Variant::Complete, 4))
            .unwrap()
            .collect()
            .unwrap();
        println!("generic={generic}: reference={} integrated={}", r.num_rows(), i.num_rows());
        if generic == false && r.num_rows() != i.num_rows() {
            let ex = ctx.sql(&reference_sql).unwrap().explain().unwrap();
            println!("{ex}");
        }
    }
}
