//! Decision-support analytics on the synthetic DSB `store_sales` table
//! (paper §6.2, Table 2): which sales are Pareto-optimal across quantity,
//! costs, prices and discounts — comparing all four algorithms of §6.3.
//!
//! ```bash
//! cargo run --release --example store_sales_analytics
//! ```

use sparkline::{Algorithm, SessionConfig, SessionContext};
use sparkline_datagen::{register_store_sales, skyline_query_for, store_sales, Variant};

fn main() -> sparkline::Result<()> {
    let rows = std::env::var("STORE_SALES_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000);

    // Complete variant: all four algorithms apply.
    let ctx = SessionContext::with_config(SessionConfig::default().with_executors(4));
    let (table, n) = register_store_sales(&ctx, rows, 7, Variant::Complete)?;
    println!("Registered '{table}' with {n} rows (complete)\n");

    let query = skyline_query_for(&table, &store_sales::SKYLINE_DIMS, 4, true);
    println!("Query: {query}\n");
    println!(
        "{:<26} {:>10} {:>12} {:>14} {:>12}",
        "algorithm", "rows", "time", "dom. tests", "peak mem"
    );
    for algorithm in Algorithm::paper_algorithms() {
        let result = ctx.sql(&query)?.collect_with_algorithm(algorithm)?;
        println!(
            "{:<26} {:>10} {:>9.1?} {:>14} {:>10} KB",
            algorithm.label(),
            result.num_rows(),
            result.elapsed,
            result.metrics.dominance_tests,
            result.peak_memory_bytes / 1024,
        );
    }

    // Incomplete variant: only the incomplete algorithm and the reference
    // apply (§6.3).
    let ctx = SessionContext::with_config(SessionConfig::default().with_executors(4));
    let (table, n) = register_store_sales(&ctx, rows / 2, 7, Variant::Incomplete)?;
    println!("\nRegistered '{table}' with {n} rows (incomplete)\n");
    let query = skyline_query_for(&table, &store_sales::SKYLINE_DIMS, 3, false);
    for algorithm in Algorithm::incomplete_algorithms() {
        let result = ctx.sql(&query)?.collect_with_algorithm(algorithm)?;
        println!(
            "{:<26} {:>10} rows {:>9.1?}",
            algorithm.label(),
            result.num_rows(),
            result.elapsed,
        );
    }
    println!(
        "\nNote: on incomplete data the reference rewrite uses SQL NULL \
         semantics, so its result may differ from the §3 restricted \
         dominance relation — the paper compares runtimes only."
    );
    Ok(())
}
