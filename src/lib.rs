//! # skyline-spark
//!
//! Root package of the reproduction of *"Integration of Skyline Queries
//! into Spark SQL"* (EDBT 2023). The engine lives in the `sparkline`
//! workspace crates; this package hosts the runnable examples
//! (`examples/`), the cross-crate integration tests (`tests/`), and
//! re-exports the public API for convenience.

pub use sparkline::*;

/// The dataset generators used by the examples and the evaluation harness.
pub use sparkline_datagen as datagen;
