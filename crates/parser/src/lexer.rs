//! SQL tokenizer.
//!
//! Words (identifiers and keywords) are produced as a single token kind;
//! the parser decides contextually whether a word acts as a keyword. This
//! sidesteps the classic `MIN`/`MAX` ambiguity: they are aggregate function
//! names in expressions but dimension-type markers inside the `SKYLINE OF`
//! clause (paper Listing 5).

use std::fmt;

use sparkline_common::{Error, Result};

/// A lexical token with its byte position in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character in the query text.
    pub position: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (unquoted words are case-insensitive).
    Word(String),
    /// Double-quoted identifier (exact case).
    QuotedIdent(String),
    /// Integer literal.
    Integer(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal.
    StringLit(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Word(w) => write!(f, "{w}"),
            TokenKind::QuotedIdent(w) => write!(f, "\"{w}\""),
            TokenKind::Integer(i) => write!(f, "{i}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::StringLit(s) => write!(f, "'{s}'"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Semicolon => f.write_str(";"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::NotEq => f.write_str("<>"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::LtEq => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::GtEq => f.write_str(">="),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Percent => f.write_str("%"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// Tokenize a SQL string. Supports `--` line comments and `/* */` block
/// comments.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(Error::parse_at("unterminated block comment", start));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Word(sql[start..i].to_string()),
                    position: start,
                });
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &sql[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| {
                        Error::parse_at(format!("invalid float literal '{text}'"), start)
                    })?)
                } else {
                    TokenKind::Integer(text.parse().map_err(|_| {
                        Error::parse_at(format!("integer literal '{text}' out of range"), start)
                    })?)
                };
                tokens.push(Token {
                    kind,
                    position: start,
                });
            }
            '\'' => {
                i += 1;
                let mut value = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(Error::parse_at("unterminated string literal", start));
                    }
                    if bytes[i] == b'\'' {
                        // '' escapes a single quote.
                        if bytes.get(i + 1) == Some(&b'\'') {
                            value.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    // Multi-byte UTF-8 safe: copy by char.
                    let ch = sql[i..].chars().next().unwrap();
                    value.push(ch);
                    i += ch.len_utf8();
                }
                tokens.push(Token {
                    kind: TokenKind::StringLit(value),
                    position: start,
                });
            }
            '"' => {
                i += 1;
                let ident_start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(Error::parse_at("unterminated quoted identifier", start));
                }
                tokens.push(Token {
                    kind: TokenKind::QuotedIdent(sql[ident_start..i].to_string()),
                    position: start,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    position: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    position: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    position: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    position: start,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    position: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    position: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    position: start,
                });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    kind: TokenKind::NotEq,
                    position: start,
                });
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token {
                        kind: TokenKind::LtEq,
                        position: start,
                    });
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        position: start,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        position: start,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::GtEq,
                        position: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        position: start,
                    });
                    i += 1;
                }
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    position: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    position: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    position: start,
                });
                i += 1;
            }
            '%' => {
                tokens.push(Token {
                    kind: TokenKind::Percent,
                    position: start,
                });
                i += 1;
            }
            other => {
                return Err(Error::parse_at(
                    format!("unexpected character '{other}'"),
                    start,
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        position: sql.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_and_symbols() {
        let k = kinds("SELECT a, b FROM t WHERE a <= 3;");
        assert_eq!(k[0], TokenKind::Word("SELECT".into()));
        assert_eq!(k[2], TokenKind::Comma);
        assert!(k.contains(&TokenKind::LtEq));
        assert!(k.contains(&TokenKind::Semicolon));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 1e3 7"),
            vec![
                TokenKind::Integer(1),
                TokenKind::Float(2.5),
                TokenKind::Float(1000.0),
                TokenKind::Integer(7),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn float_requires_digit_after_dot() {
        // `t.a` must lex as word-dot-word, not a float.
        assert_eq!(
            kinds("t.a"),
            vec![
                TokenKind::Word("t".into()),
                TokenKind::Dot,
                TokenKind::Word("a".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::StringLit("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(
            kinds("\"Weird Name\""),
            vec![TokenKind::QuotedIdent("Weird Name".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT -- comment\n 1 /* block */ + 2"),
            vec![
                TokenKind::Word("SELECT".into()),
                TokenKind::Integer(1),
                TokenKind::Plus,
                TokenKind::Integer(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= = <> !="),
            vec![
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = tokenize("SELECT ?").unwrap_err();
        match err {
            Error::Parse { position, .. } => assert_eq!(position, Some(7)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(tokenize("'open").is_err());
        assert!(tokenize("/* open").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            kinds("'héllo'"),
            vec![TokenKind::StringLit("héllo".into()), TokenKind::Eof]
        );
    }
}
