//! Recursive-descent SQL parser producing unresolved [`LogicalPlan`]s.
//!
//! The grammar is the `SELECT`-statement subset the paper's workloads need
//! (joins, subqueries in `FROM`, `GROUP BY`/`HAVING`, correlated
//! `[NOT] EXISTS`, `ORDER BY`, `LIMIT`) extended with the skyline clause of
//! Listing 3/5:
//!
//! ```sql
//! SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ...
//! SKYLINE OF [DISTINCT] [COMPLETE] d1 [MIN|MAX|DIFF], ..., dm [MIN|MAX|DIFF]
//! ORDER BY ... LIMIT ...
//! ```
//!
//! The skyline clause is parsed *after* `HAVING` and *before* `ORDER BY`,
//! and the resulting [`LogicalPlan::Skyline`] node is placed above the
//! projection/aggregate — the analyzer then resolves dimensions that are
//! missing from the projection (paper Listing 6) or that refer to
//! aggregates (Listing 7).
//!
//! Beyond queries, [`parse_statement`] accepts the one mutation statement
//! the engine executes directly:
//!
//! ```sql
//! DELETE FROM <table> [WHERE <predicate>];
//! ```
//!
//! The predicate is an ordinary scalar expression (same grammar as
//! `WHERE` in a query); omitting it deletes every row. The parser only
//! shapes the statement — the table name and predicate are resolved by
//! the analyzer against the session catalog when the delete executes.

use std::sync::Arc;

use sparkline_common::{DataType, Error, Result, SkylineType, Value};
use sparkline_plan::{
    AggregateFunction, BinaryOp, Column, Expr, JoinCondition, JoinType, LogicalPlan,
    ScalarFunction, SkylineDimension, SortExpr,
};

use crate::lexer::{tokenize, Token, TokenKind};

/// Words that terminate an implicit (bare) alias.
const RESERVED: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "LIMIT",
    "SKYLINE",
    "OF",
    "JOIN",
    "LEFT",
    "RIGHT",
    "FULL",
    "INNER",
    "OUTER",
    "CROSS",
    "ON",
    "USING",
    "AND",
    "OR",
    "NOT",
    "AS",
    "UNION",
    "EXCEPT",
    "INTERSECT",
    "IS",
    "NULL",
    "EXISTS",
    "DISTINCT",
    "COMPLETE",
    "ASC",
    "DESC",
    "NULLS",
    "CAST",
    "MIN",
    "MAX",
    "DIFF",
];

/// Parse a single SQL query (optionally `;`-terminated) into an unresolved
/// logical plan.
pub fn parse_query(sql: &str) -> Result<LogicalPlan> {
    let mut p = Parser::new(sql)?;
    let plan = p.parse_select()?;
    p.consume(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(plan)
}

/// A parsed SQL statement: a query, or the one mutation statement the
/// engine executes directly.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT` query (what [`parse_query`] returns).
    Query(LogicalPlan),
    /// `DELETE FROM <table> [WHERE <predicate>]`.
    Delete {
        /// The target table, as written (resolved later by the analyzer).
        table: String,
        /// The `WHERE` predicate; `None` deletes every row.
        predicate: Option<Expr>,
    },
}

/// Parse a single SQL statement (optionally `;`-terminated): either a
/// `SELECT` query (see [`parse_query`]) or
/// `DELETE FROM <table> [WHERE <predicate>]`.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    if p.consume_word("DELETE") {
        p.expect_word("FROM")?;
        let table = p.parse_ident()?;
        let predicate = if p.consume_word("WHERE") {
            Some(p.parse_expr()?)
        } else {
            None
        };
        p.consume(&TokenKind::Semicolon);
        p.expect_eof()?;
        return Ok(Statement::Delete { table, predicate });
    }
    let plan = p.parse_select()?;
    p.consume(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(Statement::Query(plan))
}

/// Parse a standalone scalar expression (used by tests and the DataFrame
/// API's string predicates).
pub fn parse_expression(sql: &str) -> Result<Expr> {
    let mut p = Parser::new(sql)?;
    let expr = p.parse_expr()?;
    p.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Self> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        self.pos = (self.pos + 1).min(self.tokens.len());
        t
    }

    /// Is the current token the given (case-insensitive) keyword?
    fn at_word(&self, kw: &str) -> bool {
        matches!(self.peek_kind(), TokenKind::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    fn word_ahead(&self, n: usize, kw: &str) -> bool {
        matches!(self.peek_ahead(n), TokenKind::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    /// Consume a keyword if present.
    fn consume_word(&mut self, kw: &str) -> bool {
        if self.at_word(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Require a keyword.
    fn expect_word(&mut self, kw: &str) -> Result<()> {
        if self.consume_word(kw) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected {kw}, found '{}'", self.peek_kind())))
        }
    }

    /// Consume a punctuation token if present.
    fn consume(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Require a punctuation token.
    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.consume(kind) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected '{kind}', found '{}'", self.peek_kind())))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if matches!(self.peek_kind(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error_here(format!("unexpected trailing input '{}'", self.peek_kind())))
        }
    }

    fn error_here(&self, message: String) -> Error {
        Error::parse_at(message, self.peek().position)
    }

    /// An identifier (word not reserved, or quoted).
    fn parse_ident(&mut self) -> Result<String> {
        match self.peek_kind().clone() {
            TokenKind::Word(w) => {
                if RESERVED.iter().any(|r| w.eq_ignore_ascii_case(r)) {
                    Err(self.error_here(format!("expected identifier, found keyword '{w}'")))
                } else {
                    self.advance();
                    Ok(w)
                }
            }
            TokenKind::QuotedIdent(w) => {
                self.advance();
                Ok(w)
            }
            other => Err(self.error_here(format!("expected identifier, found '{other}'"))),
        }
    }

    /// Optional `AS alias` or bare alias.
    fn parse_optional_alias(&mut self) -> Result<Option<String>> {
        if self.consume_word("AS") {
            return self.parse_ident().map(Some);
        }
        match self.peek_kind() {
            TokenKind::Word(w) if !RESERVED.iter().any(|r| w.eq_ignore_ascii_case(r)) => {
                self.parse_ident().map(Some)
            }
            TokenKind::QuotedIdent(_) => self.parse_ident().map(Some),
            _ => Ok(None),
        }
    }

    // ------------------------------------------------------------------
    // SELECT statements
    // ------------------------------------------------------------------

    fn parse_select(&mut self) -> Result<LogicalPlan> {
        self.expect_word("SELECT")?;
        let select_distinct = self.consume_word("DISTINCT");

        let mut select_list = Vec::new();
        loop {
            select_list.push(self.parse_select_item()?);
            if !self.consume(&TokenKind::Comma) {
                break;
            }
        }

        let mut plan = if self.consume_word("FROM") {
            self.parse_table_refs()?
        } else {
            // Table-less SELECT: a single empty row to project literals from.
            LogicalPlan::Values {
                schema: sparkline_common::Schema::empty(),
                rows: Arc::new(vec![sparkline_common::Row::empty()]),
            }
        };

        if self.consume_word("WHERE") {
            let predicate = self.parse_expr()?;
            plan = LogicalPlan::Filter {
                predicate,
                input: Arc::new(plan),
            };
        }

        let group_exprs = if self.consume_word("GROUP") {
            self.expect_word("BY")?;
            let mut exprs = vec![self.parse_expr()?];
            while self.consume(&TokenKind::Comma) {
                exprs.push(self.parse_expr()?);
            }
            exprs
        } else {
            vec![]
        };

        let having = if self.consume_word("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        // Decide between Aggregate and plain Projection. GROUP BY, an
        // aggregate in the select list, or an aggregate in HAVING all force
        // an Aggregate node (Spark resolves global aggregates the same way).
        let has_aggregates = !group_exprs.is_empty()
            || select_list.iter().any(|e| e.contains_aggregate())
            || having.as_ref().is_some_and(|h| h.contains_aggregate());

        if has_aggregates {
            if select_list
                .iter()
                .any(|e| matches!(e, Expr::Wildcard { .. }))
            {
                return Err(Error::parse(
                    "SELECT * cannot be combined with GROUP BY or aggregate functions",
                ));
            }
            plan = LogicalPlan::Aggregate {
                group_exprs,
                aggr_exprs: select_list,
                input: Arc::new(plan),
            };
        } else {
            if having.is_some() {
                return Err(Error::parse(
                    "HAVING requires GROUP BY or an aggregate function",
                ));
            }
            plan = LogicalPlan::Projection {
                exprs: select_list,
                input: Arc::new(plan),
            };
        }

        if let Some(having_predicate) = having {
            plan = LogicalPlan::Filter {
                predicate: having_predicate,
                input: Arc::new(plan),
            };
        }

        if select_distinct {
            plan = LogicalPlan::Distinct {
                input: Arc::new(plan),
            };
        }

        // The skyline clause: after HAVING, before ORDER BY (paper §5.1).
        if self.consume_word("SKYLINE") {
            self.expect_word("OF")?;
            let distinct = self.consume_word("DISTINCT");
            let complete = self.consume_word("COMPLETE");
            let mut dims = vec![self.parse_skyline_item()?];
            while self.consume(&TokenKind::Comma) {
                dims.push(self.parse_skyline_item()?);
            }
            plan = LogicalPlan::Skyline {
                distinct,
                complete,
                dims,
                input: Arc::new(plan),
            };
        }

        if self.consume_word("ORDER") {
            self.expect_word("BY")?;
            let mut exprs = vec![self.parse_sort_item()?];
            while self.consume(&TokenKind::Comma) {
                exprs.push(self.parse_sort_item()?);
            }
            plan = LogicalPlan::Sort {
                exprs,
                input: Arc::new(plan),
            };
        }

        if self.consume_word("LIMIT") {
            let n = match self.advance().kind {
                TokenKind::Integer(n) if n >= 0 => n as usize,
                other => {
                    return Err(Error::parse(format!(
                        "LIMIT expects a non-negative integer, found '{other}'"
                    )))
                }
            };
            plan = LogicalPlan::Limit {
                n,
                input: Arc::new(plan),
            };
        }

        Ok(plan)
    }

    /// One `SKYLINE OF` item: `expression (MIN | MAX | DIFF)` (Listing 5).
    fn parse_skyline_item(&mut self) -> Result<SkylineDimension> {
        let child = self.parse_expr()?;
        let ty = if self.consume_word("MIN") {
            SkylineType::Min
        } else if self.consume_word("MAX") {
            SkylineType::Max
        } else if self.consume_word("DIFF") {
            SkylineType::Diff
        } else {
            return Err(self.error_here(format!(
                "skyline dimension must end in MIN, MAX or DIFF, found '{}'",
                self.peek_kind()
            )));
        };
        Ok(SkylineDimension::new(child, ty))
    }

    fn parse_sort_item(&mut self) -> Result<SortExpr> {
        let expr = self.parse_expr()?;
        let asc = if self.consume_word("DESC") {
            false
        } else {
            self.consume_word("ASC");
            true
        };
        // Spark defaults: NULLS FIRST for ASC, NULLS LAST for DESC.
        let mut nulls_first = asc;
        if self.consume_word("NULLS") {
            if self.consume_word("FIRST") {
                nulls_first = true;
            } else {
                self.expect_word("LAST")?;
                nulls_first = false;
            }
        }
        Ok(SortExpr {
            expr,
            asc,
            nulls_first,
        })
    }

    fn parse_select_item(&mut self) -> Result<Expr> {
        if self.consume(&TokenKind::Star) {
            return Ok(Expr::Wildcard { qualifier: None });
        }
        // `qualifier.*`
        if matches!(
            self.peek_kind(),
            TokenKind::Word(_) | TokenKind::QuotedIdent(_)
        ) && self.peek_ahead(1) == &TokenKind::Dot
            && self.peek_ahead(2) == &TokenKind::Star
        {
            let qualifier = self.parse_ident()?;
            self.expect(&TokenKind::Dot)?;
            self.expect(&TokenKind::Star)?;
            return Ok(Expr::Wildcard {
                qualifier: Some(qualifier),
            });
        }
        let expr = self.parse_expr()?;
        match self.parse_optional_alias()? {
            Some(alias) => Ok(expr.alias(alias)),
            None => Ok(expr),
        }
    }

    // ------------------------------------------------------------------
    // FROM clause
    // ------------------------------------------------------------------

    fn parse_table_refs(&mut self) -> Result<LogicalPlan> {
        let mut plan = self.parse_table_ref()?;
        while self.consume(&TokenKind::Comma) {
            let right = self.parse_table_ref()?;
            plan = LogicalPlan::Join {
                left: Arc::new(plan),
                right: Arc::new(right),
                join_type: JoinType::Cross,
                condition: JoinCondition::None,
            };
        }
        Ok(plan)
    }

    fn parse_table_ref(&mut self) -> Result<LogicalPlan> {
        let mut plan = self.parse_table_primary()?;
        loop {
            let join_type = if self.consume_word("JOIN") {
                JoinType::Inner
            } else if self.at_word("INNER") && self.word_ahead(1, "JOIN") {
                self.advance();
                self.advance();
                JoinType::Inner
            } else if self.at_word("LEFT") {
                self.advance();
                self.consume_word("OUTER");
                self.expect_word("JOIN")?;
                JoinType::LeftOuter
            } else if self.at_word("CROSS") && self.word_ahead(1, "JOIN") {
                self.advance();
                self.advance();
                JoinType::Cross
            } else {
                break;
            };
            let right = self.parse_table_primary()?;
            let condition = if self.consume_word("ON") {
                JoinCondition::On(self.parse_expr()?)
            } else if self.consume_word("USING") {
                self.expect(&TokenKind::LParen)?;
                let mut cols = vec![self.parse_ident()?];
                while self.consume(&TokenKind::Comma) {
                    cols.push(self.parse_ident()?);
                }
                self.expect(&TokenKind::RParen)?;
                JoinCondition::Using(cols)
            } else if join_type == JoinType::Cross {
                JoinCondition::None
            } else {
                return Err(self.error_here("expected ON or USING after JOIN".to_string()));
            };
            plan = LogicalPlan::Join {
                left: Arc::new(plan),
                right: Arc::new(right),
                join_type,
                condition,
            };
        }
        Ok(plan)
    }

    fn parse_table_primary(&mut self) -> Result<LogicalPlan> {
        if self.consume(&TokenKind::LParen) {
            // Either a derived table `(SELECT ...)` or parenthesized refs.
            let plan = if self.at_word("SELECT") {
                self.parse_select()?
            } else {
                self.parse_table_refs()?
            };
            self.expect(&TokenKind::RParen)?;
            match self.parse_optional_alias()? {
                Some(alias) => Ok(LogicalPlan::SubqueryAlias {
                    alias,
                    input: Arc::new(plan),
                }),
                // A derived table without alias keeps the inner plan as-is
                // (Spark allows this; columns keep their inner qualifiers).
                None => Ok(plan),
            }
        } else {
            let name = self.parse_ident()?;
            let relation = LogicalPlan::UnresolvedRelation { name };
            match self.parse_optional_alias()? {
                Some(alias) => Ok(LogicalPlan::SubqueryAlias {
                    alias,
                    input: Arc::new(relation),
                }),
                None => Ok(relation),
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.consume_word("OR") {
            let right = self.parse_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.consume_word("AND") {
            let right = self.parse_not()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.at_word("NOT") {
            // `NOT EXISTS (...)` produces a negated Exists node directly so
            // the planner can turn it into an anti join.
            if self.word_ahead(1, "EXISTS") {
                self.advance();
                self.advance();
                return self.parse_exists(true);
            }
            self.advance();
            let inner = self.parse_not()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        if self.consume_word("EXISTS") {
            return self.parse_exists(false);
        }
        self.parse_comparison()
    }

    fn parse_exists(&mut self, negated: bool) -> Result<Expr> {
        self.expect(&TokenKind::LParen)?;
        let subquery = self.parse_select()?;
        self.expect(&TokenKind::RParen)?;
        Ok(Expr::Exists {
            subquery: Arc::new(subquery),
            negated,
        })
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // `IS [NOT] NULL` postfix.
        if self.at_word("IS") {
            self.advance();
            let negated = self.consume_word("NOT");
            self.expect_word("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let op = match self.peek_kind() {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.parse_additive()?;
        Ok(left.binary(op, right))
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinaryOp::Plus,
                TokenKind::Minus => BinaryOp::Minus,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinaryOp::Multiply,
                TokenKind::Slash => BinaryOp::Divide,
                TokenKind::Percent => BinaryOp::Modulo,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.consume(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            // Fold negation of numeric literals immediately.
            return Ok(match inner {
                Expr::Literal(Value::Int64(i)) => Expr::Literal(Value::Int64(-i)),
                Expr::Literal(Value::Float64(f)) => Expr::Literal(Value::Float64(-f)),
                other => Expr::Negate(Box::new(other)),
            });
        }
        if self.consume(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek_kind().clone() {
            TokenKind::Integer(i) => {
                self.advance();
                Ok(Expr::lit(i))
            }
            TokenKind::Float(f) => {
                self.advance();
                Ok(Expr::lit(f))
            }
            TokenKind::StringLit(s) => {
                self.advance();
                Ok(Expr::lit(s.as_str()))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Word(w) => {
                if w.eq_ignore_ascii_case("NULL") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Null));
                }
                if w.eq_ignore_ascii_case("TRUE") {
                    self.advance();
                    return Ok(Expr::lit(true));
                }
                if w.eq_ignore_ascii_case("FALSE") {
                    self.advance();
                    return Ok(Expr::lit(false));
                }
                if w.eq_ignore_ascii_case("CAST") {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let inner = self.parse_expr()?;
                    self.expect_word("AS")?;
                    let ty = self.parse_type_name()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Cast {
                        expr: Box::new(inner),
                        to: ty,
                    });
                }
                // Function call?
                if self.peek_ahead(1) == &TokenKind::LParen {
                    return self.parse_function_call(&w);
                }
                // Column reference, possibly qualified.
                let first = match self.peek_kind() {
                    TokenKind::Word(w) if RESERVED.iter().any(|r| w.eq_ignore_ascii_case(r)) => {
                        return Err(
                            self.error_here(format!("unexpected keyword '{w}' in expression"))
                        );
                    }
                    _ => self.parse_ident()?,
                };
                if self.consume(&TokenKind::Dot) {
                    let second = self.parse_ident()?;
                    Ok(Expr::Column(Column::qualified(first, second)))
                } else {
                    Ok(Expr::Column(Column::new(first)))
                }
            }
            TokenKind::QuotedIdent(_) => {
                let first = self.parse_ident()?;
                if self.consume(&TokenKind::Dot) {
                    let second = self.parse_ident()?;
                    Ok(Expr::Column(Column::qualified(first, second)))
                } else {
                    Ok(Expr::Column(Column::new(first)))
                }
            }
            other => Err(self.error_here(format!("unexpected '{other}' in expression"))),
        }
    }

    fn parse_function_call(&mut self, name: &str) -> Result<Expr> {
        self.advance(); // function name word
        self.expect(&TokenKind::LParen)?;
        if let Some(agg) = AggregateFunction::from_name(name) {
            // count(*) has no argument.
            if agg == AggregateFunction::Count && self.consume(&TokenKind::Star) {
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::Aggregate {
                    func: agg,
                    arg: None,
                });
            }
            let arg = self.parse_expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Aggregate {
                func: agg,
                arg: Some(Box::new(arg)),
            });
        }
        if let Some(func) = ScalarFunction::from_name(name) {
            let mut args = Vec::new();
            if !self.consume(&TokenKind::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.consume(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
            }
            let expected = match func {
                ScalarFunction::IfNull => Some(2),
                ScalarFunction::Abs => Some(1),
                ScalarFunction::Coalesce => None,
            };
            if let Some(n) = expected {
                if args.len() != n {
                    return Err(Error::parse(format!(
                        "{}() expects {n} argument(s), got {}",
                        func.name(),
                        args.len()
                    )));
                }
            } else if args.is_empty() {
                return Err(Error::parse("coalesce() expects at least one argument"));
            }
            return Ok(Expr::ScalarFn { func, args });
        }
        Err(Error::parse(format!("unknown function '{name}'")))
    }

    fn parse_type_name(&mut self) -> Result<DataType> {
        let word = match self.advance().kind {
            TokenKind::Word(w) => w,
            other => return Err(Error::parse(format!("expected type name, found '{other}'"))),
        };
        match word.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "LONG" => Ok(DataType::Int64),
            "FLOAT" | "DOUBLE" | "REAL" => Ok(DataType::Float64),
            "STRING" | "VARCHAR" | "TEXT" => Ok(DataType::Utf8),
            "BOOLEAN" | "BOOL" => Ok(DataType::Boolean),
            other => Err(Error::parse(format!("unknown type '{other}'"))),
        }
    }
}
