#![warn(missing_docs)]

//! # sparkline-parser
//!
//! SQL lexer and recursive-descent parser for the `sparkline` engine,
//! extending the `SELECT` grammar with the paper's skyline clause
//! (Listings 3 and 5 of *"Integration of Skyline Queries into Spark SQL"*,
//! EDBT 2023):
//!
//! ```sql
//! SELECT price, user_rating FROM hotels
//! SKYLINE OF price MIN, user_rating MAX;
//! ```
//!
//! The parser emits unresolved [`sparkline_plan::LogicalPlan`]s; name and
//! type resolution happen in `sparkline-analyzer`. Besides queries,
//! [`parse_statement`] handles `DELETE FROM <table> [WHERE <predicate>]`
//! (see the [`parser`] module docs for the grammar).

pub mod lexer;
pub mod parser;

pub use lexer::{tokenize, Token, TokenKind};
pub use parser::{parse_expression, parse_query, parse_statement, Statement};

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::SkylineType;
    use sparkline_plan::{Expr, JoinCondition, JoinType, LogicalPlan};

    fn parse(sql: &str) -> LogicalPlan {
        parse_query(sql).unwrap_or_else(|e| panic!("failed to parse {sql:?}: {e}"))
    }

    #[test]
    fn simple_select() {
        let plan = parse("SELECT a, b FROM t");
        let d = plan.display_indent();
        assert!(d.contains("Projection [a, b]"), "{d}");
        assert!(d.contains("UnresolvedRelation [t]"), "{d}");
    }

    #[test]
    fn hotel_skyline_query_listing_2() {
        // Listing 2 of the paper.
        let plan =
            parse("SELECT price, user_rating FROM hotels SKYLINE OF price MIN, user_rating MAX;");
        match &plan {
            LogicalPlan::Skyline {
                distinct,
                complete,
                dims,
                input,
            } => {
                assert!(!distinct);
                assert!(!complete);
                assert_eq!(dims.len(), 2);
                assert_eq!(dims[0].ty, SkylineType::Min);
                assert_eq!(dims[1].ty, SkylineType::Max);
                assert!(matches!(input.as_ref(), LogicalPlan::Projection { .. }));
            }
            other => panic!("expected Skyline on top, got {other:?}"),
        }
    }

    #[test]
    fn skyline_modifiers_and_diff() {
        let plan = parse("SELECT * FROM t SKYLINE OF DISTINCT COMPLETE a MIN, b MAX, c DIFF");
        match &plan {
            LogicalPlan::Skyline {
                distinct,
                complete,
                dims,
                ..
            } => {
                assert!(*distinct && *complete);
                assert_eq!(
                    dims.iter().map(|d| d.ty).collect::<Vec<_>>(),
                    vec![SkylineType::Min, SkylineType::Max, SkylineType::Diff]
                );
            }
            other => panic!("expected Skyline, got {other:?}"),
        }
    }

    #[test]
    fn skyline_requires_dimension_type() {
        let err = parse_query("SELECT * FROM t SKYLINE OF a").unwrap_err();
        assert!(err.to_string().contains("MIN, MAX or DIFF"), "{err}");
    }

    #[test]
    fn skyline_on_expression_dimension() {
        let plan = parse("SELECT * FROM t SKYLINE OF price / accommodates MIN");
        match &plan {
            LogicalPlan::Skyline { dims, .. } => {
                assert_eq!(dims[0].child.to_string(), "(price / accommodates)");
            }
            other => panic!("expected Skyline, got {other:?}"),
        }
    }

    #[test]
    fn skyline_after_having_before_order_by() {
        let plan = parse(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 1 \
             SKYLINE OF a MIN ORDER BY a",
        );
        // Sort > Skyline > Filter(HAVING) > Aggregate
        let d = plan.display_indent();
        let lines: Vec<&str> = d.lines().map(|l| l.trim()).collect();
        assert!(lines[0].starts_with("Sort"), "{d}");
        assert!(lines[1].starts_with("Skyline"), "{d}");
        assert!(lines[2].starts_with("Filter"), "{d}");
        assert!(lines[3].starts_with("Aggregate"), "{d}");
    }

    #[test]
    fn plain_sql_reference_query_listing_1() {
        // Listing 1 of the paper: the NOT EXISTS rewrite.
        let plan = parse(
            "SELECT price, user_rating FROM hotels AS o WHERE NOT EXISTS( \
               SELECT * FROM hotels AS i WHERE \
                 i.price <= o.price AND i.user_rating >= o.user_rating \
                 AND (i.price < o.price OR i.user_rating > o.user_rating));",
        );
        let d = plan.display_indent();
        assert!(d.contains("Filter [NOT EXISTS(<subquery>)]"), "{d}");
        assert!(d.contains("SubqueryAlias [o]"), "{d}");
    }

    #[test]
    fn joins_with_on_and_using() {
        let plan = parse("SELECT * FROM a JOIN b ON a.id = b.id LEFT OUTER JOIN c USING (id, k)");
        match &plan {
            LogicalPlan::Projection { input, .. } => match input.as_ref() {
                LogicalPlan::Join {
                    join_type,
                    condition,
                    left,
                    ..
                } => {
                    assert_eq!(*join_type, JoinType::LeftOuter);
                    assert_eq!(
                        *condition,
                        JoinCondition::Using(vec!["id".into(), "k".into()])
                    );
                    assert!(matches!(
                        left.as_ref(),
                        LogicalPlan::Join {
                            join_type: JoinType::Inner,
                            ..
                        }
                    ));
                }
                other => panic!("expected join, got {other:?}"),
            },
            other => panic!("expected projection, got {other:?}"),
        }
    }

    #[test]
    fn comma_cross_join() {
        let plan = parse("SELECT * FROM a, b WHERE a.x = b.x");
        let d = plan.display_indent();
        assert!(d.contains("Join [Cross]"), "{d}");
    }

    #[test]
    fn derived_table_with_alias() {
        let plan = parse("SELECT t.x FROM (SELECT a AS x FROM u) AS t");
        let d = plan.display_indent();
        assert!(d.contains("SubqueryAlias [t]"), "{d}");
        assert!(d.contains("Projection [a AS x]"), "{d}");
    }

    #[test]
    fn group_by_having_aggregates() {
        let plan = parse("SELECT k, sum(v) AS total FROM t GROUP BY k HAVING sum(v) > 10");
        let d = plan.display_indent();
        assert!(d.contains("Filter [(sum(v) > 10)]"), "{d}");
        assert!(
            d.contains("Aggregate [group: k; aggr: k, sum(v) AS total]"),
            "{d}"
        );
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let plan = parse("SELECT count(*) FROM t");
        assert!(matches!(plan, LogicalPlan::Aggregate { .. }));
    }

    #[test]
    fn having_without_aggregate_rejected() {
        assert!(parse_query("SELECT a FROM t HAVING a > 1").is_err());
    }

    #[test]
    fn order_by_limit_distinct() {
        let plan = parse("SELECT DISTINCT a FROM t ORDER BY a DESC NULLS FIRST, b LIMIT 10");
        let d = plan.display_indent();
        assert!(d.contains("Limit [10]"), "{d}");
        assert!(d.contains("Sort [a DESC NULLS FIRST, b ASC]"), "{d}");
        assert!(d.contains("Distinct"), "{d}");
    }

    #[test]
    fn select_without_from() {
        let plan = parse("SELECT 1 + 2 AS three");
        let d = plan.display_indent();
        assert!(d.contains("Projection [(1 + 2) AS three]"), "{d}");
        assert!(d.contains("Values [1 rows]"), "{d}");
    }

    #[test]
    fn expression_parsing_precedence() {
        let e = parse_expression("a + b * c < d AND NOT e = f").unwrap();
        assert_eq!(e.to_string(), "(((a + (b * c)) < d) AND (NOT (e = f)))");
    }

    #[test]
    fn unary_minus_folds_literals() {
        let e = parse_expression("-5").unwrap();
        assert_eq!(e, Expr::lit(-5i64));
        let e = parse_expression("-x").unwrap();
        assert_eq!(e.to_string(), "(- x)");
    }

    #[test]
    fn is_null_and_functions() {
        let e = parse_expression("ifnull(r.length, 0) IS NOT NULL").unwrap();
        assert_eq!(e.to_string(), "(ifnull(r.length, 0) IS NOT NULL)");
        let e = parse_expression("coalesce(a, b, 1)").unwrap();
        assert_eq!(e.to_string(), "coalesce(a, b, 1)");
    }

    #[test]
    fn cast_expression() {
        let e = parse_expression("CAST(a AS DOUBLE)").unwrap();
        assert_eq!(e.to_string(), "CAST(a AS DOUBLE)");
    }

    #[test]
    fn count_star_and_aggregates() {
        let e = parse_expression("count(*)").unwrap();
        assert_eq!(e.to_string(), "count(*)");
        let e = parse_expression("min(ti.position)").unwrap();
        assert_eq!(e.to_string(), "min(ti.position)");
    }

    #[test]
    fn unknown_function_rejected() {
        assert!(parse_expression("frobnicate(x)").is_err());
    }

    #[test]
    fn string_and_boolean_literals() {
        let e = parse_expression("name = 'O''Hara' AND flag = TRUE OR x IS NULL").unwrap();
        assert_eq!(
            e.to_string(),
            "(((name = 'O'Hara') AND (flag = true)) OR (x IS NULL))"
        );
    }

    #[test]
    fn delete_statement_parses() {
        match parse_statement("DELETE FROM hotels WHERE price > 100;").unwrap() {
            Statement::Delete { table, predicate } => {
                assert_eq!(table, "hotels");
                assert_eq!(predicate.unwrap().to_string(), "(price > 100)");
            }
            other => panic!("expected delete, got {other:?}"),
        }
        match parse_statement("DELETE FROM t").unwrap() {
            Statement::Delete { table, predicate } => {
                assert_eq!(table, "t");
                assert!(predicate.is_none());
            }
            other => panic!("expected delete, got {other:?}"),
        }
        assert!(matches!(
            parse_statement("SELECT a FROM t").unwrap(),
            Statement::Query(_)
        ));
    }

    #[test]
    fn malformed_delete_rejected() {
        assert!(parse_statement("DELETE FROM").is_err());
        assert!(parse_statement("DELETE FROM t WHERE").is_err());
        assert!(parse_statement("DELETE t WHERE a = 1").is_err());
        assert!(parse_statement("DELETE FROM t extra").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("SELECT a FROM t extra garbage +").is_err());
    }

    #[test]
    fn wildcard_forms() {
        let plan = parse("SELECT *, t.* FROM t");
        match plan {
            LogicalPlan::Projection { exprs, .. } => {
                assert_eq!(exprs[0], Expr::Wildcard { qualifier: None });
                assert_eq!(
                    exprs[1],
                    Expr::Wildcard {
                        qualifier: Some("t".into())
                    }
                );
            }
            other => panic!("expected projection, got {other:?}"),
        }
    }

    #[test]
    fn musicbrainz_base_query_parses() {
        // Listing 11 (complete base query), lightly reformatted.
        let sql = "SELECT r.id, ifnull(r.length, 0) AS length, r.video, \
                   ifnull(rm.rating, 0) AS rating, \
                   ifnull(rm.rating_count, 0) AS rating_count, \
                   recording_tracks.num_tracks, recording_tracks.min_position \
                   FROM recording_complete r LEFT OUTER JOIN ( \
                     SELECT ri.id AS id, count(ti.recording) AS num_tracks, \
                            min(ti.position) AS min_position \
                     FROM recording_complete ri \
                     JOIN track ti ON (ti.recording = ri.id) \
                     GROUP BY ri.id \
                   ) recording_tracks USING (id) \
                   JOIN recording_meta rm USING (id)";
        let plan = parse(sql);
        let d = plan.display_indent();
        assert!(d.contains("Join [LeftOuter, using: id]"), "{d}");
        assert!(d.contains("SubqueryAlias [recording_tracks]"), "{d}");
        assert!(d.contains("Aggregate"), "{d}");
    }

    #[test]
    fn musicbrainz_skyline_query_listing_14() {
        let sql = "SELECT * FROM ( \
                     SELECT r.id, ifnull(r.length, 0) AS length \
                     FROM recording_complete r \
                   ) SKYLINE OF COMPLETE rating MAX, length MIN";
        let plan = parse(sql);
        match &plan {
            LogicalPlan::Skyline { complete, dims, .. } => {
                assert!(*complete);
                assert_eq!(dims.len(), 2);
            }
            other => panic!("expected skyline, got {other:?}"),
        }
    }
}
