//! Expression trees.
//!
//! Expressions start out *unresolved* (named [`Expr::Column`] references,
//! untyped aggregates) as produced by the parser or the DataFrame API, and
//! are rewritten by the analyzer into *bound* form ([`Expr::BoundColumn`]
//! with input positions) before optimization and execution. This mirrors
//! Spark's single-AST design where resolution is a tree rewrite rather than
//! a change of type.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use sparkline_common::{DataType, Error, Field, Result, Row, Schema, SkylineType, Value};

use crate::logical::LogicalPlan;

/// An unresolved column reference `[qualifier.]name`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Column {
    /// Relation qualifier, e.g. `hotels` in `hotels.price`.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl Column {
    /// Unqualified reference.
    pub fn new(name: impl Into<String>) -> Self {
        Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Qualified reference.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// A column reference resolved to a position in the input schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundColumn {
    /// Position in the input row.
    pub index: usize,
    /// The resolved field (name, type, nullability, qualifier).
    pub field: Field,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// Logical conjunction (Kleene three-valued).
    And,
    /// Logical disjunction (Kleene three-valued).
    Or,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Multiply,
    /// `/` (NULL on division by zero, like Spark).
    Divide,
    /// `%` (NULL on modulo by zero).
    Modulo,
}

impl BinaryOp {
    /// Whether this is a comparison producing a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// Whether this is a boolean connective.
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// SQL token for display.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunction {
    /// `count(expr)` / `count(*)` when the argument is absent.
    Count,
    /// `sum(expr)` over non-NULL values.
    Sum,
    /// `min(expr)` over non-NULL values.
    Min,
    /// `max(expr)` over non-NULL values.
    Max,
    /// `avg(expr)` over non-NULL values.
    Avg,
}

impl AggregateFunction {
    /// Function name in SQL.
    pub fn name(self) -> &'static str {
        match self {
            AggregateFunction::Count => "count",
            AggregateFunction::Sum => "sum",
            AggregateFunction::Min => "min",
            AggregateFunction::Max => "max",
            AggregateFunction::Avg => "avg",
        }
    }

    /// Parse a function name into an aggregate, if it is one.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggregateFunction::Count),
            "sum" => Some(AggregateFunction::Sum),
            "min" => Some(AggregateFunction::Min),
            "max" => Some(AggregateFunction::Max),
            "avg" => Some(AggregateFunction::Avg),
            _ => None,
        }
    }

    /// Output type given the input type.
    pub fn output_type(self, input: DataType) -> DataType {
        match self {
            AggregateFunction::Count => DataType::Int64,
            AggregateFunction::Avg => DataType::Float64,
            AggregateFunction::Sum => {
                if input == DataType::Float64 {
                    DataType::Float64
                } else {
                    DataType::Int64
                }
            }
            AggregateFunction::Min | AggregateFunction::Max => input,
        }
    }
}

/// Scalar (non-aggregate) functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunction {
    /// `ifnull(a, b)`: `a` unless it is NULL, else `b`.
    IfNull,
    /// `coalesce(a, b, ...)`: first non-NULL argument.
    Coalesce,
    /// `abs(a)`.
    Abs,
}

impl ScalarFunction {
    /// Function name in SQL.
    pub fn name(self) -> &'static str {
        match self {
            ScalarFunction::IfNull => "ifnull",
            ScalarFunction::Coalesce => "coalesce",
            ScalarFunction::Abs => "abs",
        }
    }

    /// Parse a function name into a scalar function, if it is one.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "ifnull" | "nvl" => Some(ScalarFunction::IfNull),
            "coalesce" => Some(ScalarFunction::Coalesce),
            "abs" => Some(ScalarFunction::Abs),
            _ => None,
        }
    }
}

/// A skyline dimension in the logical plan: a child expression plus its
/// `MIN`/`MAX`/`DIFF` type (paper §5.2: `SkylineDimension` extends the
/// default expression and stores the database dimension as its child so
/// that the analyzer's generic expression resolution applies to it).
#[derive(Debug, Clone, PartialEq)]
pub struct SkylineDimension {
    /// The dimension expression (usually a column, possibly an aggregate).
    pub child: Expr,
    /// MIN / MAX / DIFF.
    pub ty: SkylineType,
}

impl SkylineDimension {
    /// Shorthand constructor.
    pub fn new(child: Expr, ty: SkylineType) -> Self {
        SkylineDimension { child, ty }
    }
}

impl fmt::Display for SkylineDimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.child, self.ty)
    }
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortExpr {
    /// Key expression.
    pub expr: Expr,
    /// Ascending?
    pub asc: bool,
    /// NULLs first? (Spark default: NULLS FIRST for ASC, NULLS LAST for DESC.)
    pub nulls_first: bool,
}

impl SortExpr {
    /// An ascending key with Spark's default null ordering.
    pub fn asc(expr: Expr) -> Self {
        SortExpr {
            expr,
            asc: true,
            nulls_first: true,
        }
    }

    /// A descending key with Spark's default null ordering.
    pub fn desc(expr: Expr) -> Self {
        SortExpr {
            expr,
            asc: false,
            nulls_first: false,
        }
    }
}

impl fmt::Display for SortExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}{}",
            self.expr,
            if self.asc { "ASC" } else { "DESC" },
            if self.nulls_first == self.asc {
                ""
            } else if self.nulls_first {
                " NULLS FIRST"
            } else {
                " NULLS LAST"
            }
        )
    }
}

/// An expression tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Unresolved `[qualifier.]name` reference.
    Column(Column),
    /// Reference bound to an input position.
    BoundColumn(BoundColumn),
    /// Reference to a column of the *outer* query, bound to a position in
    /// the outer row. Appears only inside correlated subqueries.
    OuterColumn(BoundColumn),
    /// Constant.
    Literal(Value),
    /// `left op right`.
    BinaryOp {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT expr`.
    Not(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL` (negated = true).
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// `true` for `IS NOT NULL`.
        negated: bool,
    },
    /// `- expr`.
    Negate(Box<Expr>),
    /// Scalar function call.
    ScalarFn {
        /// The function.
        func: ScalarFunction,
        /// Its arguments.
        args: Vec<Expr>,
    },
    /// Aggregate function call; only valid beneath an `Aggregate` node
    /// (the analyzer hoists it there and replaces it with a bound column).
    Aggregate {
        /// The aggregate function.
        func: AggregateFunction,
        /// `None` encodes `count(*)`.
        arg: Option<Box<Expr>>,
    },
    /// `expr AS name`.
    Alias {
        /// The aliased expression.
        expr: Box<Expr>,
        /// The output name.
        name: String,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// The expression to convert.
        expr: Box<Expr>,
        /// The target type.
        to: DataType,
    },
    /// `*` or `qualifier.*` in a projection (expanded by the analyzer).
    Wildcard {
        /// `Some` for `qualifier.*`, `None` for a bare `*`.
        qualifier: Option<String>,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// The (correlated) subquery plan.
        subquery: Arc<LogicalPlan>,
        /// `true` for `NOT EXISTS`.
        negated: bool,
    },
}

impl Expr {
    /// Column reference shorthand.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(Column::new(name))
    }

    /// Qualified column reference shorthand.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column(Column::qualified(qualifier, name))
    }

    /// Literal shorthand.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// `self AS name`.
    pub fn alias(self, name: impl Into<String>) -> Expr {
        Expr::Alias {
            expr: Box::new(self),
            name: name.into(),
        }
    }

    /// Build `self op other`.
    pub fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::BinaryOp {
            left: Box::new(self),
            op,
            right: Box::new(other),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinaryOp::And, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Or, other)
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Eq, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Lt, other)
    }

    /// `self <= other`.
    pub fn lt_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::LtEq, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Gt, other)
    }

    /// `self >= other`.
    pub fn gt_eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::GtEq, other)
    }

    /// Direct children of this expression.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Column(_)
            | Expr::BoundColumn(_)
            | Expr::OuterColumn(_)
            | Expr::Literal(_)
            | Expr::Wildcard { .. }
            | Expr::Exists { .. } => vec![],
            Expr::BinaryOp { left, right, .. } => vec![left, right],
            Expr::Not(e) | Expr::Negate(e) => vec![e],
            Expr::IsNull { expr, .. } => vec![expr],
            Expr::ScalarFn { args, .. } => args.iter().collect(),
            Expr::Aggregate { arg, .. } => arg.iter().map(|b| b.as_ref()).collect(),
            Expr::Alias { expr, .. } => vec![expr],
            Expr::Cast { expr, .. } => vec![expr],
        }
    }

    /// Rebuild this node with transformed children, bottom-up. `f` is
    /// applied to every node after its children have been rewritten.
    pub fn transform_up(self, f: &mut dyn FnMut(Expr) -> Result<Expr>) -> Result<Expr> {
        let rewritten = match self {
            Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
                left: Box::new(left.transform_up(f)?),
                op,
                right: Box::new(right.transform_up(f)?),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.transform_up(f)?)),
            Expr::Negate(e) => Expr::Negate(Box::new(e.transform_up(f)?)),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.transform_up(f)?),
                negated,
            },
            Expr::ScalarFn { func, args } => Expr::ScalarFn {
                func,
                args: args
                    .into_iter()
                    .map(|a| a.transform_up(f))
                    .collect::<Result<_>>()?,
            },
            Expr::Aggregate { func, arg } => Expr::Aggregate {
                func,
                arg: match arg {
                    Some(a) => Some(Box::new(a.transform_up(f)?)),
                    None => None,
                },
            },
            Expr::Alias { expr, name } => Expr::Alias {
                expr: Box::new(expr.transform_up(f)?),
                name,
            },
            Expr::Cast { expr, to } => Expr::Cast {
                expr: Box::new(expr.transform_up(f)?),
                to,
            },
            leaf => leaf,
        };
        f(rewritten)
    }

    /// Top-down transformation: `f` rewrites each node *before* its
    /// children are visited; children of the rewritten node are then
    /// transformed. Useful when a whole subtree should be replaced (e.g.
    /// matching a group expression during aggregate compilation).
    pub fn transform_down(self, f: &mut dyn FnMut(Expr) -> Result<Expr>) -> Result<Expr> {
        let rewritten = f(self)?;
        Ok(match rewritten {
            Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
                left: Box::new(left.transform_down(f)?),
                op,
                right: Box::new(right.transform_down(f)?),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.transform_down(f)?)),
            Expr::Negate(e) => Expr::Negate(Box::new(e.transform_down(f)?)),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.transform_down(f)?),
                negated,
            },
            Expr::ScalarFn { func, args } => Expr::ScalarFn {
                func,
                args: args
                    .into_iter()
                    .map(|a| a.transform_down(f))
                    .collect::<Result<_>>()?,
            },
            Expr::Aggregate { func, arg } => Expr::Aggregate {
                func,
                arg: match arg {
                    Some(a) => Some(Box::new(a.transform_down(f)?)),
                    None => None,
                },
            },
            Expr::Alias { expr, name } => Expr::Alias {
                expr: Box::new(expr.transform_down(f)?),
                name,
            },
            Expr::Cast { expr, to } => Expr::Cast {
                expr: Box::new(expr.transform_down(f)?),
                to,
            },
            leaf => leaf,
        })
    }

    /// Whether the whole tree is resolved (no named columns or wildcards;
    /// `Exists` subqueries must be resolved plans).
    pub fn resolved(&self) -> bool {
        match self {
            Expr::Column(_) | Expr::Wildcard { .. } => false,
            Expr::Exists { subquery, .. } => subquery.resolved(),
            _ => self.children().iter().all(|c| c.resolved()),
        }
    }

    /// Whether the tree contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            _ => self.children().iter().any(|c| c.contains_aggregate()),
        }
    }

    /// Collect all bound input positions referenced by this tree
    /// (excluding outer references).
    pub fn referenced_indices(&self, out: &mut Vec<usize>) {
        match self {
            Expr::BoundColumn(c) => out.push(c.index),
            Expr::Exists { subquery, .. } => {
                // Outer references inside the subquery point at *our*
                // input; collect them so pruning keeps those columns.
                collect_outer_refs(subquery, out);
            }
            _ => {
                for c in self.children() {
                    c.referenced_indices(out);
                }
            }
        }
    }

    /// The output column name this expression produces in a projection,
    /// following Spark's conventions (alias > column name > canonical text).
    pub fn output_name(&self) -> String {
        match self {
            Expr::Alias { name, .. } => name.clone(),
            Expr::Column(c) => c.name.clone(),
            Expr::BoundColumn(c) | Expr::OuterColumn(c) => c.field.name().to_string(),
            other => other.to_string(),
        }
    }

    /// The field this (resolved) expression contributes to an output
    /// schema, given its input schema.
    pub fn to_field(&self, input: &Schema) -> Result<Field> {
        let (dt, nullable) = self.data_type_and_nullable(input)?;
        Ok(match self {
            Expr::BoundColumn(c) => c.field.clone(),
            Expr::Alias { expr, name } => {
                let inner = expr.to_field(input)?;
                Field::new(name.clone(), inner.data_type(), inner.nullable())
            }
            _ => Field::new(self.output_name(), dt, nullable),
        })
    }

    /// Type and nullability of a resolved expression.
    #[allow(clippy::only_used_in_recursion)]
    pub fn data_type_and_nullable(&self, input: &Schema) -> Result<(DataType, bool)> {
        match self {
            Expr::Column(c) => Err(Error::internal(format!(
                "cannot type unresolved column '{c}'"
            ))),
            Expr::Wildcard { .. } => Err(Error::internal("cannot type unexpanded wildcard")),
            Expr::BoundColumn(c) | Expr::OuterColumn(c) => {
                Ok((c.field.data_type(), c.field.nullable()))
            }
            Expr::Literal(v) => Ok((v.data_type(), v.is_null())),
            Expr::BinaryOp { left, op, right } => {
                let (lt, ln) = left.data_type_and_nullable(input)?;
                let (rt, rn) = right.data_type_and_nullable(input)?;
                let nullable = ln || rn;
                if op.is_comparison() || op.is_logical() {
                    return Ok((DataType::Boolean, nullable));
                }
                let common = lt.common_type(rt).ok_or_else(|| {
                    Error::analysis(format!(
                        "incompatible operand types {lt} and {rt} for operator {}",
                        op.symbol()
                    ))
                })?;
                // Integer division stays integral (Spark's `div` is `/` on
                // doubles; we follow Rust/ANSI semantics for BIGINT).
                Ok((common, nullable || *op == BinaryOp::Divide))
            }
            Expr::Not(e) => {
                let (_, n) = e.data_type_and_nullable(input)?;
                Ok((DataType::Boolean, n))
            }
            Expr::IsNull { .. } => Ok((DataType::Boolean, false)),
            Expr::Negate(e) => e.data_type_and_nullable(input),
            Expr::ScalarFn { func, args } => match func {
                ScalarFunction::IfNull | ScalarFunction::Coalesce => {
                    let mut ty = DataType::Null;
                    let mut all_nullable = true;
                    for a in args {
                        let (at, an) = a.data_type_and_nullable(input)?;
                        ty = ty.common_type(at).ok_or_else(|| {
                            Error::analysis(format!(
                                "incompatible argument types in {}",
                                func.name()
                            ))
                        })?;
                        all_nullable &= an;
                    }
                    Ok((ty, all_nullable))
                }
                ScalarFunction::Abs => args[0].data_type_and_nullable(input),
            },
            Expr::Aggregate { func, arg } => {
                let input_ty = match arg {
                    Some(a) => a.data_type_and_nullable(input)?.0,
                    None => DataType::Int64,
                };
                let nullable = !matches!(func, AggregateFunction::Count);
                Ok((func.output_type(input_ty), nullable))
            }
            Expr::Alias { expr, .. } => expr.data_type_and_nullable(input),
            Expr::Cast { expr, to } => {
                let (_, n) = expr.data_type_and_nullable(input)?;
                Ok((*to, n))
            }
            Expr::Exists { .. } => Ok((DataType::Boolean, false)),
        }
    }

    /// Evaluate a fully bound, aggregate-free expression against a row.
    pub fn evaluate(&self, row: &Row) -> Result<Value> {
        self.evaluate_inner(row, None)
    }

    /// Evaluate against a pair of rows (join predicate evaluation): bound
    /// indices `< split` read from `left`, the rest from `right` at
    /// `index - split`.
    pub fn evaluate_joined(&self, left: &Row, right: &Row, split: usize) -> Result<Value> {
        self.evaluate_inner(left, Some((right, split)))
    }

    fn evaluate_inner(&self, row: &Row, joined: Option<(&Row, usize)>) -> Result<Value> {
        let fetch = |index: usize| -> &Value {
            match joined {
                Some((right, split)) if index >= split => right.get(index - split),
                _ => row.get(index),
            }
        };
        match self {
            Expr::BoundColumn(c) => Ok(fetch(c.index).clone()),
            Expr::OuterColumn(c) => Err(Error::internal(format!(
                "unbound outer reference to {} during evaluation",
                c.field.qualified_name()
            ))),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::BinaryOp { left, op, right } => {
                // Short-circuit Kleene logic for AND/OR.
                if *op == BinaryOp::And || *op == BinaryOp::Or {
                    return evaluate_logical(left.evaluate_inner(row, joined)?, *op, || {
                        right.evaluate_inner(row, joined)
                    });
                }
                let l = left.evaluate_inner(row, joined)?;
                let r = right.evaluate_inner(row, joined)?;
                evaluate_binary(&l, *op, &r)
            }
            Expr::Not(e) => match e.evaluate_inner(row, joined)? {
                Value::Null => Ok(Value::Null),
                Value::Boolean(b) => Ok(Value::Boolean(!b)),
                other => Err(Error::execution(format!("NOT applied to {other}"))),
            },
            Expr::IsNull { expr, negated } => {
                let v = expr.evaluate_inner(row, joined)?;
                Ok(Value::Boolean(v.is_null() != *negated))
            }
            Expr::Negate(e) => match e.evaluate_inner(row, joined)? {
                Value::Null => Ok(Value::Null),
                Value::Int64(i) => Ok(Value::Int64(-i)),
                Value::Float64(f) => Ok(Value::Float64(-f)),
                other => Err(Error::execution(format!("cannot negate {other}"))),
            },
            Expr::ScalarFn { func, args } => match func {
                ScalarFunction::IfNull | ScalarFunction::Coalesce => {
                    for a in args {
                        let v = a.evaluate_inner(row, joined)?;
                        if !v.is_null() {
                            return Ok(v);
                        }
                    }
                    Ok(Value::Null)
                }
                ScalarFunction::Abs => match args[0].evaluate_inner(row, joined)? {
                    Value::Null => Ok(Value::Null),
                    Value::Int64(i) => Ok(Value::Int64(i.abs())),
                    Value::Float64(f) => Ok(Value::Float64(f.abs())),
                    other => Err(Error::execution(format!("abs() applied to {other}"))),
                },
            },
            Expr::Aggregate { func, .. } => Err(Error::internal(format!(
                "aggregate {}() evaluated outside an Aggregate node",
                func.name()
            ))),
            Expr::Alias { expr, .. } => expr.evaluate_inner(row, joined),
            Expr::Cast { expr, to } => {
                let v = expr.evaluate_inner(row, joined)?;
                v.cast_to(*to)
                    .ok_or_else(|| Error::execution(format!("cannot cast {v} to {to}")))
            }
            Expr::Column(c) => Err(Error::internal(format!(
                "unresolved column '{c}' during evaluation"
            ))),
            Expr::Wildcard { .. } => Err(Error::internal("wildcard during evaluation")),
            Expr::Exists { .. } => Err(Error::internal(
                "EXISTS must be planned as a semi/anti join before execution",
            )),
        }
    }
}

/// Kleene three-valued AND/OR with short-circuiting.
fn evaluate_logical(
    left: Value,
    op: BinaryOp,
    right: impl FnOnce() -> Result<Value>,
) -> Result<Value> {
    let lb = match &left {
        Value::Null => None,
        Value::Boolean(b) => Some(*b),
        other => {
            return Err(Error::execution(format!(
                "{} applied to {other}",
                op.symbol()
            )))
        }
    };
    match (op, lb) {
        (BinaryOp::And, Some(false)) => return Ok(Value::Boolean(false)),
        (BinaryOp::Or, Some(true)) => return Ok(Value::Boolean(true)),
        _ => {}
    }
    let rv = right()?;
    let rb = match &rv {
        Value::Null => None,
        Value::Boolean(b) => Some(*b),
        other => {
            return Err(Error::execution(format!(
                "{} applied to {other}",
                op.symbol()
            )))
        }
    };
    let out = match op {
        BinaryOp::And => match (lb, rb) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinaryOp::Or => match (lb, rb) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!(),
    };
    Ok(out.map(Value::Boolean).unwrap_or(Value::Null))
}

/// Evaluate a non-logical binary operator with SQL NULL semantics.
fn evaluate_binary(l: &Value, op: BinaryOp, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.sql_compare(r).ok_or_else(|| {
            Error::execution(format!(
                "cannot compare {} with {}",
                l.data_type(),
                r.data_type()
            ))
        })?;
        let b = match op {
            BinaryOp::Eq => ord == Ordering::Equal,
            BinaryOp::NotEq => ord != Ordering::Equal,
            BinaryOp::Lt => ord == Ordering::Less,
            BinaryOp::LtEq => ord != Ordering::Greater,
            BinaryOp::Gt => ord == Ordering::Greater,
            BinaryOp::GtEq => ord != Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(Value::Boolean(b));
    }
    // Arithmetic with Int64/Float64 promotion.
    let result = match (l, r) {
        (Value::Int64(a), Value::Int64(b)) => {
            let a = *a;
            let b = *b;
            match op {
                BinaryOp::Plus => a.checked_add(b).map(Value::Int64),
                BinaryOp::Minus => a.checked_sub(b).map(Value::Int64),
                BinaryOp::Multiply => a.checked_mul(b).map(Value::Int64),
                BinaryOp::Divide => {
                    if b == 0 {
                        return Ok(Value::Null); // Spark: x / 0 -> NULL
                    }
                    a.checked_div(b).map(Value::Int64)
                }
                BinaryOp::Modulo => {
                    if b == 0 {
                        return Ok(Value::Null);
                    }
                    a.checked_rem(b).map(Value::Int64)
                }
                _ => unreachable!(),
            }
        }
        _ => {
            let fa = numeric_as_f64(l)?;
            let fb = numeric_as_f64(r)?;
            let v = match op {
                BinaryOp::Plus => fa + fb,
                BinaryOp::Minus => fa - fb,
                BinaryOp::Multiply => fa * fb,
                BinaryOp::Divide => {
                    if fb == 0.0 {
                        return Ok(Value::Null);
                    }
                    fa / fb
                }
                BinaryOp::Modulo => {
                    if fb == 0.0 {
                        return Ok(Value::Null);
                    }
                    fa % fb
                }
                _ => unreachable!(),
            };
            Some(Value::Float64(v))
        }
    };
    result.ok_or_else(|| {
        Error::execution(format!(
            "arithmetic overflow evaluating {l} {} {r}",
            op.symbol()
        ))
    })
}

fn numeric_as_f64(v: &Value) -> Result<f64> {
    match v {
        Value::Int64(i) => Ok(*i as f64),
        Value::Float64(f) => Ok(*f),
        other => Err(Error::execution(format!(
            "expected a numeric value, got {other}"
        ))),
    }
}

/// Collect outer-reference indices appearing anywhere in a subquery plan.
fn collect_outer_refs(plan: &LogicalPlan, out: &mut Vec<usize>) {
    plan.visit_expressions(&mut |e| {
        if let Expr::OuterColumn(c) = e {
            out.push(c.index);
        }
    });
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::BoundColumn(c) => write!(f, "{}#{}", c.field.qualified_name(), c.index),
            Expr::OuterColumn(c) => write!(f, "outer({}#{})", c.field.qualified_name(), c.index),
            Expr::Literal(v) => match v {
                Value::Utf8(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::BinaryOp { left, op, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Negate(e) => write!(f, "(- {e})"),
            Expr::ScalarFn { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Aggregate { func, arg } => match arg {
                Some(a) => write!(f, "{}({a})", func.name()),
                None => write!(f, "{}(*)", func.name()),
            },
            Expr::Alias { expr, name } => write!(f, "{expr} AS {name}"),
            Expr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
            Expr::Wildcard { qualifier } => match qualifier {
                Some(q) => write!(f, "{q}.*"),
                None => f.write_str("*"),
            },
            Expr::Exists { negated, .. } => {
                write!(
                    f,
                    "{}EXISTS(<subquery>)",
                    if *negated { "NOT " } else { "" }
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bound(index: usize, name: &str, dt: DataType) -> Expr {
        Expr::BoundColumn(BoundColumn {
            index,
            field: Field::new(name, dt, true),
        })
    }

    fn row(vals: Vec<Value>) -> Row {
        Row::new(vals)
    }

    #[test]
    fn evaluate_comparisons() {
        let e = bound(0, "a", DataType::Int64).lt(Expr::lit(5i64));
        assert_eq!(
            e.evaluate(&row(vec![Value::Int64(3)])).unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            e.evaluate(&row(vec![Value::Int64(7)])).unwrap(),
            Value::Boolean(false)
        );
        assert_eq!(e.evaluate(&row(vec![Value::Null])).unwrap(), Value::Null);
    }

    #[test]
    fn evaluate_arithmetic() {
        let e = bound(0, "a", DataType::Int64)
            .binary(BinaryOp::Plus, Expr::lit(10i64))
            .binary(BinaryOp::Multiply, Expr::lit(2i64));
        assert_eq!(
            e.evaluate(&row(vec![Value::Int64(5)])).unwrap(),
            Value::Int64(30)
        );
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = Expr::lit(1i64).binary(BinaryOp::Divide, Expr::lit(0i64));
        assert_eq!(e.evaluate(&Row::empty()).unwrap(), Value::Null);
        let f = Expr::lit(1.0).binary(BinaryOp::Modulo, Expr::lit(0.0));
        assert_eq!(f.evaluate(&Row::empty()).unwrap(), Value::Null);
    }

    #[test]
    fn kleene_logic() {
        let t = Expr::lit(true);
        let fls = Expr::lit(false);
        let null = Expr::Literal(Value::Null);
        assert_eq!(
            fls.clone()
                .and(null.clone())
                .evaluate(&Row::empty())
                .unwrap(),
            Value::Boolean(false)
        );
        assert_eq!(
            null.clone()
                .and(fls.clone())
                .evaluate(&Row::empty())
                .unwrap(),
            Value::Boolean(false)
        );
        assert_eq!(
            t.clone().and(null.clone()).evaluate(&Row::empty()).unwrap(),
            Value::Null
        );
        assert_eq!(
            t.clone().or(null.clone()).evaluate(&Row::empty()).unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            null.clone().or(t).evaluate(&Row::empty()).unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            null.clone().or(fls).evaluate(&Row::empty()).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn is_null_and_not() {
        let e = Expr::IsNull {
            expr: Box::new(bound(0, "a", DataType::Int64)),
            negated: false,
        };
        assert_eq!(
            e.evaluate(&row(vec![Value::Null])).unwrap(),
            Value::Boolean(true)
        );
        let n = Expr::Not(Box::new(Expr::lit(true)));
        assert_eq!(n.evaluate(&Row::empty()).unwrap(), Value::Boolean(false));
    }

    #[test]
    fn ifnull_and_coalesce() {
        let e = Expr::ScalarFn {
            func: ScalarFunction::IfNull,
            args: vec![bound(0, "a", DataType::Int64), Expr::lit(0i64)],
        };
        assert_eq!(
            e.evaluate(&row(vec![Value::Null])).unwrap(),
            Value::Int64(0)
        );
        assert_eq!(
            e.evaluate(&row(vec![Value::Int64(7)])).unwrap(),
            Value::Int64(7)
        );
        let c = Expr::ScalarFn {
            func: ScalarFunction::Coalesce,
            args: vec![
                Expr::Literal(Value::Null),
                Expr::Literal(Value::Null),
                Expr::lit(3i64),
            ],
        };
        assert_eq!(c.evaluate(&Row::empty()).unwrap(), Value::Int64(3));
    }

    #[test]
    fn joined_evaluation_splits_indices() {
        // Predicate over a pair: left has 2 columns, right has 1.
        let pred = bound(0, "l", DataType::Int64).lt(bound(2, "r", DataType::Int64));
        let left = row(vec![Value::Int64(1), Value::Int64(99)]);
        let right = row(vec![Value::Int64(5)]);
        assert_eq!(
            pred.evaluate_joined(&left, &right, 2).unwrap(),
            Value::Boolean(true)
        );
    }

    #[test]
    fn output_names() {
        assert_eq!(Expr::col("x").output_name(), "x");
        assert_eq!(Expr::col("x").alias("y").output_name(), "y");
        let agg = Expr::Aggregate {
            func: AggregateFunction::Sum,
            arg: Some(Box::new(Expr::col("x"))),
        };
        assert_eq!(agg.output_name(), "sum(x)");
    }

    #[test]
    fn resolution_tracking() {
        assert!(!Expr::col("x").resolved());
        assert!(bound(0, "x", DataType::Int64).resolved());
        assert!(!Expr::col("x").lt(Expr::lit(1i64)).resolved());
        assert!(!Expr::Wildcard { qualifier: None }.resolved());
    }

    #[test]
    fn transform_up_rewrites_leaves() {
        let e = Expr::col("a").lt(Expr::col("b"));
        let rewritten = e
            .transform_up(&mut |node| {
                Ok(match node {
                    Expr::Column(c) if c.name == "a" => Expr::lit(1i64),
                    other => other,
                })
            })
            .unwrap();
        assert_eq!(rewritten.to_string(), "(1 < b)");
    }

    #[test]
    fn referenced_indices_collects() {
        let e = bound(3, "a", DataType::Int64).lt(bound(1, "b", DataType::Int64));
        let mut idx = vec![];
        e.referenced_indices(&mut idx);
        idx.sort_unstable();
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn type_derivation() {
        let schema = Schema::new(vec![]);
        let cmp = Expr::lit(1i64).lt(Expr::lit(2.0));
        assert_eq!(
            cmp.data_type_and_nullable(&schema).unwrap().0,
            DataType::Boolean
        );
        let arith = Expr::lit(1i64).binary(BinaryOp::Plus, Expr::lit(2.0));
        assert_eq!(
            arith.data_type_and_nullable(&schema).unwrap().0,
            DataType::Float64
        );
        let bad = Expr::lit("s").binary(BinaryOp::Plus, Expr::lit(1i64));
        assert!(bad.data_type_and_nullable(&schema).is_err());
    }

    #[test]
    fn aggregate_types() {
        assert_eq!(
            AggregateFunction::Count.output_type(DataType::Utf8),
            DataType::Int64
        );
        assert_eq!(
            AggregateFunction::Avg.output_type(DataType::Int64),
            DataType::Float64
        );
        assert_eq!(
            AggregateFunction::Sum.output_type(DataType::Int64),
            DataType::Int64
        );
        assert_eq!(
            AggregateFunction::Min.output_type(DataType::Utf8),
            DataType::Utf8
        );
        assert_eq!(
            AggregateFunction::from_name("SUM"),
            Some(AggregateFunction::Sum)
        );
        assert_eq!(AggregateFunction::from_name("nope"), None);
    }

    #[test]
    fn display_round_trip_shapes() {
        let e = Expr::qcol("t", "a")
            .lt_eq(Expr::lit(3i64))
            .and(Expr::Not(Box::new(Expr::IsNull {
                expr: Box::new(Expr::col("b")),
                negated: false,
            })));
        assert_eq!(e.to_string(), "((t.a <= 3) AND (NOT (b IS NULL)))");
    }

    #[test]
    fn string_equality() {
        let e = Expr::lit("abc").eq(Expr::lit("abc"));
        assert_eq!(e.evaluate(&Row::empty()).unwrap(), Value::Boolean(true));
    }

    #[test]
    fn overflow_is_an_error() {
        let e = Expr::lit(i64::MAX).binary(BinaryOp::Plus, Expr::lit(1i64));
        assert!(e.evaluate(&Row::empty()).is_err());
    }
}
