//! Fluent construction of logical plans, used by the DataFrame API and by
//! tests. Builders produce *unresolved* plans; the analyzer binds them.

use std::sync::Arc;

use sparkline_common::{Result, Row, SchemaRef, SkylineType};

use crate::expr::{Expr, SkylineDimension, SortExpr};
use crate::logical::{JoinCondition, JoinType, LogicalPlan};

/// Builder over a [`LogicalPlan`].
#[derive(Debug, Clone)]
pub struct LogicalPlanBuilder {
    plan: LogicalPlan,
}

impl LogicalPlanBuilder {
    /// Start from an existing plan.
    pub fn from(plan: LogicalPlan) -> Self {
        LogicalPlanBuilder { plan }
    }

    /// Start from a named (not yet resolved) relation.
    pub fn relation(name: impl Into<String>) -> Self {
        LogicalPlanBuilder {
            plan: LogicalPlan::UnresolvedRelation { name: name.into() },
        }
    }

    /// Start from literal rows with a known schema.
    pub fn values(schema: SchemaRef, rows: Vec<Row>) -> Self {
        LogicalPlanBuilder {
            plan: LogicalPlan::Values {
                schema,
                rows: Arc::new(rows),
            },
        }
    }

    /// `SELECT exprs`.
    pub fn project(self, exprs: Vec<Expr>) -> Self {
        LogicalPlanBuilder {
            plan: LogicalPlan::Projection {
                exprs,
                input: Arc::new(self.plan),
            },
        }
    }

    /// `WHERE predicate`.
    pub fn filter(self, predicate: Expr) -> Self {
        LogicalPlanBuilder {
            plan: LogicalPlan::Filter {
                predicate,
                input: Arc::new(self.plan),
            },
        }
    }

    /// `GROUP BY group_exprs` with `aggr_exprs`.
    pub fn aggregate(self, group_exprs: Vec<Expr>, aggr_exprs: Vec<Expr>) -> Self {
        LogicalPlanBuilder {
            plan: LogicalPlan::Aggregate {
                group_exprs,
                aggr_exprs,
                input: Arc::new(self.plan),
            },
        }
    }

    /// `ORDER BY`.
    pub fn sort(self, exprs: Vec<SortExpr>) -> Self {
        LogicalPlanBuilder {
            plan: LogicalPlan::Sort {
                exprs,
                input: Arc::new(self.plan),
            },
        }
    }

    /// `LIMIT n`.
    pub fn limit(self, n: usize) -> Self {
        LogicalPlanBuilder {
            plan: LogicalPlan::Limit {
                n,
                input: Arc::new(self.plan),
            },
        }
    }

    /// Join with another plan.
    pub fn join(self, right: LogicalPlan, join_type: JoinType, condition: JoinCondition) -> Self {
        LogicalPlanBuilder {
            plan: LogicalPlan::Join {
                left: Arc::new(self.plan),
                right: Arc::new(right),
                join_type,
                condition,
            },
        }
    }

    /// `AS alias`.
    pub fn alias(self, alias: impl Into<String>) -> Self {
        LogicalPlanBuilder {
            plan: LogicalPlan::SubqueryAlias {
                alias: alias.into(),
                input: Arc::new(self.plan),
            },
        }
    }

    /// `SKYLINE OF [DISTINCT] [COMPLETE] dims`.
    pub fn skyline(self, distinct: bool, complete: bool, dims: Vec<SkylineDimension>) -> Self {
        LogicalPlanBuilder {
            plan: LogicalPlan::Skyline {
                distinct,
                complete,
                dims,
                input: Arc::new(self.plan),
            },
        }
    }

    /// Skyline from `(expr, type)` pairs (the DataFrame API's pair form,
    /// paper §5.8).
    pub fn skyline_of(
        self,
        distinct: bool,
        complete: bool,
        dims: impl IntoIterator<Item = (Expr, SkylineType)>,
    ) -> Self {
        let dims = dims
            .into_iter()
            .map(|(expr, ty)| SkylineDimension::new(expr, ty))
            .collect();
        self.skyline(distinct, complete, dims)
    }

    /// `SELECT DISTINCT`.
    pub fn distinct(self) -> Self {
        LogicalPlanBuilder {
            plan: LogicalPlan::Distinct {
                input: Arc::new(self.plan),
            },
        }
    }

    /// Finish building.
    pub fn build(self) -> Result<LogicalPlan> {
        Ok(self.plan)
    }

    /// Peek at the current plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{DataType, Field, Schema};

    #[test]
    fn builds_nested_plan() {
        let plan = LogicalPlanBuilder::relation("hotels")
            .filter(Expr::col("price").lt(Expr::lit(100i64)))
            .skyline_of(
                false,
                true,
                [
                    (Expr::col("price"), SkylineType::Min),
                    (Expr::col("rating"), SkylineType::Max),
                ],
            )
            .project(vec![Expr::col("price"), Expr::col("rating")])
            .build()
            .unwrap();
        let display = plan.display_indent();
        assert!(display.contains("Projection"));
        assert!(display.contains("Skyline"));
        assert!(display.contains("COMPLETE"));
        assert!(display.contains("Filter"));
        assert!(display.contains("UnresolvedRelation [hotels]"));
    }

    #[test]
    fn values_is_resolved_source() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64, false)]).into_ref();
        let b = LogicalPlanBuilder::values(schema, vec![]);
        assert!(b.plan().resolved());
    }

    #[test]
    fn join_and_alias() {
        let plan = LogicalPlanBuilder::relation("a")
            .alias("l")
            .join(
                LogicalPlan::UnresolvedRelation { name: "b".into() },
                JoinType::Inner,
                JoinCondition::Using(vec!["id".into()]),
            )
            .build()
            .unwrap();
        assert!(plan.node_description().contains("using: id"));
    }
}
