#![warn(missing_docs)]

//! # sparkline-plan
//!
//! Expression trees and logical query plans for the `sparkline` engine,
//! including the first-class skyline operator of the EDBT 2023 paper:
//!
//! * [`expr`] — the expression AST ([`Expr`]), evaluated with SQL NULL
//!   semantics; contains [`SkylineDimension`], the paper's §5.2 expression
//!   that wraps a dimension expression with its `MIN`/`MAX`/`DIFF` type.
//! * [`logical`] — the [`LogicalPlan`] operator tree with
//!   [`LogicalPlan::Skyline`] as a single-child node, plus the
//!   [`LogicalPlan::MinMaxFilter`] node produced by the single-dimension
//!   rewrite of §5.4.
//! * [`builder`] — fluent plan construction for the DataFrame API.

pub mod builder;
pub mod catalog;
pub mod expr;
pub mod logical;

pub use builder::LogicalPlanBuilder;
pub use catalog::{CatalogProvider, ForeignKey, StaticCatalog};
pub use expr::{
    AggregateFunction, BinaryOp, BoundColumn, Column, Expr, ScalarFunction, SkylineDimension,
    SortExpr,
};
pub use logical::{JoinCondition, JoinType, LogicalPlan, MinMaxDirection};
