//! Catalog abstraction used by the analyzer (name resolution) and the
//! optimizer (non-reductive-join metadata for the skyline pushdown rule).

use std::collections::HashMap;

use sparkline_common::SchemaRef;

/// Source of table metadata. Implemented by the session catalog in
/// `sparkline` (core); a schema-only [`StaticCatalog`] is provided for
/// tests of the analyzer and optimizer.
pub trait CatalogProvider: Send + Sync {
    /// Schema of `name`, if such a table exists. Lookup is
    /// case-insensitive, like Spark's catalog.
    fn table_schema(&self, name: &str) -> Option<SchemaRef>;

    /// Whether every row of `left_table` is guaranteed to have at least one
    /// join partner in `right_table` under the equi-condition
    /// `left_table.left_col = right_table.right_col` — i.e. `left_col` is a
    /// foreign key referencing `right_col`.
    ///
    /// This is the database-constraint form of Carey & Kossmann's
    /// *non-reductive join* used by the paper's §5.4 skyline-join pushdown:
    /// if the join cannot eliminate left tuples, the skyline may be
    /// computed on the left side before joining.
    fn guarantees_partner(
        &self,
        _left_table: &str,
        _left_col: &str,
        _right_table: &str,
        _right_col: &str,
    ) -> bool {
        false
    }
}

/// A declared foreign-key relationship.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ForeignKey {
    /// Referencing table.
    pub from_table: String,
    /// Referencing column.
    pub from_column: String,
    /// Referenced table.
    pub to_table: String,
    /// Referenced column.
    pub to_column: String,
}

/// A simple in-memory catalog holding schemas and foreign keys. Useful in
/// tests and embedded by the session catalog in `sparkline`.
#[derive(Debug, Default, Clone)]
pub struct StaticCatalog {
    tables: HashMap<String, SchemaRef>,
    foreign_keys: Vec<ForeignKey>,
}

impl StaticCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table schema.
    pub fn register_table(&mut self, name: impl Into<String>, schema: SchemaRef) {
        self.tables.insert(name.into().to_ascii_lowercase(), schema);
    }

    /// Declare that `from_table.from_column` is a foreign key referencing
    /// `to_table.to_column` (with a NOT NULL referencing column), making
    /// the corresponding equi-join non-reductive for the referencing side.
    pub fn register_foreign_key(
        &mut self,
        from_table: impl Into<String>,
        from_column: impl Into<String>,
        to_table: impl Into<String>,
        to_column: impl Into<String>,
    ) {
        self.foreign_keys.push(ForeignKey {
            from_table: from_table.into().to_ascii_lowercase(),
            from_column: from_column.into().to_ascii_lowercase(),
            to_table: to_table.into().to_ascii_lowercase(),
            to_column: to_column.into().to_ascii_lowercase(),
        });
    }

    /// Remove a table's schema and every foreign key involving it (as
    /// either side — a dangling FK would let the §5.4 pushdown reason
    /// about a relation that no longer exists). Returns whether the
    /// schema existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        let existed = self.tables.remove(&key).is_some();
        if existed {
            self.foreign_keys
                .retain(|fk| fk.from_table != key && fk.to_table != key);
        }
        existed
    }

    /// Names of all registered tables (lowercased), sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }
}

impl CatalogProvider for StaticCatalog {
    fn table_schema(&self, name: &str) -> Option<SchemaRef> {
        self.tables.get(&name.to_ascii_lowercase()).cloned()
    }

    fn guarantees_partner(
        &self,
        left_table: &str,
        left_col: &str,
        right_table: &str,
        right_col: &str,
    ) -> bool {
        let (lt, lc) = (
            left_table.to_ascii_lowercase(),
            left_col.to_ascii_lowercase(),
        );
        let (rt, rc) = (
            right_table.to_ascii_lowercase(),
            right_col.to_ascii_lowercase(),
        );
        self.foreign_keys.iter().any(|fk| {
            fk.from_table == lt && fk.from_column == lc && fk.to_table == rt && fk.to_column == rc
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{DataType, Field, Schema};

    #[test]
    fn case_insensitive_lookup() {
        let mut c = StaticCatalog::new();
        c.register_table(
            "Hotels",
            Schema::new(vec![Field::new("price", DataType::Float64, false)]).into_ref(),
        );
        assert!(c.table_schema("hotels").is_some());
        assert!(c.table_schema("HOTELS").is_some());
        assert!(c.table_schema("motels").is_none());
        assert_eq!(c.table_names(), vec!["hotels"]);
    }

    #[test]
    fn foreign_keys() {
        let mut c = StaticCatalog::new();
        c.register_foreign_key("track", "recording", "recording", "id");
        assert!(c.guarantees_partner("TRACK", "RECORDING", "recording", "ID"));
        assert!(!c.guarantees_partner("recording", "id", "track", "recording"));
    }

    #[test]
    fn drop_table_removes_schema_and_foreign_keys() {
        let mut c = StaticCatalog::new();
        let schema = Schema::new(vec![Field::new("id", DataType::Int64, false)]).into_ref();
        c.register_table("track", schema.clone());
        c.register_table("recording", schema);
        c.register_foreign_key("track", "recording", "recording", "id");
        assert!(c.drop_table("TRACK"));
        assert!(c.table_schema("track").is_none());
        assert_eq!(c.table_names(), vec!["recording"]);
        // The FK died with its referencing table.
        assert!(!c.guarantees_partner("track", "recording", "recording", "id"));
        // Dropping again is a no-op.
        assert!(!c.drop_table("track"));
    }

    #[test]
    fn drop_referenced_table_removes_incoming_foreign_keys() {
        let mut c = StaticCatalog::new();
        let schema = Schema::new(vec![Field::new("id", DataType::Int64, false)]).into_ref();
        c.register_table("track", schema.clone());
        c.register_table("recording", schema);
        c.register_foreign_key("track", "recording", "recording", "id");
        assert!(c.drop_table("recording"));
        assert!(!c.guarantees_partner("track", "recording", "recording", "id"));
    }
}
