//! Logical query plans.
//!
//! A [`LogicalPlan`] is a tree of relational operators produced by the
//! parser or the DataFrame API. It starts *unresolved* (named relations and
//! columns) and is rewritten by the analyzer into resolved form, then by
//! the optimizer, before physical planning. The skyline operator is a
//! first-class node ([`LogicalPlan::Skyline`]) with a single child, exactly
//! as described in paper §5.2.

use std::fmt;
use std::sync::Arc;

use sparkline_common::{Error, Field, Result, Row, Schema, SchemaRef, SkylineType};

use crate::expr::{Expr, SkylineDimension, SortExpr};

/// Join types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    /// Inner join.
    Inner,
    /// Left outer join: every left tuple survives, right side padded with
    /// NULLs when no partner exists. Non-reductive for the left side, which
    /// the skyline-join pushdown rule (§5.4) exploits.
    LeftOuter,
    /// Left semi join: left tuples with at least one partner (EXISTS).
    LeftSemi,
    /// Left anti join: left tuples with no partner (NOT EXISTS — the shape
    /// of the paper's reference skyline queries, Listing 4).
    LeftAnti,
    /// Cross product.
    Cross,
}

impl JoinType {
    /// Whether the join's output contains the right side's columns.
    pub fn emits_right(self) -> bool {
        matches!(
            self,
            JoinType::Inner | JoinType::LeftOuter | JoinType::Cross
        )
    }

    /// Whether every left tuple appears at least once in the output
    /// (non-reductive on the left in the sense of Carey & Kossmann [6]).
    pub fn preserves_left(self) -> bool {
        matches!(self, JoinType::LeftOuter)
    }
}

impl fmt::Display for JoinType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinType::Inner => "Inner",
            JoinType::LeftOuter => "LeftOuter",
            JoinType::LeftSemi => "LeftSemi",
            JoinType::LeftAnti => "LeftAnti",
            JoinType::Cross => "Cross",
        };
        f.write_str(s)
    }
}

/// The join condition.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinCondition {
    /// `ON <predicate>`; after analysis the predicate is bound against the
    /// concatenated left+right schema.
    On(Expr),
    /// `USING (col, ...)`; desugared by the analyzer into an equi-`On`
    /// condition plus a projection that keeps a single copy of each column.
    Using(Vec<String>),
    /// No condition (cross join).
    None,
}

/// Direction of the single-dimension skyline rewrite node.
///
/// A one-dimensional `MIN`/`MAX` skyline is just "all tuples attaining the
/// optimum" and is evaluated in two O(n) passes instead of the general
/// algorithm (paper §5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinMaxDirection {
    /// Keep tuples with the minimal value.
    Min,
    /// Keep tuples with the maximal value.
    Max,
}

impl MinMaxDirection {
    /// Convert from a skyline dimension type (`Diff` is not a direction).
    pub fn from_skyline_type(ty: SkylineType) -> Option<Self> {
        match ty {
            SkylineType::Min => Some(MinMaxDirection::Min),
            SkylineType::Max => Some(MinMaxDirection::Max),
            SkylineType::Diff => None,
        }
    }
}

impl fmt::Display for MinMaxDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MinMaxDirection::Min => "MIN",
            MinMaxDirection::Max => "MAX",
        })
    }
}

/// A logical relational operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// A named relation not yet looked up in the catalog.
    UnresolvedRelation {
        /// Table name as written in the query.
        name: String,
    },
    /// A catalog table scan (resolved); the data is fetched from the
    /// session catalog at execution time by name.
    TableScan {
        /// Catalog table name.
        name: String,
        /// The table's schema, qualified by the table name or its alias.
        schema: SchemaRef,
    },
    /// Inline rows (DataFrame sources, `VALUES`, test fixtures).
    Values {
        /// Schema of the rows.
        schema: SchemaRef,
        /// The literal rows.
        rows: Arc<Vec<Row>>,
    },
    /// `SELECT <exprs>`.
    Projection {
        /// One expression per output column.
        exprs: Vec<Expr>,
        /// Input plan.
        input: Arc<LogicalPlan>,
    },
    /// `WHERE` / `HAVING` predicate.
    Filter {
        /// Boolean predicate; rows evaluating to `true` survive.
        predicate: Expr,
        /// Input plan.
        input: Arc<LogicalPlan>,
    },
    /// `GROUP BY` with result expressions. As in Spark, `aggr_exprs` are
    /// the *result* expressions (the select list): a mix of group
    /// expressions and aggregate calls; they alone define the output
    /// schema. `group_exprs` are the grouping keys.
    Aggregate {
        /// Grouping keys (may be empty for a global aggregate).
        group_exprs: Vec<Expr>,
        /// Result expressions (group refs and aggregate calls).
        aggr_exprs: Vec<Expr>,
        /// Input plan.
        input: Arc<LogicalPlan>,
    },
    /// `ORDER BY`.
    Sort {
        /// Sort keys, highest priority first.
        exprs: Vec<SortExpr>,
        /// Input plan.
        input: Arc<LogicalPlan>,
    },
    /// `LIMIT n`.
    Limit {
        /// Maximum number of rows.
        n: usize,
        /// Input plan.
        input: Arc<LogicalPlan>,
    },
    /// Binary join.
    Join {
        /// Left input.
        left: Arc<LogicalPlan>,
        /// Right input.
        right: Arc<LogicalPlan>,
        /// Join type.
        join_type: JoinType,
        /// Join condition.
        condition: JoinCondition,
    },
    /// `FROM (...) AS alias` / `table AS alias`: re-qualifies the child's
    /// output columns.
    SubqueryAlias {
        /// The alias.
        alias: String,
        /// Input plan.
        input: Arc<LogicalPlan>,
    },
    /// The skyline operator (paper §5.2): single child, output schema equal
    /// to the child's.
    Skyline {
        /// `SKYLINE OF DISTINCT`.
        distinct: bool,
        /// `SKYLINE OF ... COMPLETE`: user asserts no NULLs occur in the
        /// skyline dimensions, enabling the complete algorithm (§5.5).
        complete: bool,
        /// The skyline dimensions.
        dims: Vec<SkylineDimension>,
        /// Input plan.
        input: Arc<LogicalPlan>,
    },
    /// `SELECT DISTINCT`.
    Distinct {
        /// Input plan.
        input: Arc<LogicalPlan>,
    },
    /// Optimized single-dimension skyline: keep all tuples attaining the
    /// min/max of `expr` (produced by the §5.4 rewrite; never built
    /// directly from SQL).
    MinMaxFilter {
        /// The dimension expression.
        expr: Expr,
        /// Whether the minimum or maximum is kept.
        direction: MinMaxDirection,
        /// Inherited from the rewritten skyline: keep one representative.
        distinct: bool,
        /// Input plan.
        input: Arc<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// The output schema. Errors if the plan is not sufficiently resolved.
    pub fn schema(&self) -> Result<SchemaRef> {
        match self {
            LogicalPlan::UnresolvedRelation { name } => Err(Error::analysis(format!(
                "relation '{name}' is not resolved"
            ))),
            LogicalPlan::TableScan { schema, .. } | LogicalPlan::Values { schema, .. } => {
                Ok(Arc::clone(schema))
            }
            LogicalPlan::Projection { exprs, input } => {
                let input_schema = input.schema()?;
                let fields: Vec<Field> = exprs
                    .iter()
                    .map(|e| e.to_field(&input_schema))
                    .collect::<Result<_>>()?;
                Ok(Schema::new(fields).into_ref())
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Skyline { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::MinMaxFilter { input, .. } => input.schema(),
            LogicalPlan::Aggregate {
                aggr_exprs, input, ..
            } => {
                let input_schema = input.schema()?;
                let fields: Vec<Field> = aggr_exprs
                    .iter()
                    .map(|e| e.to_field(&input_schema))
                    .collect::<Result<_>>()?;
                Ok(Schema::new(fields).into_ref())
            }
            LogicalPlan::Join {
                left,
                right,
                join_type,
                ..
            } => {
                let ls = left.schema()?;
                if !join_type.emits_right() {
                    return Ok(ls);
                }
                let rs = right.schema()?;
                let rs = if *join_type == JoinType::LeftOuter {
                    // Right columns become nullable under a left outer join.
                    Schema::new(rs.fields().iter().map(|f| f.with_nullable(true)).collect())
                } else {
                    rs.as_ref().clone()
                };
                Ok(ls.join(&rs).into_ref())
            }
            LogicalPlan::SubqueryAlias { alias, input } => {
                Ok(input.schema()?.with_qualifier(alias).into_ref())
            }
        }
    }

    /// Direct children.
    pub fn children(&self) -> Vec<&Arc<LogicalPlan>> {
        match self {
            LogicalPlan::UnresolvedRelation { .. }
            | LogicalPlan::TableScan { .. }
            | LogicalPlan::Values { .. } => vec![],
            LogicalPlan::Projection { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::SubqueryAlias { input, .. }
            | LogicalPlan::Skyline { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::MinMaxFilter { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Rebuild this node with new children (same count and order as
    /// [`LogicalPlan::children`]).
    pub fn with_new_children(&self, mut children: Vec<Arc<LogicalPlan>>) -> LogicalPlan {
        let mut next = || children.remove(0);
        match self {
            LogicalPlan::UnresolvedRelation { .. }
            | LogicalPlan::TableScan { .. }
            | LogicalPlan::Values { .. } => self.clone(),
            LogicalPlan::Projection { exprs, .. } => LogicalPlan::Projection {
                exprs: exprs.clone(),
                input: next(),
            },
            LogicalPlan::Filter { predicate, .. } => LogicalPlan::Filter {
                predicate: predicate.clone(),
                input: next(),
            },
            LogicalPlan::Aggregate {
                group_exprs,
                aggr_exprs,
                ..
            } => LogicalPlan::Aggregate {
                group_exprs: group_exprs.clone(),
                aggr_exprs: aggr_exprs.clone(),
                input: next(),
            },
            LogicalPlan::Sort { exprs, .. } => LogicalPlan::Sort {
                exprs: exprs.clone(),
                input: next(),
            },
            LogicalPlan::Limit { n, .. } => LogicalPlan::Limit {
                n: *n,
                input: next(),
            },
            LogicalPlan::Join {
                join_type,
                condition,
                ..
            } => {
                let left = next();
                let right = next();
                LogicalPlan::Join {
                    left,
                    right,
                    join_type: *join_type,
                    condition: condition.clone(),
                }
            }
            LogicalPlan::SubqueryAlias { alias, .. } => LogicalPlan::SubqueryAlias {
                alias: alias.clone(),
                input: next(),
            },
            LogicalPlan::Skyline {
                distinct,
                complete,
                dims,
                ..
            } => LogicalPlan::Skyline {
                distinct: *distinct,
                complete: *complete,
                dims: dims.clone(),
                input: next(),
            },
            LogicalPlan::Distinct { .. } => LogicalPlan::Distinct { input: next() },
            LogicalPlan::MinMaxFilter {
                expr,
                direction,
                distinct,
                ..
            } => LogicalPlan::MinMaxFilter {
                expr: expr.clone(),
                direction: *direction,
                distinct: *distinct,
                input: next(),
            },
        }
    }

    /// Bottom-up transformation: children first, then `f` on the rebuilt
    /// node. This is the workhorse of analyzer and optimizer rules
    /// (`resolveOperatorsUp` in Spark).
    pub fn transform_up(
        &self,
        f: &mut dyn FnMut(LogicalPlan) -> Result<LogicalPlan>,
    ) -> Result<LogicalPlan> {
        let new_children: Vec<Arc<LogicalPlan>> = self
            .children()
            .iter()
            .map(|c| c.transform_up(f).map(Arc::new))
            .collect::<Result<_>>()?;
        f(self.with_new_children(new_children))
    }

    /// Top-down transformation: `f` on this node first, then recurse into
    /// the (possibly new) children.
    pub fn transform_down(
        &self,
        f: &mut dyn FnMut(LogicalPlan) -> Result<LogicalPlan>,
    ) -> Result<LogicalPlan> {
        let transformed = f(self.clone())?;
        let new_children: Vec<Arc<LogicalPlan>> = transformed
            .children()
            .iter()
            .map(|c| c.transform_down(f).map(Arc::new))
            .collect::<Result<_>>()?;
        Ok(transformed.with_new_children(new_children))
    }

    /// The expressions held directly by this node (not its children's).
    pub fn expressions(&self) -> Vec<Expr> {
        match self {
            LogicalPlan::Projection { exprs, .. } => exprs.clone(),
            LogicalPlan::Filter { predicate, .. } => vec![predicate.clone()],
            LogicalPlan::Aggregate {
                group_exprs,
                aggr_exprs,
                ..
            } => group_exprs.iter().chain(aggr_exprs).cloned().collect(),
            LogicalPlan::Sort { exprs, .. } => exprs.iter().map(|s| s.expr.clone()).collect(),
            LogicalPlan::Join {
                condition: JoinCondition::On(e),
                ..
            } => vec![e.clone()],
            LogicalPlan::Join { .. } => vec![],
            LogicalPlan::Skyline { dims, .. } => dims.iter().map(|d| d.child.clone()).collect(),
            LogicalPlan::MinMaxFilter { expr, .. } => vec![expr.clone()],
            _ => vec![],
        }
    }

    /// Rewrite the expressions held directly by this node.
    pub fn map_expressions(&self, f: &mut dyn FnMut(Expr) -> Result<Expr>) -> Result<LogicalPlan> {
        let plan = self.clone();
        Ok(match plan {
            LogicalPlan::Projection { exprs, input } => LogicalPlan::Projection {
                exprs: exprs.into_iter().map(&mut *f).collect::<Result<_>>()?,
                input,
            },
            LogicalPlan::Filter { predicate, input } => LogicalPlan::Filter {
                predicate: f(predicate)?,
                input,
            },
            LogicalPlan::Aggregate {
                group_exprs,
                aggr_exprs,
                input,
            } => LogicalPlan::Aggregate {
                group_exprs: group_exprs
                    .into_iter()
                    .map(&mut *f)
                    .collect::<Result<_>>()?,
                aggr_exprs: aggr_exprs.into_iter().map(&mut *f).collect::<Result<_>>()?,
                input,
            },
            LogicalPlan::Sort { exprs, input } => LogicalPlan::Sort {
                exprs: exprs
                    .into_iter()
                    .map(|s| {
                        Ok(SortExpr {
                            expr: f(s.expr)?,
                            asc: s.asc,
                            nulls_first: s.nulls_first,
                        })
                    })
                    .collect::<Result<_>>()?,
                input,
            },
            LogicalPlan::Join {
                left,
                right,
                join_type,
                condition,
            } => LogicalPlan::Join {
                left,
                right,
                join_type,
                condition: match condition {
                    JoinCondition::On(e) => JoinCondition::On(f(e)?),
                    other => other,
                },
            },
            LogicalPlan::Skyline {
                distinct,
                complete,
                dims,
                input,
            } => LogicalPlan::Skyline {
                distinct,
                complete,
                dims: dims
                    .into_iter()
                    .map(|d| {
                        Ok(SkylineDimension {
                            child: f(d.child)?,
                            ty: d.ty,
                        })
                    })
                    .collect::<Result<_>>()?,
                input,
            },
            LogicalPlan::MinMaxFilter {
                expr,
                direction,
                distinct,
                input,
            } => LogicalPlan::MinMaxFilter {
                expr: f(expr)?,
                direction,
                distinct,
                input,
            },
            other => other,
        })
    }

    /// Visit every expression of this node and (recursively) its children,
    /// including all sub-expressions. Does not descend into `Exists`
    /// subquery *plans* except through [`Expr`]'s own traversal contract.
    pub fn visit_expressions(&self, f: &mut dyn FnMut(&Expr)) {
        fn visit_expr(e: &Expr, f: &mut dyn FnMut(&Expr)) {
            f(e);
            for c in e.children() {
                visit_expr(c, f);
            }
            if let Expr::Exists { subquery, .. } = e {
                subquery.visit_expressions(f);
            }
        }
        for e in self.expressions() {
            visit_expr(&e, f);
        }
        for child in self.children() {
            child.visit_expressions(f);
        }
    }

    /// Whether the plan (including all expressions) is fully resolved.
    pub fn resolved(&self) -> bool {
        if matches!(self, LogicalPlan::UnresolvedRelation { .. }) {
            return false;
        }
        self.expressions().iter().all(|e| e.resolved())
            && self.children().iter().all(|c| c.resolved())
    }

    /// One-line description of this node for plan display.
    pub fn node_description(&self) -> String {
        match self {
            LogicalPlan::UnresolvedRelation { name } => {
                format!("UnresolvedRelation [{name}]")
            }
            LogicalPlan::TableScan { name, .. } => format!("TableScan [{name}]"),
            LogicalPlan::Values { rows, .. } => format!("Values [{} rows]", rows.len()),
            LogicalPlan::Projection { exprs, .. } => format!(
                "Projection [{}]",
                exprs
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            LogicalPlan::Filter { predicate, .. } => format!("Filter [{predicate}]"),
            LogicalPlan::Aggregate {
                group_exprs,
                aggr_exprs,
                ..
            } => format!(
                "Aggregate [group: {}; aggr: {}]",
                group_exprs
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                aggr_exprs
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            LogicalPlan::Sort { exprs, .. } => format!(
                "Sort [{}]",
                exprs
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            LogicalPlan::Limit { n, .. } => format!("Limit [{n}]"),
            LogicalPlan::Join {
                join_type,
                condition,
                ..
            } => match condition {
                JoinCondition::On(e) => format!("Join [{join_type}, on: {e}]"),
                JoinCondition::Using(cols) => {
                    format!("Join [{join_type}, using: {}]", cols.join(", "))
                }
                JoinCondition::None => format!("Join [{join_type}]"),
            },
            LogicalPlan::SubqueryAlias { alias, .. } => format!("SubqueryAlias [{alias}]"),
            LogicalPlan::Skyline {
                distinct,
                complete,
                dims,
                ..
            } => {
                let mut flags = String::new();
                if *distinct {
                    flags.push_str(" DISTINCT");
                }
                if *complete {
                    flags.push_str(" COMPLETE");
                }
                format!(
                    "Skyline [{}{} of {}]",
                    flags.trim_start(),
                    if flags.is_empty() { "" } else { ";" },
                    dims.iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            LogicalPlan::Distinct { .. } => "Distinct".to_string(),
            LogicalPlan::MinMaxFilter {
                expr,
                direction,
                distinct,
                ..
            } => format!(
                "MinMaxFilter [{direction} {expr}{}]",
                if *distinct { " DISTINCT" } else { "" }
            ),
        }
    }

    /// Multi-line indented plan display (like Spark's `explain()`).
    pub fn display_indent(&self) -> String {
        fn build(plan: &LogicalPlan, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&plan.node_description());
            out.push('\n');
            for child in plan.children() {
                build(child, depth + 1, out);
            }
        }
        let mut out = String::new();
        build(self, 0, &mut out);
        out
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_indent().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Column;
    use sparkline_common::{DataType, Value};

    fn scan() -> LogicalPlan {
        LogicalPlan::TableScan {
            name: "t".into(),
            schema: Schema::new(vec![
                Field::qualified("t", "a", DataType::Int64, false),
                Field::qualified("t", "b", DataType::Float64, true),
            ])
            .into_ref(),
        }
    }

    #[test]
    fn scan_schema() {
        let s = scan().schema().unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.field(0).qualified_name(), "t.a");
    }

    #[test]
    fn filter_preserves_schema() {
        let plan = LogicalPlan::Filter {
            predicate: Expr::lit(true),
            input: Arc::new(scan()),
        };
        assert_eq!(plan.schema().unwrap(), scan().schema().unwrap());
    }

    #[test]
    fn skyline_preserves_schema() {
        let plan = LogicalPlan::Skyline {
            distinct: false,
            complete: false,
            dims: vec![SkylineDimension::new(Expr::col("a"), SkylineType::Min)],
            input: Arc::new(scan()),
        };
        assert_eq!(plan.schema().unwrap(), scan().schema().unwrap());
        assert!(!plan.resolved(), "named dims are unresolved");
    }

    #[test]
    fn left_outer_join_makes_right_nullable() {
        let plan = LogicalPlan::Join {
            left: Arc::new(scan()),
            right: Arc::new(LogicalPlan::SubqueryAlias {
                alias: "u".into(),
                input: Arc::new(scan()),
            }),
            join_type: JoinType::LeftOuter,
            condition: JoinCondition::None,
        };
        let s = plan.schema().unwrap();
        assert_eq!(s.len(), 4);
        assert!(!s.field(0).nullable());
        assert!(s.field(2).nullable(), "right-side a becomes nullable");
        assert_eq!(s.field(2).qualifier(), Some("u"));
    }

    #[test]
    fn anti_join_schema_is_left_only() {
        let plan = LogicalPlan::Join {
            left: Arc::new(scan()),
            right: Arc::new(scan()),
            join_type: JoinType::LeftAnti,
            condition: JoinCondition::None,
        };
        assert_eq!(plan.schema().unwrap().len(), 2);
    }

    #[test]
    fn unresolved_relation_has_no_schema() {
        let plan = LogicalPlan::UnresolvedRelation { name: "x".into() };
        assert!(plan.schema().is_err());
        assert!(!plan.resolved());
    }

    #[test]
    fn transform_up_replaces_relations() {
        let plan = LogicalPlan::Filter {
            predicate: Expr::lit(true),
            input: Arc::new(LogicalPlan::UnresolvedRelation { name: "t".into() }),
        };
        let rewritten = plan
            .transform_up(&mut |node| {
                Ok(match node {
                    LogicalPlan::UnresolvedRelation { .. } => scan(),
                    other => other,
                })
            })
            .unwrap();
        assert!(matches!(
            rewritten.children()[0].as_ref(),
            LogicalPlan::TableScan { .. }
        ));
    }

    #[test]
    fn map_expressions_rewrites_predicate() {
        let plan = LogicalPlan::Filter {
            predicate: Expr::Column(Column::new("a")),
            input: Arc::new(scan()),
        };
        let rewritten = plan
            .map_expressions(&mut |e| {
                Ok(match e {
                    Expr::Column(_) => Expr::lit(false),
                    other => other,
                })
            })
            .unwrap();
        match rewritten {
            LogicalPlan::Filter { predicate, .. } => {
                assert_eq!(predicate, Expr::lit(false));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn values_schema_and_display() {
        let plan = LogicalPlan::Values {
            schema: Schema::new(vec![Field::new("x", DataType::Int64, false)]).into_ref(),
            rows: Arc::new(vec![Row::new(vec![Value::Int64(1)])]),
        };
        assert!(plan.resolved());
        assert!(plan.node_description().contains("1 rows"));
    }

    #[test]
    fn display_indent_shape() {
        let plan = LogicalPlan::Limit {
            n: 10,
            input: Arc::new(LogicalPlan::Filter {
                predicate: Expr::lit(true),
                input: Arc::new(scan()),
            }),
        };
        let display = plan.display_indent();
        let lines: Vec<&str> = display.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("Limit"));
        assert!(lines[1].starts_with("  Filter"));
        assert!(lines[2].starts_with("    TableScan"));
    }

    #[test]
    fn aggregate_schema_is_result_exprs() {
        use crate::expr::AggregateFunction;
        let group_col = Expr::BoundColumn(crate::expr::BoundColumn {
            index: 0,
            field: Field::qualified("t", "a", DataType::Int64, false),
        });
        let plan = LogicalPlan::Aggregate {
            group_exprs: vec![group_col.clone()],
            aggr_exprs: vec![
                group_col,
                Expr::Aggregate {
                    func: AggregateFunction::Count,
                    arg: None,
                },
            ],
            input: Arc::new(scan()),
        };
        let s = plan.schema().unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.field(0).name(), "a");
        assert_eq!(s.field(1).name(), "count(*)");
        assert_eq!(s.field(1).data_type(), DataType::Int64);
    }

    #[test]
    fn join_type_properties() {
        assert!(JoinType::LeftOuter.preserves_left());
        assert!(!JoinType::Inner.preserves_left());
        assert!(!JoinType::LeftAnti.emits_right());
        assert!(JoinType::Cross.emits_right());
    }
}
