//! Streaming-vs-materialized execution benchmark and the machine-readable
//! `BENCH_PR3.json` trajectory file.
//!
//! The workload is the multi-operator pipeline the pull-based refactor
//! targets — scan → filter → two-phase skyline → limit — on the Börzsönyi
//! correlated / independent / anti-correlated distributions. Each cell
//! runs once through the pipelined stream model and once through the
//! materialized adapter (`SessionConfig::streaming_execution = false`,
//! which re-materializes a full `Vec<Partition>` at every operator
//! boundary — the seed execution model), recording wall clock and the
//! `peak_rows_in_flight` gauge. Results must be byte-identical; the
//! interesting number is the peak-rows ratio, which is the bounded-memory
//! story of the stream model.

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkline::{Algorithm, DataType, Field, Row, Schema, SessionConfig, SessionContext};
use sparkline_datagen::distributions::{anti_correlated_rows, correlated_rows, independent_rows};

/// One timed (distribution, mode) cell.
#[derive(Debug, Clone)]
pub struct StreamCell {
    /// `"correlated"`, `"independent"`, or `"anti_correlated"`.
    pub distribution: &'static str,
    /// `"streaming"` or `"materialized"`.
    pub mode: &'static str,
    /// Input rows.
    pub rows: usize,
    /// Result rows (after the skyline + limit).
    pub result_rows: usize,
    /// Wall-clock seconds of the query.
    pub secs: f64,
    /// Peak rows simultaneously in flight (batches + operator buffers).
    pub peak_rows_in_flight: usize,
    /// Batches yielded across all partition streams.
    pub batches_emitted: u64,
    /// Peak tracked bytes incl. per-executor overhead.
    pub peak_memory_bytes: usize,
}

/// The full benchmark: cells plus the materialized/streaming
/// peak-rows-in-flight ratio per distribution (`> 1` means the stream
/// model holds fewer rows at its peak).
#[derive(Debug, Clone)]
pub struct StreamBench {
    /// All measured cells.
    pub cells: Vec<StreamCell>,
    /// `(distribution, materialized_peak / streaming_peak)`.
    pub peak_ratios: Vec<(&'static str, f64)>,
}

fn dataset(distribution: &str, n: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    match distribution {
        "correlated" => correlated_rows(&mut rng, n, 3),
        "independent" => independent_rows(&mut rng, n, 3),
        "anti_correlated" => anti_correlated_rows(&mut rng, n, 3),
        other => panic!("unknown distribution {other}"),
    }
}

fn run_cell(
    distribution: &'static str,
    mode: &'static str,
    n: usize,
    executors: usize,
) -> (StreamCell, Vec<Row>) {
    // A finer batch than the 4096 default, scaled to leave ~8 batches per
    // partition: a batch that spans half a partition would make the
    // measured peak mostly reflect scheduler timing rather than the
    // model.
    let batch_size = (n / executors / 8).max(64);
    let config = SessionConfig::default()
        .with_executors(executors)
        .with_batch_size(batch_size)
        .with_streaming_execution(mode == "streaming");
    let ctx = SessionContext::with_config(config);
    let schema = Schema::new(
        (0..3)
            .map(|i| Field::new(format!("d{i}"), DataType::Float64, false))
            .collect(),
    );
    ctx.register_table("t", schema, dataset(distribution, n, 42))
        .expect("register bench table");
    // The pipeline the refactor targets: scan → filter → local/global
    // skyline → limit.
    let sql = "SELECT * FROM t WHERE d0 <= 0.95 \
               SKYLINE OF d0 MIN, d1 MIN, d2 MIN LIMIT 32";
    let df = ctx.sql(sql).expect("parse bench query");
    let start = Instant::now();
    let result = df
        .collect_with_algorithm(Algorithm::DistributedComplete)
        .expect("bench query");
    let secs = start.elapsed().as_secs_f64();
    let cell = StreamCell {
        distribution,
        mode,
        rows: n,
        result_rows: result.num_rows(),
        secs,
        peak_rows_in_flight: result.metrics.peak_rows_in_flight,
        batches_emitted: result.metrics.batches_emitted,
        peak_memory_bytes: result.peak_memory_bytes,
    };
    (cell, result.rows)
}

/// Run the streaming-vs-materialized sweep. `quick` shrinks the input so
/// test suites stay fast.
pub fn run_stream_bench(quick: bool) -> StreamBench {
    let n = if quick { 2_000 } else { 20_000 };
    let executors = 4;
    let mut cells = Vec::new();
    let mut peak_ratios = Vec::new();
    for distribution in ["correlated", "independent", "anti_correlated"] {
        let (streaming, s_rows) = run_cell(distribution, "streaming", n, executors);
        let (materialized, m_rows) = run_cell(distribution, "materialized", n, executors);
        assert_eq!(
            s_rows, m_rows,
            "streaming and materialized results must be byte-identical"
        );
        assert!(
            streaming.peak_rows_in_flight < materialized.peak_rows_in_flight,
            "streaming peak ({}) must be strictly below materialized ({}) on {distribution}",
            streaming.peak_rows_in_flight,
            materialized.peak_rows_in_flight,
        );
        peak_ratios.push((
            distribution,
            materialized.peak_rows_in_flight as f64 / (streaming.peak_rows_in_flight.max(1)) as f64,
        ));
        cells.push(streaming);
        cells.push(materialized);
    }
    StreamBench { cells, peak_ratios }
}

/// Serialize a benchmark run as the `BENCH_PR3.json` document.
pub fn to_json(bench: &StreamBench) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"streaming_execution\",\n");
    out.push_str("  \"workload\": \"scan_filter_skyline_limit_pipeline\",\n");
    out.push_str("  \"cells\": [\n");
    for (i, c) in bench.cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"distribution\": \"{}\", \"mode\": \"{}\", \"rows\": {}, \
             \"result_rows\": {}, \"secs\": {:.6}, \"peak_rows_in_flight\": {}, \
             \"batches_emitted\": {}, \"peak_memory_bytes\": {}}}{}",
            c.distribution,
            c.mode,
            c.rows,
            c.result_rows,
            c.secs,
            c.peak_rows_in_flight,
            c.batches_emitted,
            c.peak_memory_bytes,
            if i + 1 < bench.cells.len() { "," } else { "" },
        );
    }
    out.push_str("  ],\n  \"materialized_over_streaming_peak_rows\": {\n");
    for (i, (distribution, ratio)) in bench.peak_ratios.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{distribution}\": {ratio:.3}{}",
            if i + 1 < bench.peak_ratios.len() {
                ","
            } else {
                ""
            },
        );
    }
    out.push_str("  }\n}\n");
    out
}

/// Run the sweep and write `BENCH_PR3.json` to `path`.
pub fn write_bench_pr3(path: &str, quick: bool) -> std::io::Result<StreamBench> {
    let bench = run_stream_bench(quick);
    std::fs::write(path, to_json(&bench))?;
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_shows_streaming_below_materialized() {
        let bench = run_stream_bench(true);
        assert_eq!(bench.cells.len(), 6);
        assert_eq!(bench.peak_ratios.len(), 3);
        for (distribution, ratio) in &bench.peak_ratios {
            assert!(*ratio > 1.0, "{distribution}: ratio {ratio}");
        }
        for cell in &bench.cells {
            assert!(cell.batches_emitted > 0, "{cell:?}");
            assert!(cell.result_rows <= 32, "{cell:?}");
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let bench = run_stream_bench(true);
        let json = to_json(&bench);
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"mode\"").count(), bench.cells.len());
        assert!(json.contains("\"materialized_over_streaming_peak_rows\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
