//! Chaos benchmark: retry overhead under deterministic fault injection
//! and degradation-vs-failure under tight memory budgets, written as the
//! machine-readable `BENCH_PR7.json` trajectory file.
//!
//! Two sweeps. The **fault sweep** runs the scan → filter → two-phase
//! skyline → limit pipeline at injected fault rates 0 / 1% / 5% with
//! retries enabled, asserts the retried results are byte-identical to the
//! fault-free run, and records wall clock plus the `faults_injected` /
//! `retries_attempted` counters — the cost of the lineage-based recovery
//! path. The **budget sweep** runs the materialized execution model under
//! an unbounded, a half-table, and a one-byte memory budget: the first
//! completes untouched, the second is denied at its first operator
//! boundary and degrades to streaming (same rows, `degraded_paths ≥ 1`),
//! the third exhausts the degradation ladder and surfaces a clean
//! `ResourceExhausted` error.

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkline::{Algorithm, DataType, Field, Row, Schema, SessionConfig, SessionContext};
use sparkline_datagen::distributions::{anti_correlated_rows, correlated_rows, independent_rows};

/// One timed (distribution, fault-rate) cell of the fault sweep.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// `"correlated"`, `"independent"`, or `"anti_correlated"`.
    pub distribution: &'static str,
    /// Injected transient-fault probability per site.
    pub fault_rate: f64,
    /// Input rows.
    pub rows: usize,
    /// Result rows (after the skyline + limit).
    pub result_rows: usize,
    /// Wall-clock seconds of the query.
    pub secs: f64,
    /// Transient faults the injector fired.
    pub faults_injected: u64,
    /// Partition retries the recovery path ran.
    pub retries_attempted: u64,
}

/// One cell of the budget sweep.
#[derive(Debug, Clone)]
pub struct BudgetCell {
    /// `"unbounded"`, `"half_table"`, or `"one_byte"`.
    pub budget: &'static str,
    /// `"ok"`, `"degraded"`, or `"resource_exhausted"`.
    pub outcome: &'static str,
    /// Times the ladder re-planned with a downgraded config.
    pub degraded_paths: u64,
    /// Reservation requests the budget denied.
    pub budget_denials: u64,
}

/// The full chaos benchmark: both sweeps plus the retried-over-fault-free
/// wall-clock ratio per (distribution, rate > 0) cell.
#[derive(Debug, Clone)]
pub struct ChaosBench {
    /// Fault-sweep cells (one per distribution × rate).
    pub fault_cells: Vec<FaultCell>,
    /// Budget-sweep cells.
    pub budget_cells: Vec<BudgetCell>,
    /// `(distribution, rate, faulty_secs / fault_free_secs)`.
    pub retry_overheads: Vec<(&'static str, f64, f64)>,
}

/// Fault rates of the sweep; index 0 is the fault-free baseline.
pub const FAULT_RATES: [f64; 3] = [0.0, 0.01, 0.05];

fn dataset(distribution: &str, n: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    match distribution {
        "correlated" => correlated_rows(&mut rng, n, 3),
        "independent" => independent_rows(&mut rng, n, 3),
        "anti_correlated" => anti_correlated_rows(&mut rng, n, 3),
        other => panic!("unknown distribution {other}"),
    }
}

fn session(rows: Vec<Row>, config: SessionConfig) -> SessionContext {
    let ctx = SessionContext::with_config(config);
    let schema = Schema::new(
        (0..3)
            .map(|i| Field::new(format!("d{i}"), DataType::Float64, false))
            .collect(),
    );
    ctx.register_table("t", schema, rows)
        .expect("register bench table");
    ctx
}

const SQL: &str = "SELECT * FROM t WHERE d0 <= 0.95 \
                   SKYLINE OF d0 MIN, d1 MIN, d2 MIN LIMIT 32";

fn run_fault_cell(
    distribution: &'static str,
    fault_rate: f64,
    n: usize,
    executors: usize,
) -> (FaultCell, Vec<Row>) {
    let batch_size = (n / executors / 8).max(64);
    let mut config = SessionConfig::default()
        .with_executors(executors)
        .with_batch_size(batch_size);
    if fault_rate > 0.0 {
        // Seed pinned so the whole run is reproducible; 16 retries is far
        // above the deepest fire-once fault chain at these rates.
        config = config
            .with_fault_injection(0xC4A0_5BEC, fault_rate)
            .with_max_retries(16);
    }
    let ctx = session(dataset(distribution, n, 42), config);
    let df = ctx.sql(SQL).expect("parse bench query");
    let start = Instant::now();
    let result = df
        .collect_with_algorithm(Algorithm::DistributedComplete)
        .expect("bench query");
    let secs = start.elapsed().as_secs_f64();
    let cell = FaultCell {
        distribution,
        fault_rate,
        rows: n,
        result_rows: result.num_rows(),
        secs,
        faults_injected: result.metrics.faults_injected,
        retries_attempted: result.metrics.retries_attempted,
    };
    (cell, result.rows)
}

fn run_budget_sweep(n: usize, executors: usize) -> Vec<BudgetCell> {
    let rows = dataset("correlated", n, 42);
    let table_bytes: usize = rows.iter().map(Row::estimated_bytes).sum();
    let base = || {
        SessionConfig::default()
            .with_executors(executors)
            .with_batch_size((n / executors / 8).max(64))
            // The materialized model holds the full scanned table at its
            // first operator boundary — the budget lever under test.
            .with_streaming_execution(false)
    };
    let baseline = session(rows.clone(), base())
        .sql(SQL)
        .expect("parse bench query")
        .collect_with_algorithm(Algorithm::DistributedComplete)
        .expect("unbounded budget run");
    let mut cells = vec![BudgetCell {
        budget: "unbounded",
        outcome: "ok",
        degraded_paths: baseline.metrics.degraded_paths,
        budget_denials: baseline.metrics.budget_denials,
    }];

    // Half the table: the materialized boundary is denied, the ladder
    // falls back to streaming, and the rows still match.
    let degraded = session(rows.clone(), base().with_memory_budget(table_bytes / 2))
        .sql(SQL)
        .expect("parse bench query")
        .collect_with_algorithm(Algorithm::DistributedComplete)
        .expect("half-table budget must degrade, not fail");
    assert_eq!(
        degraded.rows, baseline.rows,
        "degraded run diverged from the unbounded run"
    );
    assert!(
        degraded.metrics.degraded_paths >= 1,
        "no downgrade recorded"
    );
    cells.push(BudgetCell {
        budget: "half_table",
        outcome: "degraded",
        degraded_paths: degraded.metrics.degraded_paths,
        budget_denials: degraded.metrics.budget_denials,
    });

    // One byte: nothing fits even after the ladder runs dry — the error
    // must be the typed ResourceExhausted, never a panic.
    let err = session(rows, base().with_memory_budget(1))
        .sql(SQL)
        .expect("parse bench query")
        .collect_with_algorithm(Algorithm::DistributedComplete)
        .expect_err("a 1-byte budget cannot run a skyline");
    assert!(
        err.is_resource_exhausted(),
        "expected ResourceExhausted, got: {err}"
    );
    cells.push(BudgetCell {
        budget: "one_byte",
        outcome: "resource_exhausted",
        degraded_paths: 0,
        budget_denials: 0,
    });
    cells
}

/// Run both sweeps. `quick` shrinks the input so test suites and the CI
/// `--smoke` lane stay fast.
pub fn run_chaos_bench(quick: bool) -> ChaosBench {
    let n = if quick { 2_000 } else { 20_000 };
    let executors = 4;
    let mut fault_cells = Vec::new();
    let mut retry_overheads = Vec::new();
    for distribution in ["correlated", "independent", "anti_correlated"] {
        let (baseline, clean_rows) = run_fault_cell(distribution, FAULT_RATES[0], n, executors);
        let baseline_secs = baseline.secs;
        fault_cells.push(baseline);
        for &rate in &FAULT_RATES[1..] {
            let (cell, rows) = run_fault_cell(distribution, rate, n, executors);
            assert_eq!(
                rows, clean_rows,
                "{distribution} @ rate {rate}: retried run diverged from fault-free run"
            );
            retry_overheads.push((distribution, rate, cell.secs / baseline_secs.max(1e-9)));
            fault_cells.push(cell);
        }
    }
    let budget_cells = run_budget_sweep(n, executors);
    ChaosBench {
        fault_cells,
        budget_cells,
        retry_overheads,
    }
}

/// Serialize a benchmark run as the `BENCH_PR7.json` document.
pub fn to_json(bench: &ChaosBench) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"fault_tolerance_chaos\",\n");
    out.push_str("  \"workload\": \"scan_filter_skyline_limit_pipeline\",\n");
    out.push_str("  \"fault_cells\": [\n");
    for (i, c) in bench.fault_cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"distribution\": \"{}\", \"fault_rate\": {}, \"rows\": {}, \
             \"result_rows\": {}, \"secs\": {:.6}, \"faults_injected\": {}, \
             \"retries_attempted\": {}}}{}",
            c.distribution,
            c.fault_rate,
            c.rows,
            c.result_rows,
            c.secs,
            c.faults_injected,
            c.retries_attempted,
            if i + 1 < bench.fault_cells.len() {
                ","
            } else {
                ""
            },
        );
    }
    out.push_str("  ],\n  \"budget_cells\": [\n");
    for (i, c) in bench.budget_cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"budget\": \"{}\", \"outcome\": \"{}\", \"degraded_paths\": {}, \
             \"budget_denials\": {}}}{}",
            c.budget,
            c.outcome,
            c.degraded_paths,
            c.budget_denials,
            if i + 1 < bench.budget_cells.len() {
                ","
            } else {
                ""
            },
        );
    }
    out.push_str("  ],\n  \"retry_overhead_vs_fault_free\": [\n");
    for (i, (distribution, rate, ratio)) in bench.retry_overheads.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"distribution\": \"{distribution}\", \"fault_rate\": {rate}, \
             \"ratio\": {ratio:.3}}}{}",
            if i + 1 < bench.retry_overheads.len() {
                ","
            } else {
                ""
            },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run the sweeps and write `BENCH_PR7.json` to `path`.
pub fn write_bench_pr7(path: &str, quick: bool) -> std::io::Result<ChaosBench> {
    let bench = run_chaos_bench(quick);
    std::fs::write(path, to_json(&bench))?;
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_recovers_and_degrades() {
        let bench = run_chaos_bench(true);
        assert_eq!(bench.fault_cells.len(), 9);
        assert_eq!(bench.retry_overheads.len(), 6);
        let fired: u64 = bench
            .fault_cells
            .iter()
            .filter(|c| c.fault_rate > 0.0)
            .map(|c| c.faults_injected)
            .sum();
        assert!(fired > 0, "no fault fired across the whole sweep");
        for c in &bench.fault_cells {
            if c.fault_rate == 0.0 {
                assert_eq!(c.faults_injected, 0, "{c:?}");
                assert_eq!(c.retries_attempted, 0, "{c:?}");
            } else {
                assert!(c.retries_attempted >= c.faults_injected, "{c:?}");
            }
        }
        let outcomes: Vec<&str> = bench.budget_cells.iter().map(|c| c.outcome).collect();
        assert_eq!(outcomes, ["ok", "degraded", "resource_exhausted"]);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let bench = run_chaos_bench(true);
        let json = to_json(&bench);
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(
            json.matches("\"fault_rate\"").count(),
            bench.fault_cells.len() + bench.retry_overheads.len()
        );
        assert!(json.contains("\"budget_cells\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
