//! Mutation-workload benchmark: incremental skyline maintenance vs
//! recompute-on-mutation, written as the machine-readable
//! `BENCH_PR10.json` trajectory file.
//!
//! One cell per mutation fraction (1% / 10% / 50% of the base table,
//! interleaved inserts and deletes). Each cell measures two things:
//!
//! * **Library wall clock** — applying the whole mutation stream to a
//!   [`MaintainedSkyline`] k-skyband (including its initial build)
//!   versus running a full `bnl_skyline` recompute after every
//!   mutation. The final maintained skyline is compared against the
//!   final recompute for exactness.
//! * **Served latency** — the same mutation stream driven over the
//!   wire against two servers that differ only in
//!   `ServerConfig::maintained_views`. Post-mutation queries are
//!   sampled at evenly spaced points of the stream (not after every
//!   mutation — the baseline arm would otherwise recompute hundreds of
//!   skylines; the sample count is recorded in the cell), and the two
//!   servers' response bodies are compared byte-for-byte.
//!
//! Both server arms run single-executor sessions so the engine emits
//! rows in arrival order and the maintained-view install succeeds (a
//! multi-partition plan concatenates per-partition skylines, which the
//! install's byte-compare declines by design).

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkline::{DataType, Field, Row, Schema, SessionConfig, SessionContext, Value};
use sparkline_common::{SkylineDim, SkylineSpec};
use sparkline_datagen::distributions::anti_correlated_rows;
use sparkline_server::{QueryService, ServerClient, ServerConfig, SkylineServer};
use sparkline_skyline::{bnl_skyline, DominanceChecker, MaintainedSkyline, SkylineStats};

/// Skyband depth used by the library arm — matches the server's
/// maintained-view depth so both arms pay comparable bookkeeping.
const SKYBAND_K: u32 = 8;

/// One mutation-fraction cell.
#[derive(Debug, Clone)]
pub struct MutationCell {
    /// Mutations as a fraction of the base row count.
    pub fraction: f64,
    /// Number of interleaved insert/delete mutations applied.
    pub mutations: usize,
    /// Wall clock for the delta arm (skyband build + all mutations),
    /// milliseconds.
    pub delta_ms: f64,
    /// Wall clock for the recompute arm (full `bnl_skyline` after
    /// every mutation), milliseconds.
    pub recompute_ms: f64,
    /// `recompute_ms / delta_ms`.
    pub speedup: f64,
    /// Skyband replay-rebuilds the delta arm needed (deletes that
    /// exhausted the erosion budget).
    pub rebuilds: u64,
    /// Post-mutation queries sampled per server arm.
    pub served_samples: usize,
    /// Median post-mutation served latency with maintained views on,
    /// milliseconds.
    pub served_views_ms: f64,
    /// Median post-mutation served latency with maintained views off
    /// (every sampled query recomputes), milliseconds.
    pub served_baseline_ms: f64,
    /// Sampled queries answered from the result cache, views-on arm.
    pub served_view_hits: usize,
}

/// The full mutation benchmark.
#[derive(Debug, Clone)]
pub struct MutationBench {
    /// Rows in the library arm's base table.
    pub rows: usize,
    /// Skyline dimensions (all MIN) in the library arm.
    pub dims: usize,
    /// Rows in the server arm's base table.
    pub server_rows: usize,
    /// One cell per mutation fraction, ascending.
    pub cells: Vec<MutationCell>,
    /// Whether the delta arm's final skyline equalled the recompute
    /// arm's in every cell (asserted, so always true in a written
    /// file).
    pub exact: bool,
    /// Whether the two server arms' sampled response bodies were
    /// byte-identical in every cell (likewise asserted).
    pub served_identical: bool,
}

/// The mutation fractions of the sweep.
pub const FRACTIONS: [f64; 3] = [0.01, 0.10, 0.50];

// ---------------------------------------------------------------------
// Library arm: MaintainedSkyline deltas vs per-mutation recompute.
// ---------------------------------------------------------------------

/// Outcome of one library-arm cell: timings plus the final skyline for
/// the exactness comparison.
struct LibraryCell {
    delta_ms: f64,
    recompute_ms: f64,
    rebuilds: u64,
    exact: bool,
}

fn min_spec(dims: usize) -> SkylineSpec {
    SkylineSpec::new((0..dims).map(SkylineDim::min).collect())
}

/// A deterministic interleaved mutation stream: even steps insert the
/// next pre-generated row, odd steps delete a pseudo-random live
/// position (a multiplicative recurrence, no RNG state needed).
enum Mutation {
    Insert(Row),
    DeleteAt(u64),
}

fn mutation_stream(inserts: &[Row], mutations: usize) -> Vec<Mutation> {
    let mut state = 0x5EED_u64;
    (0..mutations)
        .map(|i| {
            if i % 2 == 0 {
                Mutation::Insert(inserts[i / 2].clone())
            } else {
                state = state.wrapping_mul(31).wrapping_add(17);
                Mutation::DeleteAt(state)
            }
        })
        .collect()
}

fn run_library_cell(base: &[Row], inserts: &[Row], dims: usize, fraction: f64) -> LibraryCell {
    let mutations = ((base.len() as f64 * fraction) as usize).max(2);
    let stream = mutation_stream(inserts, mutations);

    // Delta arm: one skyband build, then O(band) work per mutation.
    let t0 = Instant::now();
    let mut maintained =
        MaintainedSkyline::new(min_spec(dims), SKYBAND_K, base).expect("build skyband");
    for m in &stream {
        match m {
            Mutation::Insert(row) => {
                maintained.apply_insert(row.clone());
            }
            Mutation::DeleteAt(state) => {
                if !maintained.is_empty() {
                    let pos = (*state as usize) % maintained.len();
                    maintained.apply_delete(pos).expect("delete in bounds");
                }
            }
        }
    }
    let delta_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Recompute arm: the same stream against a plain row vector with a
    // full BNL skyline after every mutation (what a cache that merely
    // invalidates on mutation ends up paying).
    let checker = DominanceChecker::complete(min_spec(dims));
    let mut rows = base.to_vec();
    let mut last = Vec::new();
    let t0 = Instant::now();
    for m in &stream {
        match m {
            Mutation::Insert(row) => rows.push(row.clone()),
            Mutation::DeleteAt(state) => {
                if !rows.is_empty() {
                    let pos = (*state as usize) % rows.len();
                    rows.remove(pos);
                }
            }
        }
        last = bnl_skyline(rows.iter().cloned(), &checker, &mut SkylineStats::default());
    }
    let recompute_ms = t0.elapsed().as_secs_f64() * 1e3;

    LibraryCell {
        delta_ms,
        recompute_ms,
        rebuilds: maintained.rebuilds(),
        exact: maintained.skyline_rows() == last,
    }
}

// ---------------------------------------------------------------------
// Server arm: maintained views on vs off over the wire.
// ---------------------------------------------------------------------

const SKY: &str = "SELECT price, rating FROM hotels SKYLINE OF price MIN, rating MAX";

/// The deterministic anti-correlated-ish recurrence the server tests
/// use: cheap rows tend to have high ratings, so the skyline has real
/// depth.
fn hotel_rows(n: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            let price = (i * 37) % 1000;
            let rating = ((999 - price) + (i * 13) % 200 - 100).max(0);
            Row::new(vec![
                Value::Int64(i),
                Value::Int64(price),
                Value::Int64(rating),
            ])
        })
        .collect()
}

fn start_hotel_server(rows: i64, maintained_views: bool) -> SkylineServer {
    // Single executor: the engine emits skyline rows in arrival order,
    // which is what lets the maintained-view install's byte-compare
    // succeed (see module docs).
    let session = SessionConfig::default().with_executors(1);
    let ctx = SessionContext::with_config(session.clone());
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int64, false),
        Field::new("price", DataType::Int64, false),
        Field::new("rating", DataType::Int64, false),
    ]);
    ctx.register_table("hotels", schema, hotel_rows(rows))
        .expect("register hotels");
    let config = ServerConfig {
        session,
        maintained_views,
        ..ServerConfig::default()
    };
    SkylineServer::start_with_service(QueryService::with_session(ctx, config))
        .expect("start server")
}

struct ServedCell {
    samples: usize,
    views_ms: f64,
    baseline_ms: f64,
    view_hits: usize,
    identical: bool,
}

fn run_served_cell(server_rows: i64, fraction: f64, max_samples: usize) -> ServedCell {
    let mutations = ((server_rows as f64 * fraction) as usize).max(2);
    // Sample post-mutation queries at evenly spaced points rather than
    // after every mutation; `samples` is recorded in the cell so the
    // cap is visible in the written file.
    let samples = mutations.min(max_samples);
    let stride = mutations / samples;

    let views = start_hotel_server(server_rows, true);
    let baseline = start_hotel_server(server_rows, false);
    let mut views_client = ServerClient::connect(views.addr()).expect("connect");
    let mut baseline_client = ServerClient::connect(baseline.addr()).expect("connect");

    // Prime both caches; the views server installs its maintained view
    // on this cold miss.
    let prime_views = views_client.query(SKY).expect("prime");
    let prime_baseline = baseline_client.query(SKY).expect("prime");
    let mut identical = prime_views.rows == prime_baseline.rows;

    // The same deterministic mutation stream hits both servers: even
    // steps insert a fresh row, odd steps delete one live id.
    let mut next_id = server_rows;
    let mut live_ids: Vec<i64> = (0..server_rows).collect();
    let mut state = 0x5EED_u64;
    let mut views_ms = Vec::with_capacity(samples);
    let mut baseline_ms = Vec::with_capacity(samples);
    let mut view_hits = 0usize;
    for i in 0..mutations {
        if i % 2 == 0 {
            let price = (next_id * 41) % 1000;
            let rating = ((999 - price) + (next_id * 17) % 200 - 100).max(0);
            let spec = format!("{next_id},{price},{rating}");
            views_client.insert("hotels", &spec).expect("insert");
            baseline_client.insert("hotels", &spec).expect("insert");
            live_ids.push(next_id);
            next_id += 1;
        } else {
            state = state.wrapping_mul(31).wrapping_add(17);
            let victim = live_ids.swap_remove(state as usize % live_ids.len());
            let pred = format!("id = {victim}");
            views_client.delete("hotels", Some(&pred)).expect("delete");
            baseline_client
                .delete("hotels", Some(&pred))
                .expect("delete");
        }
        if i % stride == 0 && views_ms.len() < samples {
            let t0 = Instant::now();
            let v = views_client.query(SKY).expect("served query");
            views_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            let t0 = Instant::now();
            let b = baseline_client.query(SKY).expect("served query");
            baseline_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            identical &= v.rows == b.rows;
            view_hits += (v.result_cache == "hit") as usize;
        }
    }
    views_ms.sort_by(|a, b| a.total_cmp(b));
    baseline_ms.sort_by(|a, b| a.total_cmp(b));
    ServedCell {
        samples: views_ms.len(),
        views_ms: median(&views_ms),
        baseline_ms: median(&baseline_ms),
        view_hits,
        identical,
    }
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[(sorted.len() - 1) / 2]
}

// ---------------------------------------------------------------------
// Sweep, JSON, entry points.
// ---------------------------------------------------------------------

/// Run the full benchmark. `quick` shrinks tables and sample counts
/// for CI smoke lanes.
pub fn run_mutation_bench(quick: bool) -> MutationBench {
    let rows = if quick { 600 } else { 3_000 };
    let server_rows: i64 = if quick { 400 } else { 2_000 };
    let max_samples = if quick { 6 } else { 24 };
    let dims = 3;

    let mut rng = StdRng::seed_from_u64(0x5EB7_0A12);
    let base = anti_correlated_rows(&mut rng, rows, dims);
    // Pre-generate enough insert rows for the largest fraction (every
    // other mutation inserts).
    let max_mutations = ((rows as f64 * FRACTIONS[FRACTIONS.len() - 1]) as usize).max(2);
    let inserts = anti_correlated_rows(&mut rng, max_mutations / 2 + 1, dims);

    let mut cells = Vec::with_capacity(FRACTIONS.len());
    let mut exact = true;
    let mut served_identical = true;
    for &fraction in &FRACTIONS {
        let lib = run_library_cell(&base, &inserts, dims, fraction);
        let served = run_served_cell(server_rows, fraction, max_samples);
        exact &= lib.exact;
        served_identical &= served.identical;
        cells.push(MutationCell {
            fraction,
            mutations: ((rows as f64 * fraction) as usize).max(2),
            delta_ms: lib.delta_ms,
            recompute_ms: lib.recompute_ms,
            speedup: lib.recompute_ms / lib.delta_ms.max(1e-9),
            rebuilds: lib.rebuilds,
            served_samples: served.samples,
            served_views_ms: served.views_ms,
            served_baseline_ms: served.baseline_ms,
            served_view_hits: served.view_hits,
        });
    }
    assert!(exact, "delta maintenance diverged from recompute");
    assert!(served_identical, "server arms served different bytes");
    MutationBench {
        rows,
        dims,
        server_rows: server_rows as usize,
        cells,
        exact,
        served_identical,
    }
}

/// Hand-rolled JSON (the workspace vendors no serde).
pub fn to_json(bench: &MutationBench) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"incremental_skyline_maintenance\",\n");
    out.push_str("  \"workload\": \"interleaved_insert_delete_mutations\",\n");
    let _ = writeln!(out, "  \"rows\": {},", bench.rows);
    let _ = writeln!(out, "  \"dims\": {},", bench.dims);
    let _ = writeln!(out, "  \"server_rows\": {},", bench.server_rows);
    let _ = writeln!(out, "  \"exact\": {},", bench.exact);
    let _ = writeln!(out, "  \"served_identical\": {},", bench.served_identical);
    out.push_str("  \"cells\": [\n");
    for (i, c) in bench.cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"fraction\": {:.2}, \"mutations\": {}, \"delta_ms\": {:.3}, \
             \"recompute_ms\": {:.3}, \"speedup\": {:.1}, \"rebuilds\": {}, \
             \"served_samples\": {}, \"served_views_ms\": {:.3}, \
             \"served_baseline_ms\": {:.3}, \"served_view_hits\": {}}}{}",
            c.fraction,
            c.mutations,
            c.delta_ms,
            c.recompute_ms,
            c.speedup,
            c.rebuilds,
            c.served_samples,
            c.served_views_ms,
            c.served_baseline_ms,
            c.served_view_hits,
            if i + 1 < bench.cells.len() { "," } else { "" },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run the benchmark and write `path`.
pub fn write_bench_pr10(path: &str, quick: bool) -> std::io::Result<MutationBench> {
    let bench = run_mutation_bench(quick);
    std::fs::write(path, to_json(&bench))?;
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let bench = MutationBench {
            rows: 100,
            dims: 3,
            server_rows: 50,
            cells: vec![MutationCell {
                fraction: 0.1,
                mutations: 10,
                delta_ms: 1.0,
                recompute_ms: 20.0,
                speedup: 20.0,
                rebuilds: 1,
                served_samples: 5,
                served_views_ms: 0.2,
                served_baseline_ms: 3.0,
                served_view_hits: 5,
            }],
            exact: true,
            served_identical: true,
        };
        let json = to_json(&bench);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(json.contains("\"fraction\": 0.10"), "{json}");
        assert!(json.contains("\"served_view_hits\": 5"), "{json}");
    }

    #[test]
    fn smoke_bench_runs_end_to_end() {
        // A tiny end-to-end pass (even smaller than the quick grid) to
        // keep `cargo test` fast while covering both arms.
        let mut rng = StdRng::seed_from_u64(1);
        let base = anti_correlated_rows(&mut rng, 120, 3);
        let inserts = anti_correlated_rows(&mut rng, 40, 3);
        let lib = run_library_cell(&base, &inserts, 3, 0.25);
        assert!(lib.exact, "delta diverged from recompute");
        assert!(lib.delta_ms > 0.0 && lib.recompute_ms > 0.0);

        let served = run_served_cell(150, 0.1, 4);
        assert!(served.identical, "server arms diverged");
        assert!(served.samples > 0);
        // Single-executor sessions install the maintained view, so the
        // views arm answers sampled queries from the refreshed cache.
        assert_eq!(served.view_hits, served.samples);
    }
}
