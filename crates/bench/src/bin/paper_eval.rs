//! `paper_eval` — regenerate the tables and figures of the EDBT 2023
//! skyline paper's evaluation at reproduction scale.
//!
//! ```bash
//! # Everything (figures 3–19 + relative tables 3–12):
//! cargo run --release -p sparkline-bench --bin paper_eval -- --all
//!
//! # One experiment, reduced grid, CSV output:
//! cargo run --release -p sparkline-bench --bin paper_eval -- fig3 --quick --out results/
//!
//! # List experiments:
//! cargo run --release -p sparkline-bench --bin paper_eval -- list
//! ```
//!
//! Options: `--scale F` (dataset scale, default 1.0 ≙ 1:100 of the paper),
//! `--timeout SECS` (default 30), `--seed N`, `--quick` / `--smoke`
//! (reduced grids),
//! `--out DIR` (CSV dumps).

use std::io::Write;
use std::time::Duration;

use sparkline_bench::experiments::{all_ids, run};
use sparkline_bench::report::{format_relative_table, format_series_table, to_csv};
use sparkline_bench::{EvalContext, EvalSettings};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit();
    }

    let mut settings = EvalSettings::default();
    let mut quick = false;
    let mut out_dir: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut all = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                settings.scale = next_value(&args, &mut i, "--scale");
            }
            "--timeout" => {
                let secs: f64 = next_value(&args, &mut i, "--timeout");
                settings.timeout = Duration::from_secs_f64(secs);
            }
            "--seed" => {
                settings.seed = next_value(&args, &mut i, "--seed");
            }
            // `--smoke` is the CI alias: same reduced grids, named for the
            // per-push smoke runs of the extension experiments.
            "--quick" | "--smoke" => quick = true,
            "--all" => all = true,
            "--out" => {
                i += 1;
                out_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }));
            }
            "list" => {
                println!("available experiments: {}", all_ids().join(", "));
                println!("(fig3–fig7 also emit the Appendix D relative tables 3–12)");
                return;
            }
            "--help" | "-h" => usage_and_exit(),
            other if other.starts_with("fig") || other.starts_with("ext") => {
                selected.push(other.to_string())
            }
            other => {
                eprintln!("unknown argument '{other}'");
                usage_and_exit();
            }
        }
        i += 1;
    }

    let ids: Vec<String> = if all {
        all_ids().iter().map(|s| s.to_string()).collect()
    } else if selected.is_empty() {
        eprintln!("no experiments selected (use --all or name figures)");
        usage_and_exit();
    } else {
        selected
    };

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    println!(
        "# sparkline paper evaluation — scale {} (1.0 = 1:100 of the paper), \
         timeout {:?}, seed {}{}",
        settings.scale,
        settings.timeout,
        settings.seed,
        if quick { ", quick grids" } else { "" }
    );
    println!(
        "# Shapes (who wins, scaling, crossovers, timeouts) are the \
         reproduction target; absolute seconds are not.\n"
    );

    let mut ctx = EvalContext::new(settings);
    let started = std::time::Instant::now();
    for id in &ids {
        eprintln!("== running {id} ==");
        let reports = run(id, &mut ctx, quick);
        for (k, report) in reports.iter().enumerate() {
            println!(
                "{}",
                format_series_table(
                    &report.title,
                    report.x_label,
                    &report.x_values,
                    &report.series,
                    report.metric,
                )
            );
            if report.with_relative {
                println!(
                    "{}",
                    format_relative_table(
                        &report.title,
                        &report.x_values,
                        &report.series,
                        "reference",
                    )
                );
            }
            if let Some(dir) = &out_dir {
                let csv = to_csv(
                    &format!("{id}_{k}"),
                    report.x_label,
                    &report.x_values,
                    &report.series,
                    report.metric,
                );
                let path = format!("{dir}/{id}_{k}.csv");
                let mut f = std::fs::File::create(&path).expect("create csv");
                f.write_all(csv.as_bytes()).expect("write csv");
                eprintln!("  wrote {path}");
            }
        }
    }
    eprintln!("== done in {:.1?} ==", started.elapsed());
}

fn next_value<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: paper_eval [--all | fig3 fig4 ...] [--scale F] [--timeout SECS] \
         [--seed N] [--quick|--smoke] [--out DIR] | list"
    );
    std::process::exit(2);
}
