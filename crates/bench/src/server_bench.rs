//! Multi-tenant server benchmark: N concurrent wire clients against the
//! `sparkline-server` query service, written as the machine-readable
//! `BENCH_PR9.json` trajectory file.
//!
//! Two sweeps. The **concurrency sweep** starts a fresh server per
//! client count, drives every client through a small dashboard-style
//! working set of skyline queries (repeating shapes — the workload the
//! result cache exists for), and reports p50/p99 latency, queries/sec,
//! and the plan/result-cache hit rates, asserting every response body is
//! byte-identical to direct `SessionContext` execution. The **cold/hot
//! cell** measures one cache-cold query against the median of repeated
//! cache-hot runs of the same query — the "repeated dashboard query is
//! near-free" claim, expected ≥ 10x.

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkline::{DataType, Field, Schema, SessionConfig, SessionContext};
use sparkline_datagen::distributions::anti_correlated_rows;
use sparkline_server::{render_rows, QueryService, ServerClient, ServerConfig, SkylineServer};

/// One timed client-count cell of the concurrency sweep.
#[derive(Debug, Clone)]
pub struct ConcurrencyCell {
    /// Concurrent wire clients.
    pub clients: usize,
    /// Queries each client issued.
    pub queries_per_client: usize,
    /// Wall-clock seconds for the whole cell.
    pub secs: f64,
    /// Aggregate throughput (all clients' queries / wall clock).
    pub qps: f64,
    /// Median per-query latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-query latency, milliseconds.
    pub p99_ms: f64,
    /// Plan-cache hit rate over consulted lookups (result-cache hits
    /// skip the plan cache entirely and are excluded).
    pub plan_hit_rate: f64,
    /// Result-cache hit rate over all queries.
    pub result_hit_rate: f64,
}

/// The cache-cold vs cache-hot latency cell.
#[derive(Debug, Clone)]
pub struct ColdHotCell {
    /// First (cache-missing) execution, milliseconds.
    pub cold_ms: f64,
    /// Median of repeated result-cache-hit executions, milliseconds.
    pub hot_ms: f64,
    /// `cold_ms / hot_ms`.
    pub speedup: f64,
}

/// The full server benchmark.
#[derive(Debug, Clone)]
pub struct ServerBench {
    /// Rows in the benchmark table.
    pub rows: usize,
    /// Concurrency sweep, ascending client counts.
    pub concurrency_cells: Vec<ConcurrencyCell>,
    /// Cold-vs-hot latency cell.
    pub cold_hot: ColdHotCell,
    /// Whether every wire response matched direct execution
    /// byte-for-byte (asserted, so always true in a written file).
    pub byte_identical: bool,
}

/// The dashboard working set: a few query shapes tenants keep
/// re-issuing. Spellings vary in case/whitespace to exercise
/// normalization; shapes 0 and 1 normalize to the same cache key.
const WORKLOAD: [&str; 4] = [
    "SELECT d0, d1, d2 FROM t SKYLINE OF d0 MIN, d1 MIN, d2 MIN",
    "select  d0, d1, d2 from T skyline of d0 min, d1 min, d2 min;",
    "SELECT d0, d1 FROM t WHERE d2 < 0.8 SKYLINE OF d0 MIN, d1 MIN",
    "SELECT d0, d1, d2 FROM t SKYLINE OF DISTINCT d0 MIN, d1 MIN, d2 MIN",
];

fn bench_session(rows: usize) -> SessionContext {
    let mut rng = StdRng::seed_from_u64(0x5EB7_0A11);
    let data = anti_correlated_rows(&mut rng, rows, 3);
    let ctx = SessionContext::with_config(SessionConfig::default());
    let schema = Schema::new(
        (0..3)
            .map(|i| Field::new(format!("d{i}"), DataType::Float64, false))
            .collect::<Vec<Field>>(),
    );
    ctx.register_table("t", schema, data)
        .expect("register bench table");
    ctx
}

fn direct_renderings(ctx: &SessionContext) -> Vec<Vec<String>> {
    WORKLOAD
        .iter()
        .map(|sql| render_rows(&ctx.sql(sql).expect("parse").collect().expect("execute")))
        .collect()
}

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn start_server(ctx: &SessionContext) -> SkylineServer {
    // `with_shared_catalog` gives the service its own cancel flag while
    // keeping the registered dataset.
    let service = QueryService::with_session(
        ctx.with_shared_catalog(SessionConfig::default()),
        ServerConfig::default(),
    );
    SkylineServer::start_with_service(service).expect("start server")
}

fn run_concurrency_cell(
    ctx: &SessionContext,
    expected: &[Vec<String>],
    clients: usize,
    queries_per_client: usize,
) -> ConcurrencyCell {
    let server = start_server(ctx);
    let addr = server.addr();
    let started = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = ServerClient::connect(addr).expect("connect");
                    let mut times = Vec::with_capacity(queries_per_client);
                    for q in 0..queries_per_client {
                        let shape = (c + q) % WORKLOAD.len();
                        let t0 = Instant::now();
                        let response = client.query(WORKLOAD[shape]).expect("query");
                        times.push(t0.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(
                            response.rows, expected[shape],
                            "client {c} query {q} (shape {shape}) diverged from \
                             direct execution"
                        );
                    }
                    times
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let secs = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let stats = server.service().stats();
    let total = (clients * queries_per_client) as f64;
    let plan_lookups = stats.plan_hits + stats.plan_misses;
    ConcurrencyCell {
        clients,
        queries_per_client,
        secs,
        qps: total / secs.max(1e-9),
        p50_ms: quantile_ms(&latencies, 0.50),
        p99_ms: quantile_ms(&latencies, 0.99),
        plan_hit_rate: if plan_lookups == 0 {
            0.0
        } else {
            stats.plan_hits as f64 / plan_lookups as f64
        },
        result_hit_rate: stats.result_hits as f64 / total,
    }
}

fn run_cold_hot_cell(
    ctx: &SessionContext,
    expected: &[Vec<String>],
    hot_runs: usize,
) -> ColdHotCell {
    let server = start_server(ctx);
    let mut client = ServerClient::connect(server.addr()).expect("connect");
    let t0 = Instant::now();
    let cold = client.query(WORKLOAD[0]).expect("cold query");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cold.rows, expected[0]);
    assert_eq!(cold.result_cache, "miss");
    let mut hot_times: Vec<f64> = (0..hot_runs)
        .map(|_| {
            let t0 = Instant::now();
            let hot = client.query(WORKLOAD[0]).expect("hot query");
            let elapsed = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(hot.result_cache, "hit");
            assert_eq!(hot.rows, expected[0], "cached body diverged");
            elapsed
        })
        .collect();
    hot_times.sort_by(|a, b| a.total_cmp(b));
    let hot_ms = quantile_ms(&hot_times, 0.50);
    ColdHotCell {
        cold_ms,
        hot_ms,
        speedup: cold_ms / hot_ms.max(1e-9),
    }
}

/// Run the full benchmark. `quick` shrinks the table and query counts
/// for CI smoke lanes.
pub fn run_server_bench(quick: bool) -> ServerBench {
    let rows = if quick { 6_000 } else { 40_000 };
    let queries_per_client = if quick { 6 } else { 24 };
    let hot_runs = if quick { 10 } else { 30 };
    let client_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };

    let ctx = bench_session(rows);
    let expected = direct_renderings(&ctx);

    let concurrency_cells = client_counts
        .iter()
        .map(|&clients| run_concurrency_cell(&ctx, &expected, clients, queries_per_client))
        .collect();
    let cold_hot = run_cold_hot_cell(&ctx, &expected, hot_runs);
    ServerBench {
        rows,
        concurrency_cells,
        cold_hot,
        // Every response was compared against direct execution above;
        // reaching this line means none diverged.
        byte_identical: true,
    }
}

/// Hand-rolled JSON (the workspace vendors no serde).
pub fn to_json(bench: &ServerBench) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"multi_tenant_server\",\n");
    out.push_str("  \"workload\": \"concurrent_wire_clients_dashboard_skylines\",\n");
    let _ = writeln!(out, "  \"rows\": {},", bench.rows);
    let _ = writeln!(out, "  \"byte_identical\": {},", bench.byte_identical);
    out.push_str("  \"concurrency_cells\": [\n");
    for (i, c) in bench.concurrency_cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"clients\": {}, \"queries_per_client\": {}, \"secs\": {:.6}, \
             \"qps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"plan_hit_rate\": {:.3}, \"result_hit_rate\": {:.3}}}{}",
            c.clients,
            c.queries_per_client,
            c.secs,
            c.qps,
            c.p50_ms,
            c.p99_ms,
            c.plan_hit_rate,
            c.result_hit_rate,
            if i + 1 < bench.concurrency_cells.len() {
                ","
            } else {
                ""
            },
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"cold_vs_hot\": {{\"cold_ms\": {:.3}, \"hot_ms\": {:.3}, \"speedup\": {:.1}}}",
        bench.cold_hot.cold_ms, bench.cold_hot.hot_ms, bench.cold_hot.speedup
    );
    out.push_str("}\n");
    out
}

/// Run the benchmark and write `path`.
pub fn write_bench_pr9(path: &str, quick: bool) -> std::io::Result<ServerBench> {
    let bench = run_server_bench(quick);
    std::fs::write(path, to_json(&bench))?;
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_pick_sane_positions() {
        let v = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(quantile_ms(&v, 0.50), 3.0);
        assert_eq!(quantile_ms(&v, 0.99), 100.0);
        assert_eq!(quantile_ms(&[], 0.5), 0.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let bench = ServerBench {
            rows: 10,
            concurrency_cells: vec![ConcurrencyCell {
                clients: 2,
                queries_per_client: 3,
                secs: 0.5,
                qps: 12.0,
                p50_ms: 1.0,
                p99_ms: 2.0,
                plan_hit_rate: 0.5,
                result_hit_rate: 0.8,
            }],
            cold_hot: ColdHotCell {
                cold_ms: 10.0,
                hot_ms: 0.5,
                speedup: 20.0,
            },
            byte_identical: true,
        };
        let json = to_json(&bench);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(json.contains("\"clients\": 2"), "{json}");
        assert!(json.contains("\"speedup\": 20.0"), "{json}");
    }

    #[test]
    fn smoke_bench_runs_end_to_end() {
        // A tiny end-to-end pass (not the quick grid — even smaller) to
        // keep `cargo test` fast while covering the harness itself.
        let ctx = bench_session(500);
        let expected = direct_renderings(&ctx);
        let cell = run_concurrency_cell(&ctx, &expected, 2, 3);
        assert_eq!(cell.clients, 2);
        assert!(cell.qps > 0.0);
        assert!(cell.p99_ms >= cell.p50_ms);
        let cold_hot = run_cold_hot_cell(&ctx, &expected, 3);
        assert!(cold_hot.speedup > 0.0);
    }
}
