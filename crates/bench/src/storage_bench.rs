//! Out-of-core storage benchmark: disk-scan throughput with block
//! skipping off / min/max-only / min/max + dominance, written as the
//! machine-readable `BENCH_PR8.json` trajectory file.
//!
//! The **scan sweep** writes each Börzsönyi distribution to a block file
//! (rows clustered by `d0`, the natural layout of a range-partitioned
//! COPY), then runs the same filtered skyline three times per
//! distribution: `full` (both skip kinds disabled — every block is read
//! and decoded), `minmax` (static pruning of blocks refuted by the
//! pushed-down `d0` range filter), and `dominance` (min/max plus
//! corner-dominance against the adaptive planner's representative
//! pre-filter points). All three must return identical rows; the cells
//! record wall clock, rows/sec, and the block/byte counters that show
//! where the speedup comes from.
//!
//! The **out-of-core cell** re-runs the dominance configuration with a
//! memory budget far below the file size: the scan streams one block's
//! reservation at a time, so the query must complete inside the budget
//! rather than fail.

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkline::{
    DataType, Field, Row, Schema, SessionConfig, SessionContext, SkylineStrategy, Value,
};
use sparkline_datagen::distributions::{anti_correlated_rows, correlated_rows, independent_rows};

/// Skipping modes of the scan sweep, weakest first.
pub const MODES: [&str; 3] = ["full", "minmax", "dominance"];

/// One timed (distribution, mode) cell of the scan sweep.
#[derive(Debug, Clone)]
pub struct ScanCell {
    /// `"correlated"`, `"independent"`, or `"anti_correlated"`.
    pub distribution: &'static str,
    /// `"full"`, `"minmax"`, or `"dominance"`.
    pub mode: &'static str,
    /// Rows in the block file.
    pub rows: usize,
    /// Result rows (after filter + skyline).
    pub result_rows: usize,
    /// Wall-clock seconds of the query.
    pub secs: f64,
    /// Input rows per second of wall clock.
    pub rows_per_sec: f64,
    /// Blocks read and decoded.
    pub blocks_read: u64,
    /// Blocks skipped by min/max refutation.
    pub blocks_skipped_minmax: u64,
    /// Blocks skipped by corner dominance.
    pub blocks_skipped_dominance: u64,
    /// Raw block bytes decoded.
    pub bytes_decoded: u64,
}

/// The out-of-core run: a query over a file much larger than the budget.
#[derive(Debug, Clone)]
pub struct OutOfCoreCell {
    /// Size of the block file on disk.
    pub file_bytes: u64,
    /// Memory budget the query ran under.
    pub memory_budget: usize,
    /// Result rows.
    pub result_rows: usize,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Reservation requests the budget denied.
    pub budget_denials: u64,
}

/// The full storage benchmark.
#[derive(Debug, Clone)]
pub struct StorageBench {
    /// Scan-sweep cells (one per distribution × mode).
    pub scan_cells: Vec<ScanCell>,
    /// The out-of-core budget cell.
    pub out_of_core: OutOfCoreCell,
}

fn dataset(distribution: &str, n: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = match distribution {
        "correlated" => correlated_rows(&mut rng, n, 3),
        "independent" => independent_rows(&mut rng, n, 3),
        "anti_correlated" => anti_correlated_rows(&mut rng, n, 3),
        other => panic!("unknown distribution {other}"),
    };
    // Cluster by d0 so block min/max ranges are tight — the layout a
    // range-partitioned COPY produces, and the one skipping exists for.
    rows.sort_by(|a, b| {
        let d0 = |r: &Row| match r.get(0) {
            Value::Float64(f) => *f,
            _ => f64::NAN,
        };
        d0(a).total_cmp(&d0(b))
    });
    rows
}

fn schema() -> Schema {
    Schema::new(
        (0..3)
            .map(|i| Field::new(format!("d{i}"), DataType::Float64, false))
            .collect(),
    )
}

/// Write `rows` as table `t` on disk inside `dir` and return a session
/// scanning the file under `config`.
fn disk_session(
    rows: &[Row],
    config: SessionConfig,
    dir: &std::path::Path,
    tag: &str,
) -> SessionContext {
    let ctx = SessionContext::with_config(config);
    ctx.register_table("t", schema(), rows.to_vec())
        .expect("register bench table");
    let path = dir.join(format!("{tag}.spk"));
    if !path.exists() {
        ctx.copy_table_to_disk("t", &path).expect("COPY t TO disk");
    }
    ctx.register_disk_table("t", &path)
        .expect("open disk table");
    ctx
}

/// The benched query: a pushed-down range filter (min/max fodder) under
/// a skyline (dominance fodder).
const SQL: &str = "SELECT * FROM t WHERE d0 <= 0.5 \
                   SKYLINE OF d0 MIN, d1 MIN, d2 MIN";

fn mode_config(mode: &str, base: SessionConfig) -> SessionConfig {
    match mode {
        "full" => base
            .with_disk_minmax_skipping(false)
            .with_disk_dominance_skipping(false),
        "minmax" => base.with_disk_dominance_skipping(false),
        "dominance" => base,
        other => panic!("unknown mode {other}"),
    }
}

fn run_scan_cell(
    distribution: &'static str,
    mode: &'static str,
    rows: &[Row],
    config: SessionConfig,
    dir: &std::path::Path,
) -> (ScanCell, Vec<Row>) {
    let ctx = disk_session(rows, config, dir, distribution);
    let df = ctx.sql(SQL).expect("parse bench query");
    let start = Instant::now();
    let result = df.collect().expect("bench query");
    let secs = start.elapsed().as_secs_f64();
    let cell = ScanCell {
        distribution,
        mode,
        rows: rows.len(),
        result_rows: result.num_rows(),
        secs,
        rows_per_sec: rows.len() as f64 / secs.max(1e-9),
        blocks_read: result.metrics.blocks_read,
        blocks_skipped_minmax: result.metrics.blocks_skipped_minmax,
        blocks_skipped_dominance: result.metrics.blocks_skipped_dominance,
        bytes_decoded: result.metrics.bytes_decoded,
    };
    (cell, result.rows)
}

/// Run the sweep and the out-of-core cell. `quick` shrinks the inputs so
/// test suites and the CI `--smoke` lane stay fast.
pub fn run_storage_bench(quick: bool) -> StorageBench {
    let n = if quick { 20_000 } else { 200_000 };
    let dir = std::env::temp_dir().join(format!(
        "sparkline-storage-bench-{}-{}",
        std::process::id(),
        if quick { "quick" } else { "full" }
    ));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    let base = || {
        SessionConfig::default()
            .with_executors(4)
            .with_skyline_strategy(SkylineStrategy::Adaptive)
    };

    let mut scan_cells = Vec::new();
    for distribution in ["correlated", "independent", "anti_correlated"] {
        let rows = dataset(distribution, n, 42);
        let mut baseline: Option<Vec<Row>> = None;
        for mode in MODES {
            let (cell, result_rows) =
                run_scan_cell(distribution, mode, &rows, mode_config(mode, base()), &dir);
            match &baseline {
                None => baseline = Some(result_rows),
                Some(expected) => assert_eq!(
                    &result_rows, expected,
                    "{distribution}/{mode}: skipping changed the result"
                ),
            }
            scan_cells.push(cell);
        }
        // Skipping is a pure subtraction from the full scan's work.
        let by_mode = |m: &str| {
            scan_cells
                .iter()
                .find(|c| c.distribution == distribution && c.mode == m)
                .unwrap()
        };
        let (full, dom) = (by_mode("full"), by_mode("dominance"));
        assert!(
            dom.bytes_decoded < full.bytes_decoded,
            "{distribution}: dominance mode decoded {} bytes, full scan {}",
            dom.bytes_decoded,
            full.bytes_decoded
        );
    }

    // Out-of-core: the correlated file under a budget of 1/8 its size.
    // Streaming decode holds one raw block per executor, so the query
    // completes instead of exhausting the budget.
    let rows = dataset("correlated", n, 42);
    // The sweep above already wrote the correlated block file.
    let path = dir.join("correlated.spk");
    let file_bytes = std::fs::metadata(&path).expect("bench file metadata").len();
    // 1/8 of the file, floored at four raw blocks' worth (one in flight
    // per executor) so the cell tests out-of-core streaming, not
    // starvation: a 2048-row block of three f64 columns is ~55 KiB raw.
    let budget = (file_bytes as usize / 8).max(256 << 10);
    let ctx = disk_session(&rows, base().with_memory_budget(budget), &dir, "correlated");
    let start = Instant::now();
    let result = ctx
        .sql(SQL)
        .expect("parse bench query")
        .collect()
        .expect("out-of-core run must complete inside the budget");
    let out_of_core = OutOfCoreCell {
        file_bytes,
        memory_budget: budget,
        result_rows: result.num_rows(),
        secs: start.elapsed().as_secs_f64(),
        budget_denials: result.metrics.budget_denials,
    };

    let _ = std::fs::remove_dir_all(&dir);
    StorageBench {
        scan_cells,
        out_of_core,
    }
}

/// Serialize a benchmark run as the `BENCH_PR8.json` document.
pub fn to_json(bench: &StorageBench) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"out_of_core_block_skipping\",\n");
    out.push_str("  \"workload\": \"filtered_skyline_over_disk_table\",\n");
    out.push_str("  \"scan_cells\": [\n");
    for (i, c) in bench.scan_cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"distribution\": \"{}\", \"mode\": \"{}\", \"rows\": {}, \
             \"result_rows\": {}, \"secs\": {:.6}, \"rows_per_sec\": {:.1}, \
             \"blocks_read\": {}, \"blocks_skipped_minmax\": {}, \
             \"blocks_skipped_dominance\": {}, \"bytes_decoded\": {}}}{}",
            c.distribution,
            c.mode,
            c.rows,
            c.result_rows,
            c.secs,
            c.rows_per_sec,
            c.blocks_read,
            c.blocks_skipped_minmax,
            c.blocks_skipped_dominance,
            c.bytes_decoded,
            if i + 1 < bench.scan_cells.len() {
                ","
            } else {
                ""
            },
        );
    }
    let o = &bench.out_of_core;
    let _ = writeln!(
        out,
        "  ],\n  \"out_of_core\": {{\"file_bytes\": {}, \"memory_budget\": {}, \
         \"result_rows\": {}, \"secs\": {:.6}, \"budget_denials\": {}}}\n}}",
        o.file_bytes, o.memory_budget, o.result_rows, o.secs, o.budget_denials
    );
    out
}

/// Run the sweep and write `BENCH_PR8.json` to `path`.
pub fn write_bench_pr8(path: &str, quick: bool) -> std::io::Result<StorageBench> {
    let bench = run_storage_bench(quick);
    std::fs::write(path, to_json(&bench))?;
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_skips_blocks_and_completes_out_of_core() {
        let bench = run_storage_bench(true);
        assert_eq!(bench.scan_cells.len(), 9);
        for c in &bench.scan_cells {
            match c.mode {
                "full" => {
                    assert_eq!(c.blocks_skipped_minmax, 0, "{c:?}");
                    assert_eq!(c.blocks_skipped_dominance, 0, "{c:?}");
                }
                "minmax" => {
                    assert!(c.blocks_skipped_minmax > 0, "{c:?}");
                    assert_eq!(c.blocks_skipped_dominance, 0, "{c:?}");
                }
                "dominance" => assert!(
                    c.blocks_skipped_minmax + c.blocks_skipped_dominance > 0,
                    "{c:?}"
                ),
                other => panic!("unexpected mode {other}"),
            }
        }
        let o = &bench.out_of_core;
        assert!(o.memory_budget < o.file_bytes as usize, "{o:?}");
        assert!(o.result_rows > 0, "{o:?}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let bench = run_storage_bench(true);
        let json = to_json(&bench);
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"mode\"").count(), bench.scan_cells.len());
        assert_eq!(json.matches("\"out_of_core\"").count(), 1);
    }
}
