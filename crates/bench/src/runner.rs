//! Query runner for the evaluation harness: registers datasets once,
//! executes one (query, algorithm, executor-count) cell at a time, and
//! applies the paper's timeout discipline.

use std::collections::HashSet;
use std::time::Duration;

use sparkline::{Algorithm, Error, SessionConfig, SessionContext};
use sparkline_datagen::{register_airbnb, register_musicbrainz, Variant};

/// What an experiment measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Wall-clock execution time (Figures 3–7, 11–16, 18).
    Time,
    /// Peak memory (Figures 8–10, 17, 19).
    Memory,
    /// Peak rows simultaneously in flight (the ext4 streaming chart).
    Rows,
}

/// One measured cell.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Execution time; `None` on timeout (rendered "t.o.", as in the
    /// paper's Appendix D tables).
    pub secs: Option<f64>,
    /// Peak memory in bytes (incl. per-executor overhead).
    pub peak_memory: usize,
    /// Result cardinality (skyline size).
    pub rows: usize,
    /// Dominance tests performed by skyline operators; for the reference
    /// algorithm the equivalent quantity is the join comparisons.
    pub dominance_tests: u64,
    /// Dominance tests answered by the columnar batch kernel.
    pub batched_tests: u64,
    /// Dominance tests answered by the scalar checker.
    pub scalar_tests: u64,
    /// Times SFS discarded its sort work and re-ran BNL.
    pub sfs_fallbacks: u64,
    /// Batches yielded across all partition streams.
    pub batches_emitted: u64,
    /// Peak rows simultaneously held by batches and operator buffers.
    pub peak_rows_in_flight: usize,
    /// Storage blocks read (decoded) by disk scans.
    pub blocks_read: u64,
    /// Storage blocks skipped by min/max refutation of pushed-down filters.
    pub blocks_skipped_minmax: u64,
    /// Storage blocks skipped by corner-dominance against pre-filter points.
    pub blocks_skipped_dominance: u64,
    /// Raw block bytes read and decoded by disk scans.
    pub bytes_decoded: u64,
}

impl Measurement {
    /// The timeout marker.
    pub fn timeout() -> Self {
        Measurement {
            secs: None,
            peak_memory: 0,
            rows: 0,
            dominance_tests: 0,
            batched_tests: 0,
            scalar_tests: 0,
            sfs_fallbacks: 0,
            batches_emitted: 0,
            peak_rows_in_flight: 0,
            blocks_read: 0,
            blocks_skipped_minmax: 0,
            blocks_skipped_dominance: 0,
            bytes_decoded: 0,
        }
    }

    /// Whether the cell timed out.
    pub fn timed_out(&self) -> bool {
        self.secs.is_none()
    }
}

/// Harness settings (scaled-down counterparts of §6.1/§6.2).
#[derive(Debug, Clone)]
pub struct EvalSettings {
    /// Dataset scale relative to the default 1:100 reproduction scale.
    pub scale: f64,
    /// Per-query timeout (the paper's 3600 s, scaled).
    pub timeout: Duration,
    /// Executor counts swept by the executor experiments (§6.4: 1,2,3,5,10).
    pub executors: Vec<usize>,
    /// RNG seed for dataset generation.
    pub seed: u64,
}

impl Default for EvalSettings {
    fn default() -> Self {
        EvalSettings {
            scale: 1.0,
            timeout: Duration::from_secs(30),
            executors: vec![1, 2, 3, 5, 10],
            seed: 42,
        }
    }
}

impl EvalSettings {
    /// Size of the incomplete Airbnb dataset (paper: 1,193,465 → 1:100).
    pub fn airbnb_rows(&self) -> usize {
        ((12_000.0 * self.scale) as usize).max(200)
    }

    /// The four store_sales sizes (paper: 10^6, 2·10^6, 5·10^6, 10^7 →
    /// 1:100).
    pub fn store_sales_sizes(&self) -> Vec<usize> {
        [10_000.0, 20_000.0, 50_000.0, 100_000.0]
            .iter()
            .map(|s| ((s * self.scale) as usize).max(100))
            .collect()
    }

    /// MusicBrainz recording count (paper: 1.5M → 1:100).
    pub fn musicbrainz_rows(&self) -> usize {
        ((15_000.0 * self.scale) as usize).max(150)
    }
}

/// Shared state across experiments: a session whose catalog accumulates
/// the datasets an experiment requests (registered lazily, exactly once).
pub struct EvalContext {
    base: SessionContext,
    settings: EvalSettings,
    registered: HashSet<String>,
}

impl EvalContext {
    /// Fresh context.
    pub fn new(settings: EvalSettings) -> Self {
        EvalContext {
            base: SessionContext::new(),
            settings,
            registered: HashSet::new(),
        }
    }

    /// The harness settings.
    pub fn settings(&self) -> &EvalSettings {
        &self.settings
    }

    /// Ensure the Airbnb dataset is registered; returns (table, rows).
    pub fn airbnb(&mut self, variant: Variant) -> (String, usize) {
        let name = format!("airbnb{}", variant.suffix());
        if self.registered.insert(name.clone()) {
            let (n, s) = (self.settings.airbnb_rows(), self.settings.seed);
            register_airbnb(&self.base, n, s, variant).expect("airbnb registration");
        }
        let rows = self.base.table_row_count(&name).unwrap_or(0);
        (name, rows)
    }

    /// Ensure a store_sales dataset of `size` rows exists; tables are
    /// named `store_sales_<millions-equivalent>[_incomplete]` like the
    /// paper's chart captions (`store_sales_10` etc.).
    pub fn store_sales(&mut self, size: usize, variant: Variant) -> (String, usize) {
        let sizes = self.settings.store_sales_sizes();
        let label = match sizes.iter().position(|&s| s == size) {
            Some(0) => "1",
            Some(1) => "2",
            Some(2) => "5",
            Some(3) => "10",
            _ => "x",
        };
        let name = format!("store_sales_{label}{}", variant.suffix());
        if self.registered.insert(name.clone()) {
            let d = sparkline_datagen::store_sales::generate(size, self.settings.seed, variant);
            let schema = d.schema;
            let rows = d.rows;
            self.base
                .register_table(name.clone(), schema, rows)
                .expect("store_sales registration");
        }
        let rows = self.base.table_row_count(&name).unwrap_or(0);
        (name, rows)
    }

    /// Ensure the MusicBrainz tables are registered; returns the
    /// recordings table name and its size.
    pub fn musicbrainz(&mut self, variant: Variant) -> (String, usize) {
        let name = match variant {
            Variant::Complete => "recording_complete".to_string(),
            Variant::Incomplete => "recording_incomplete".to_string(),
        };
        if self.registered.insert(name.clone()) {
            register_musicbrainz(
                &self.base,
                self.settings.musicbrainz_rows(),
                self.settings.seed,
                variant,
            )
            .expect("musicbrainz registration");
        }
        let rows = self.base.table_row_count(&name).unwrap_or(0);
        (name, rows)
    }

    /// Ensure a synthetic anti-correlated table (`dims` Float64 columns
    /// `d0..d{dims-1}`) of `n` rows exists — the hardest skyline workload,
    /// used by the partitioning-scheme experiments.
    pub fn anti_correlated(&mut self, n: usize, dims: usize) -> (String, usize) {
        use sparkline::{DataType, Field, Schema};
        let name = format!("anti_{n}_{dims}");
        if self.registered.insert(name.clone()) {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(self.settings.seed);
            let rows = sparkline_datagen::distributions::anti_correlated_rows(&mut rng, n, dims);
            let schema = Schema::new(
                (0..dims)
                    .map(|i| Field::new(format!("d{i}"), DataType::Float64, false))
                    .collect(),
            );
            self.base
                .register_table(name.clone(), schema, rows)
                .expect("anti-correlated registration");
        }
        let rows = self.base.table_row_count(&name).unwrap_or(0);
        (name, rows)
    }

    /// Run one cell: `sql` under `algorithm` with `executors`.
    pub fn run(
        &self,
        sql: &str,
        algorithm: Algorithm,
        executors: usize,
    ) -> sparkline::Result<Measurement> {
        let config = SessionConfig::default()
            .with_executors(executors)
            .with_timeout(self.settings.timeout);
        self.run_with_config(sql, algorithm, config)
    }

    /// Run one cell under a fully custom [`SessionConfig`] — the
    /// partitioning / hierarchical-merge experiments use this to sweep the
    /// strategy knobs the default [`EvalContext::run`] leaves alone.
    pub fn run_with_config(
        &self,
        sql: &str,
        algorithm: Algorithm,
        config: SessionConfig,
    ) -> sparkline::Result<Measurement> {
        let config = config.with_timeout(self.settings.timeout);
        let ctx = self.base.with_shared_catalog(config);
        let df = ctx.sql(sql)?;
        match df.collect_with_algorithm(algorithm) {
            Ok(result) => {
                let dominance = if algorithm == Algorithm::Reference {
                    result.metrics.join_comparisons
                } else {
                    result.metrics.dominance_tests
                };
                Ok(Measurement {
                    secs: Some(result.elapsed.as_secs_f64()),
                    peak_memory: result.peak_memory_bytes,
                    rows: result.num_rows(),
                    dominance_tests: dominance,
                    batched_tests: result.metrics.batched_tests,
                    scalar_tests: result.metrics.scalar_tests,
                    sfs_fallbacks: result.metrics.sfs_fallbacks,
                    batches_emitted: result.metrics.batches_emitted,
                    peak_rows_in_flight: result.metrics.peak_rows_in_flight,
                    blocks_read: result.metrics.blocks_read,
                    blocks_skipped_minmax: result.metrics.blocks_skipped_minmax,
                    blocks_skipped_dominance: result.metrics.blocks_skipped_dominance,
                    bytes_decoded: result.metrics.bytes_decoded,
                })
            }
            Err(Error::Timeout { .. }) => Ok(Measurement::timeout()),
            Err(other) => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EvalSettings {
        EvalSettings {
            scale: 0.02,
            timeout: Duration::from_secs(10),
            executors: vec![1, 2],
            seed: 1,
        }
    }

    #[test]
    fn datasets_register_once_and_run() {
        let mut ctx = EvalContext::new(tiny());
        let (a1, n1) = ctx.airbnb(Variant::Complete);
        let (a2, n2) = ctx.airbnb(Variant::Complete);
        assert_eq!(a1, a2);
        assert_eq!(n1, n2);
        let m = ctx
            .run(
                &format!("SELECT * FROM {a1} SKYLINE OF price MIN, accommodates MAX"),
                Algorithm::DistributedComplete,
                2,
            )
            .unwrap();
        assert!(!m.timed_out());
        assert!(m.rows > 0);
    }

    #[test]
    fn store_sales_labels_match_paper() {
        let mut ctx = EvalContext::new(tiny());
        let sizes = ctx.settings().store_sales_sizes();
        let (name, _) = ctx.store_sales(sizes[3], Variant::Complete);
        assert_eq!(name, "store_sales_10");
        let (name, _) = ctx.store_sales(sizes[0], Variant::Incomplete);
        assert_eq!(name, "store_sales_1_incomplete");
    }

    #[test]
    fn timeout_cells_are_marked() {
        let mut settings = tiny();
        settings.timeout = Duration::ZERO;
        let mut ctx = EvalContext::new(settings);
        let (t, _) = ctx.airbnb(Variant::Complete);
        let m = ctx
            .run(
                &format!("SELECT * FROM {t} SKYLINE OF price MIN, beds MAX"),
                Algorithm::DistributedComplete,
                1,
            )
            .unwrap();
        assert!(m.timed_out());
    }
}
