//! Flat-vs-tree incomplete global merge benchmark and the machine-readable
//! `BENCH_PR5.json` trajectory file (the `ext6` experiment).
//!
//! For each Börzsönyi distribution (correlated / independent /
//! anti-correlated, 3 dims) with NULLs injected at a fixed per-value
//! fraction, the same incomplete-family skyline query runs once with the
//! global phase pinned to the paper's flat single-executor all-pairs pass
//! (`incomplete_tree_merge = false`) and once with the bitmap-class-aware
//! hierarchical merge (PR 5). Results must agree exactly and the two plans
//! must flag the same `deferred_deletions` (the merge algebra's
//! invariant); the interesting numbers are the wall clocks — the tree
//! merge fans the all-pairs work over the executor pool, removing the
//! engine's last single-executor stage — and the `classes_merged` count
//! telling how many bitmap classes the merge actually combined.

use std::fmt::Write as _;

use sparkline::{DataType, Field, Schema, SessionConfig, SessionContext};

use crate::harness::{best_of_three, borzsonyi_rows, inject_nulls, skyline_sql};

const DIMS: usize = 3;
const EXECUTORS: usize = 5;
const NULL_FRACTION: f64 = 0.3;

/// One timed (distribution, merge-variant) cell.
#[derive(Debug, Clone)]
pub struct IncompleteCell {
    /// `"correlated"`, `"independent"`, or `"anti_correlated"`.
    pub distribution: &'static str,
    /// `"flat"` or `"tree"`.
    pub variant: &'static str,
    /// Input rows.
    pub rows: usize,
    /// Per-value NULL fraction injected into the input.
    pub null_fraction: f64,
    /// Skyline size.
    pub result_rows: usize,
    /// Wall-clock seconds (best of three runs).
    pub secs: f64,
    /// Tuples flagged by the deferred-deletion global phase.
    pub deferred_deletions: u64,
    /// Bitmap classes combined by the hierarchical merge (0 for flat).
    pub classes_merged: u64,
    /// Hierarchical merge rounds (0 for flat).
    pub merge_rounds: u64,
}

/// Per-distribution summary: tree against flat.
#[derive(Debug, Clone)]
pub struct IncompleteSummary {
    /// The distribution.
    pub distribution: &'static str,
    /// Flat (single-executor all-pairs) wall clock.
    pub flat_secs: f64,
    /// Hierarchical (tree) merge wall clock.
    pub tree_secs: f64,
    /// Tuples flagged — identical on both plans by construction.
    pub deferred_deletions: u64,
    /// Bitmap classes the tree merge combined.
    pub classes_merged: u64,
}

/// The full benchmark.
#[derive(Debug, Clone)]
pub struct IncompleteBench {
    /// All measured cells (flat + tree per distribution).
    pub cells: Vec<IncompleteCell>,
    /// One summary per distribution.
    pub summaries: Vec<IncompleteSummary>,
}

fn session(distribution: &str, n: usize) -> SessionContext {
    let ctx = SessionContext::new();
    ctx.register_table(
        "t",
        Schema::new(
            (0..DIMS)
                .map(|i| Field::new(format!("d{i}"), DataType::Float64, true))
                .collect(),
        ),
        // NULL-bearing Börzsönyi data: the injection spreads tuples over
        // (up to) 2^DIMS bitmap classes.
        inject_nulls(borzsonyi_rows(distribution, n, DIMS, 42), NULL_FRACTION, 42),
    )
    .expect("register bench table");
    ctx
}

/// Run one merge variant under the shared best-of-three protocol.
fn run_cell(
    base: &SessionContext,
    distribution: &'static str,
    variant: &'static str,
    config: SessionConfig,
    n: usize,
) -> (IncompleteCell, Vec<String>) {
    let ctx = base.with_shared_catalog(config.with_executors(EXECUTORS));
    let df = ctx
        .sql(&skyline_sql(DIMS, false))
        .expect("parse bench query");
    let (secs, result) = best_of_three(&df);
    let cell = IncompleteCell {
        distribution,
        variant,
        rows: n,
        null_fraction: NULL_FRACTION,
        result_rows: result.num_rows(),
        secs,
        deferred_deletions: result.metrics.deferred_deletions,
        classes_merged: result.metrics.classes_merged,
        merge_rounds: result.metrics.merge_rounds,
    };
    (cell, result.sorted_display())
}

/// Run the flat-vs-tree sweep. `quick` shrinks the input so test suites
/// and CI smoke runs stay fast.
pub fn run_incomplete_bench(quick: bool) -> IncompleteBench {
    let n = if quick { 2_500 } else { 30_000 };
    let mut cells = Vec::new();
    let mut summaries = Vec::new();
    for distribution in ["correlated", "independent", "anti_correlated"] {
        let base = session(distribution, n);
        let (flat, expected) = run_cell(
            &base,
            distribution,
            "flat",
            SessionConfig::default().with_incomplete_tree_merge(false),
            n,
        );
        assert_eq!(flat.merge_rounds, 0, "{distribution}: flat plan ran rounds");
        let (tree, tree_rows) = run_cell(
            &base,
            distribution,
            "tree",
            SessionConfig::default().with_hierarchical_merge_min_partitions(2),
            n,
        );
        assert_eq!(
            tree_rows, expected,
            "{distribution}: tree merge disagrees with flat"
        );
        assert_eq!(
            tree.deferred_deletions, flat.deferred_deletions,
            "{distribution}: the plans flagged different tuples"
        );
        assert!(
            tree.merge_rounds >= 1 && tree.classes_merged >= 2,
            "{distribution}: tree merge did not engage: {tree:?}"
        );
        // The acceptance bar: the tree merge is never slower than the
        // flat single-executor pass. Only the full release benchmark
        // asserts the clock (debug builds and millisecond-scale smoke
        // cells measure scheduler jitter, not the algorithms); smoke runs
        // check structure.
        if cfg!(not(debug_assertions)) && !quick {
            assert!(
                tree.secs <= flat.secs * 1.05 + 0.002,
                "{distribution}: tree {:.4}s slower than flat {:.4}s",
                tree.secs,
                flat.secs,
            );
        }
        summaries.push(IncompleteSummary {
            distribution,
            flat_secs: flat.secs,
            tree_secs: tree.secs,
            deferred_deletions: tree.deferred_deletions,
            classes_merged: tree.classes_merged,
        });
        cells.push(flat);
        cells.push(tree);
    }
    IncompleteBench { cells, summaries }
}

/// Serialize a benchmark run as the `BENCH_PR5.json` document.
pub fn to_json(bench: &IncompleteBench) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"incomplete_hierarchical_merge\",\n");
    out.push_str("  \"workload\": \"skyline_3d_incomplete_flat_vs_tree_merge\",\n");
    out.push_str("  \"cells\": [\n");
    for (i, c) in bench.cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"distribution\": \"{}\", \"variant\": \"{}\", \"rows\": {}, \
             \"null_fraction\": {:.2}, \"result_rows\": {}, \"secs\": {:.6}, \
             \"deferred_deletions\": {}, \"classes_merged\": {}, \"merge_rounds\": {}}}{}",
            c.distribution,
            c.variant,
            c.rows,
            c.null_fraction,
            c.result_rows,
            c.secs,
            c.deferred_deletions,
            c.classes_merged,
            c.merge_rounds,
            if i + 1 < bench.cells.len() { "," } else { "" },
        );
    }
    out.push_str("  ],\n  \"summary\": [\n");
    for (i, s) in bench.summaries.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"distribution\": \"{}\", \"flat_secs\": {:.6}, \"tree_secs\": {:.6}, \
             \"speedup\": {:.3}, \"deferred_deletions\": {}, \"classes_merged\": {}}}{}",
            s.distribution,
            s.flat_secs,
            s.tree_secs,
            s.flat_secs / s.tree_secs.max(1e-9),
            s.deferred_deletions,
            s.classes_merged,
            if i + 1 < bench.summaries.len() {
                ","
            } else {
                ""
            },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run the sweep and write `BENCH_PR5.json` to `path`.
pub fn write_bench_pr5(path: &str, quick: bool) -> std::io::Result<IncompleteBench> {
    let bench = run_incomplete_bench(quick);
    std::fs::write(path, to_json(&bench))?;
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_exercises_both_merges() {
        let bench = run_incomplete_bench(true);
        assert_eq!(bench.cells.len(), 6, "flat + tree × 3");
        assert_eq!(bench.summaries.len(), 3);
        for s in &bench.summaries {
            assert!(s.deferred_deletions > 0, "{s:?}");
            assert!(s.classes_merged >= 2, "{s:?}");
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let bench = run_incomplete_bench(true);
        let json = to_json(&bench);
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"variant\"").count(), bench.cells.len());
        assert_eq!(json.matches("\"flat_secs\"").count(), bench.summaries.len());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
