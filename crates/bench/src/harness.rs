//! Shared measurement scaffolding for the extension benchmarks, so the
//! `BENCH_PR*.json` trajectories are recorded under one protocol: one
//! Börzsönyi dataset generator (with optional NULL injection), one
//! skyline-query builder, and one best-of-N timing loop. A change to the
//! measurement protocol (warm-up policy, repeat count) lands here once
//! instead of drifting per experiment.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkline::{DataFrame, QueryResult, Row, Value};
use sparkline_datagen::distributions::{anti_correlated_rows, correlated_rows, independent_rows};

/// Seeded rows of one named Börzsönyi distribution.
pub fn borzsonyi_rows(distribution: &str, n: usize, dims: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    match distribution {
        "correlated" => correlated_rows(&mut rng, n, dims),
        "independent" => independent_rows(&mut rng, n, dims),
        "anti_correlated" => anti_correlated_rows(&mut rng, n, dims),
        other => panic!("unknown distribution {other}"),
    }
}

/// NULL-bearing variant: each value independently NULLed with probability
/// `fraction` (seeded), spreading tuples over up to `2^dims` bitmap
/// classes.
pub fn inject_nulls(rows: Vec<Row>, fraction: f64, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    rows.into_iter()
        .map(|row| {
            Row::new(
                row.values()
                    .iter()
                    .map(|v| {
                        if rng.gen_bool(fraction) {
                            Value::Null
                        } else {
                            v.clone()
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

/// `SELECT * FROM t SKYLINE OF [COMPLETE] d0 MIN, ..., dN MIN` over the
/// benchmark tables' `d{i}` column convention.
pub fn skyline_sql(dims: usize, complete: bool) -> String {
    let dim_list = (0..dims)
        .map(|i| format!("d{i} MIN"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "SELECT * FROM t SKYLINE OF {}{dim_list}",
        if complete { "COMPLETE " } else { "" }
    )
}

/// `n` timed runs of `measure`; the fastest wall clock wins and its
/// output is returned alongside it. This is the one best-of-N protocol
/// all `BENCH_PR*.json` cells are recorded under — the best run absorbs
/// scheduler noise. Callers timing sub-millisecond kernels should run
/// `measure` once untimed first so the warm-up is not a candidate.
pub fn best_of_n<T>(n: usize, mut measure: impl FnMut() -> T) -> (f64, T) {
    let mut best: Option<(f64, T)> = None;
    for _ in 0..n.max(1) {
        let start = Instant::now();
        let out = measure();
        let secs = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(b, _)| secs < *b) {
            best = Some((secs, out));
        }
    }
    best.expect("measured runs")
}

/// Run a query three times (warm + measured; the best run absorbs
/// scheduler noise) and return the fastest wall clock with its result.
pub fn best_of_three(df: &DataFrame) -> (f64, QueryResult) {
    best_of_n(3, || df.collect().expect("bench query"))
}
