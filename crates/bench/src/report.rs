//! Rendering of experiment results: paper-style series tables (Figures)
//! and relative-time tables (Appendix D, Tables 3–12), plus CSV output.

use std::fmt::Write as _;

use crate::runner::{Measurement, Metric};

/// One rendered cell.
#[derive(Debug, Clone, Copy)]
pub enum Cell {
    /// A measured value.
    Value(f64),
    /// Timeout ("t.o." in the paper's tables).
    Timeout,
    /// Not measured / not applicable ("n.a.").
    NotApplicable,
}

impl Cell {
    /// Extract a cell from a measurement for the chosen metric.
    pub fn from_measurement(m: &Measurement, metric: Metric) -> Cell {
        if m.timed_out() {
            return Cell::Timeout;
        }
        match metric {
            Metric::Time => Cell::Value(m.secs.unwrap_or_default()),
            Metric::Memory => Cell::Value(m.peak_memory as f64 / (1024.0 * 1024.0)),
            Metric::Rows => Cell::Value(m.peak_rows_in_flight as f64),
        }
    }

    fn render(&self, metric: Metric) -> String {
        match self {
            Cell::Value(v) => match metric {
                Metric::Time => format!("{v:.3}"),
                Metric::Memory => format!("{v:.2}"),
                Metric::Rows => format!("{v:.0}"),
            },
            Cell::Timeout => "t.o.".to_string(),
            Cell::NotApplicable => "n.a.".to_string(),
        }
    }
}

/// Render a figure-style table: one row per series (algorithm), one
/// column per x value. `metric` controls units; time in seconds, memory
/// in MB.
pub fn format_series_table(
    title: &str,
    x_label: &str,
    x_values: &[String],
    series: &[(String, Vec<Cell>)],
    metric: Metric,
) -> String {
    let unit = match metric {
        Metric::Time => "execution time [s]",
        Metric::Memory => "peak memory [MB]",
        Metric::Rows => "peak rows in flight",
    };
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let _ = writeln!(out, "({unit}; rows = algorithm, columns = {x_label})");
    let name_w = series
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(9)
        .max("algorithm".len());
    let col_w = x_values.iter().map(|x| x.len()).max().unwrap_or(6).max(8);
    let _ = write!(out, "{:<name_w$}", "algorithm");
    for x in x_values {
        let _ = write!(out, " | {x:>col_w$}");
    }
    out.push('\n');
    let _ = write!(out, "{}", "-".repeat(name_w));
    for _ in x_values {
        let _ = write!(out, "-+-{}", "-".repeat(col_w));
    }
    out.push('\n');
    for (name, cells) in series {
        let _ = write!(out, "{name:<name_w$}");
        for cell in cells {
            let _ = write!(out, " | {:>col_w$}", cell.render(metric));
        }
        out.push('\n');
    }
    out
}

/// Render an Appendix-D-style relative table: absolute values plus each
/// algorithm as a percentage of the reference series (100 %). `n.a.` for
/// columns where the reference timed out, as in the paper.
pub fn format_relative_table(
    title: &str,
    x_values: &[String],
    series: &[(String, Vec<Cell>)],
    reference_name: &str,
) -> String {
    let mut out = String::new();
    let Some((_, reference)) = series.iter().find(|(n, _)| n == reference_name) else {
        return format!("## {title}\n(reference series missing)\n");
    };
    let name_w = series.iter().map(|(n, _)| n.len()).max().unwrap_or(9);
    let col_w = x_values.iter().map(|x| x.len()).max().unwrap_or(6).max(8);
    let _ = writeln!(out, "## {title} — relative to '{reference_name}' (=100%)");
    for (name, cells) in series {
        let _ = write!(out, "{name:<name_w$}");
        for (cell, r) in cells.iter().zip(reference) {
            let rendered = match (cell, r) {
                (_, Cell::Timeout | Cell::NotApplicable) => "n.a.".to_string(),
                (Cell::Timeout, _) => "t.o.".to_string(),
                (Cell::NotApplicable, _) => "n.a.".to_string(),
                (Cell::Value(v), Cell::Value(rv)) if *rv > 0.0 => {
                    format!("{:.2}%", 100.0 * v / rv)
                }
                _ => "n.a.".to_string(),
            };
            let _ = write!(out, " | {rendered:>col_w$}");
        }
        out.push('\n');
    }
    out
}

/// Serialize a result grid as CSV (one line per series/x pair).
pub fn to_csv(
    experiment: &str,
    x_label: &str,
    x_values: &[String],
    series: &[(String, Vec<Cell>)],
    metric: Metric,
) -> String {
    let mut out = String::from("experiment,series,x_label,x,metric,value\n");
    let metric_name = match metric {
        Metric::Time => "time_s",
        Metric::Memory => "memory_mb",
        Metric::Rows => "peak_rows_in_flight",
    };
    for (name, cells) in series {
        for (x, cell) in x_values.iter().zip(cells) {
            let value = match cell {
                Cell::Value(v) => format!("{v}"),
                Cell::Timeout => "timeout".to_string(),
                Cell::NotApplicable => "".to_string(),
            };
            let _ = writeln!(
                out,
                "{experiment},{name},{x_label},{x},{metric_name},{value}"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<String>, Vec<(String, Vec<Cell>)>) {
        let x = vec!["1".to_string(), "2".to_string()];
        let series = vec![
            (
                "reference".to_string(),
                vec![Cell::Value(10.0), Cell::Timeout],
            ),
            (
                "distributed complete".to_string(),
                vec![Cell::Value(4.0), Cell::Value(8.0)],
            ),
        ];
        (x, series)
    }

    #[test]
    fn series_table_renders() {
        let (x, series) = sample();
        let t = format_series_table("Fig X", "dims", &x, &series, Metric::Time);
        assert!(t.contains("Fig X"));
        assert!(t.contains("t.o."));
        assert!(t.contains("4.000"));
    }

    #[test]
    fn relative_table_uses_reference() {
        let (x, series) = sample();
        let t = format_relative_table("Table X", &x, &series, "reference");
        assert!(t.contains("100.00%"), "{t}");
        assert!(t.contains("40.00%"), "{t}");
        // Column 2: reference timed out → n.a. for everyone.
        assert!(t.contains("n.a."), "{t}");
    }

    #[test]
    fn csv_output() {
        let (x, series) = sample();
        let csv = to_csv("fig3", "dims", &x, &series, Metric::Time);
        assert!(csv.contains("fig3,reference,dims,2,time_s,timeout"));
        assert!(csv.contains("fig3,distributed complete,dims,1,time_s,4"));
    }
}
