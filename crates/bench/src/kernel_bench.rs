//! Scalar-vs-columnar dominance kernel benchmark and the machine-readable
//! `BENCH_PR2.json` trajectory file.
//!
//! The experiment mirrors the paper's cost model: the local skyline phase
//! is timed at several dimension counts on the Börzsönyi anti-correlated
//! workload (the dominance-test-heavy one), once through the scalar
//! [`DominanceChecker`] and once through the columnar batch kernel, and
//! the per-test cost (ns/test) plus throughput (rows/s, tests/s) are
//! recorded. The JSON output is intentionally stable so later PRs can
//! track the perf trajectory file-over-file.

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkline_common::{SkylineDim, SkylineSpec};
use sparkline_datagen::distributions::anti_correlated_rows;
use sparkline_skyline::{bnl_skyline, bnl_skyline_batched, DominanceChecker, SkylineStats};

/// One timed (variant, dimension-count) cell.
#[derive(Debug, Clone)]
pub struct KernelCell {
    /// `"scalar"` or `"columnar"`.
    pub variant: &'static str,
    /// Skyline dimension count.
    pub dims: usize,
    /// Input rows.
    pub rows: usize,
    /// Skyline size (must match between variants).
    pub skyline: usize,
    /// Wall-clock seconds of the local-phase BNL pass.
    pub secs: f64,
    /// Dominance tests performed.
    pub dominance_tests: u64,
    /// Tests routed through the columnar kernel.
    pub batched_tests: u64,
    /// Tests routed through the scalar checker.
    pub scalar_tests: u64,
    /// Nanoseconds per dominance test.
    pub ns_per_test: f64,
    /// Input rows per second.
    pub rows_per_sec: f64,
    /// Dominance tests per second.
    pub tests_per_sec: f64,
}

/// The full benchmark result: cells plus the scalar/columnar ns-per-test
/// ratio per dimension count (`> 1` means the columnar kernel is cheaper
/// per *performed* test).
///
/// Read the ratio together with each cell's `dominance_tests` and `secs`:
/// the two variants count tests differently — the scalar loop early-exits
/// per pair while the kernel's exit is chunk-granular, so the columnar
/// variant performs more (cheaper) tests on dominated-quickly workloads.
/// The JSON keeps both the per-test cost and the wall clock so neither
/// story hides the other.
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// All measured cells, scalar and columnar.
    pub cells: Vec<KernelCell>,
    /// `(dims, scalar_ns_per_test / columnar_ns_per_test)`.
    pub speedups: Vec<(usize, f64)>,
}

fn spec(dims: usize) -> SkylineSpec {
    SkylineSpec::new((0..dims).map(SkylineDim::min).collect())
}

fn run_cell(variant: &'static str, dims: usize, rows_n: usize, seed: u64) -> KernelCell {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = anti_correlated_rows(&mut rng, rows_n, dims);
    let checker = DominanceChecker::complete(spec(dims));
    // One untimed warm-up pass, then the best of several timed passes —
    // the cells run in well under a millisecond, where a single sample is
    // at the mercy of the scheduler and the trajectory file would jitter.
    let _ = if variant == "columnar" {
        bnl_skyline_batched(rows.clone(), &checker, &mut SkylineStats::default())
    } else {
        bnl_skyline(rows.clone(), &checker, &mut SkylineStats::default())
    };
    let mut secs = f64::MAX;
    let mut stats = SkylineStats::default();
    let mut skyline = Vec::new();
    for _ in 0..5 {
        let mut pass_stats = SkylineStats::default();
        let start = Instant::now();
        let pass = if variant == "columnar" {
            bnl_skyline_batched(rows.clone(), &checker, &mut pass_stats)
        } else {
            bnl_skyline(rows.clone(), &checker, &mut pass_stats)
        };
        let pass_secs = start.elapsed().as_secs_f64();
        if pass_secs < secs {
            secs = pass_secs;
            stats = pass_stats;
            skyline = pass;
        }
    }
    let tests = stats.dominance_tests.max(1);
    KernelCell {
        variant,
        dims,
        rows: rows_n,
        skyline: skyline.len(),
        secs,
        dominance_tests: stats.dominance_tests,
        batched_tests: stats.batched_tests,
        scalar_tests: stats.scalar_tests,
        ns_per_test: secs * 1e9 / tests as f64,
        rows_per_sec: rows_n as f64 / secs.max(1e-12),
        tests_per_sec: tests as f64 / secs.max(1e-12),
    }
}

/// Run the scalar-vs-columnar sweep. `quick` shrinks the input so test
/// suites stay fast; the full run uses the `ext1`-style anti-correlated
/// workload size.
pub fn run_kernel_bench(quick: bool) -> KernelBench {
    let rows_n = if quick { 1_500 } else { 12_000 };
    let dims_list: &[usize] = if quick { &[2, 4] } else { &[2, 3, 4, 6] };
    let mut cells = Vec::new();
    let mut speedups = Vec::new();
    for &dims in dims_list {
        let scalar = run_cell("scalar", dims, rows_n, 42);
        let columnar = run_cell("columnar", dims, rows_n, 42);
        assert_eq!(
            scalar.skyline, columnar.skyline,
            "scalar and columnar skylines must agree"
        );
        speedups.push((dims, scalar.ns_per_test / columnar.ns_per_test.max(1e-12)));
        cells.push(scalar);
        cells.push(columnar);
    }
    KernelBench { cells, speedups }
}

/// Serialize a benchmark run as the `BENCH_PR2.json` document.
pub fn to_json(bench: &KernelBench) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"columnar_dominance_kernel\",\n");
    out.push_str("  \"workload\": \"anti_correlated_bnl_local_phase\",\n");
    out.push_str("  \"cells\": [\n");
    for (i, c) in bench.cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"variant\": \"{}\", \"dims\": {}, \"rows\": {}, \"skyline\": {}, \
             \"secs\": {:.6}, \"dominance_tests\": {}, \"batched_tests\": {}, \
             \"scalar_tests\": {}, \"ns_per_test\": {:.3}, \"rows_per_sec\": {:.1}, \
             \"tests_per_sec\": {:.1}}}{}",
            c.variant,
            c.dims,
            c.rows,
            c.skyline,
            c.secs,
            c.dominance_tests,
            c.batched_tests,
            c.scalar_tests,
            c.ns_per_test,
            c.rows_per_sec,
            c.tests_per_sec,
            if i + 1 < bench.cells.len() { "," } else { "" },
        );
    }
    out.push_str("  ],\n  \"scalar_over_columnar_ns_per_test\": {\n");
    for (i, (dims, ratio)) in bench.speedups.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"d{dims}\": {ratio:.3}{}",
            if i + 1 < bench.speedups.len() {
                ","
            } else {
                ""
            },
        );
    }
    out.push_str("  }\n}\n");
    out
}

/// Run the sweep and write `BENCH_PR2.json` to `path`.
pub fn write_bench_pr2(path: &str, quick: bool) -> std::io::Result<KernelBench> {
    let bench = run_kernel_bench(quick);
    std::fs::write(path, to_json(&bench))?;
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_consistent_cells() {
        let bench = run_kernel_bench(true);
        assert_eq!(bench.cells.len(), 4);
        assert_eq!(bench.speedups.len(), 2);
        for cell in &bench.cells {
            assert!(cell.dominance_tests > 0);
            assert!(cell.ns_per_test > 0.0);
            match cell.variant {
                "columnar" => assert_eq!(cell.scalar_tests, 0, "{cell:?}"),
                "scalar" => assert_eq!(cell.batched_tests, 0, "{cell:?}"),
                other => panic!("unexpected variant {other}"),
            }
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let bench = run_kernel_bench(true);
        let json = to_json(&bench);
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"variant\"").count(), bench.cells.len());
        assert!(json.contains("\"scalar_over_columnar_ns_per_test\""));
        // Balanced braces/brackets (hand-rolled serializer sanity).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
