//! Dominance-kernel microbenchmarks and their machine-readable
//! trajectory files.
//!
//! Two sweeps share one protocol (the `harness` best-of-N loop on the
//! Börzsönyi anti-correlated workload, the dominance-test-heavy one):
//!
//! * the PR 2 scalar-vs-columnar sweep (`BENCH_PR2.json`), timing the
//!   local skyline phase once through the scalar [`DominanceChecker`]
//!   and once through the columnar batch kernel;
//! * the PR 6 explicit-SIMD sweep (`BENCH_PR6.json`), a
//!   kernel-knob × admission-mode grid — `scalar`/`chunked`/`simd`
//!   crossed with one-candidate and multi-candidate ([`MULTI_LANES`])
//!   window admission — plus the [`CANDIDATE_FIRST_CHUNK`] tuning curve
//!   the constant is pinned against.
//!
//! Per-test cost (ns/test) plus throughput (rows/s, tests/s) are
//! recorded; the JSON outputs are intentionally stable so later PRs can
//! track the perf trajectory file-over-file.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sparkline_common::{DominanceKernel, Row, SkylineDim, SkylineSpec};
use sparkline_datagen::distributions::anti_correlated_rows;
use sparkline_skyline::{
    bnl_skyline, bnl_skyline_batched, bnl_skyline_kernel, kernel_label, BnlBuilder, ColumnarBlock,
    Dominance, DominanceChecker, SkylineStats, CANDIDATE_FIRST_CHUNK, CHUNK, MULTI_LANES,
};

use crate::harness::best_of_n;

/// One timed (variant, dimension-count) cell.
#[derive(Debug, Clone)]
pub struct KernelCell {
    /// `"scalar"` or `"columnar"`.
    pub variant: &'static str,
    /// Skyline dimension count.
    pub dims: usize,
    /// Input rows.
    pub rows: usize,
    /// Skyline size (must match between variants).
    pub skyline: usize,
    /// Wall-clock seconds of the local-phase BNL pass.
    pub secs: f64,
    /// Dominance tests performed.
    pub dominance_tests: u64,
    /// Tests routed through the columnar kernel.
    pub batched_tests: u64,
    /// Tests routed through the scalar checker.
    pub scalar_tests: u64,
    /// Nanoseconds per dominance test.
    pub ns_per_test: f64,
    /// Input rows per second.
    pub rows_per_sec: f64,
    /// Dominance tests per second.
    pub tests_per_sec: f64,
}

/// The full benchmark result: cells plus the scalar/columnar ns-per-test
/// ratio per dimension count (`> 1` means the columnar kernel is cheaper
/// per *performed* test).
///
/// Read the ratio together with each cell's `dominance_tests` and `secs`:
/// the two variants count tests differently — the scalar loop early-exits
/// per pair while the kernel's exit is chunk-granular, so the columnar
/// variant performs more (cheaper) tests on dominated-quickly workloads.
/// The JSON keeps both the per-test cost and the wall clock so neither
/// story hides the other.
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// All measured cells, scalar and columnar.
    pub cells: Vec<KernelCell>,
    /// `(dims, scalar_ns_per_test / columnar_ns_per_test)`.
    pub speedups: Vec<(usize, f64)>,
}

fn spec(dims: usize) -> SkylineSpec {
    SkylineSpec::new((0..dims).map(SkylineDim::min).collect())
}

fn run_cell(variant: &'static str, dims: usize, rows_n: usize, seed: u64) -> KernelCell {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = anti_correlated_rows(&mut rng, rows_n, dims);
    let checker = DominanceChecker::complete(spec(dims));
    // One untimed warm-up pass, then the best of several timed passes —
    // the cells run in well under a millisecond, where a single sample is
    // at the mercy of the scheduler and the trajectory file would jitter.
    let pass = |stats: &mut SkylineStats| {
        if variant == "columnar" {
            bnl_skyline_batched(rows.clone(), &checker, stats)
        } else {
            bnl_skyline(rows.clone(), &checker, stats)
        }
    };
    let _ = pass(&mut SkylineStats::default());
    let (secs, (skyline, stats)) = best_of_n(5, || {
        let mut pass_stats = SkylineStats::default();
        let result = pass(&mut pass_stats);
        (result, pass_stats)
    });
    let tests = stats.dominance_tests.max(1);
    KernelCell {
        variant,
        dims,
        rows: rows_n,
        skyline: skyline.len(),
        secs,
        dominance_tests: stats.dominance_tests,
        batched_tests: stats.batched_tests,
        scalar_tests: stats.scalar_tests,
        ns_per_test: secs * 1e9 / tests as f64,
        rows_per_sec: rows_n as f64 / secs.max(1e-12),
        tests_per_sec: tests as f64 / secs.max(1e-12),
    }
}

/// Run the scalar-vs-columnar sweep. `quick` shrinks the input so test
/// suites stay fast; the full run uses the `ext1`-style anti-correlated
/// workload size.
pub fn run_kernel_bench(quick: bool) -> KernelBench {
    let rows_n = if quick { 1_500 } else { 12_000 };
    let dims_list: &[usize] = if quick { &[2, 4] } else { &[2, 3, 4, 6] };
    let mut cells = Vec::new();
    let mut speedups = Vec::new();
    for &dims in dims_list {
        let scalar = run_cell("scalar", dims, rows_n, 42);
        let columnar = run_cell("columnar", dims, rows_n, 42);
        assert_eq!(
            scalar.skyline, columnar.skyline,
            "scalar and columnar skylines must agree"
        );
        speedups.push((dims, scalar.ns_per_test / columnar.ns_per_test.max(1e-12)));
        cells.push(scalar);
        cells.push(columnar);
    }
    KernelBench { cells, speedups }
}

/// Serialize a benchmark run as the `BENCH_PR2.json` document.
pub fn to_json(bench: &KernelBench) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"columnar_dominance_kernel\",\n");
    out.push_str("  \"workload\": \"anti_correlated_bnl_local_phase\",\n");
    out.push_str("  \"cells\": [\n");
    for (i, c) in bench.cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"variant\": \"{}\", \"dims\": {}, \"rows\": {}, \"skyline\": {}, \
             \"secs\": {:.6}, \"dominance_tests\": {}, \"batched_tests\": {}, \
             \"scalar_tests\": {}, \"ns_per_test\": {:.3}, \"rows_per_sec\": {:.1}, \
             \"tests_per_sec\": {:.1}}}{}",
            c.variant,
            c.dims,
            c.rows,
            c.skyline,
            c.secs,
            c.dominance_tests,
            c.batched_tests,
            c.scalar_tests,
            c.ns_per_test,
            c.rows_per_sec,
            c.tests_per_sec,
            if i + 1 < bench.cells.len() { "," } else { "" },
        );
    }
    out.push_str("  ],\n  \"scalar_over_columnar_ns_per_test\": {\n");
    for (i, (dims, ratio)) in bench.speedups.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"d{dims}\": {ratio:.3}{}",
            if i + 1 < bench.speedups.len() {
                ","
            } else {
                ""
            },
        );
    }
    out.push_str("  }\n}\n");
    out
}

/// Run the sweep and write `BENCH_PR2.json` to `path`.
pub fn write_bench_pr2(path: &str, quick: bool) -> std::io::Result<KernelBench> {
    let bench = run_kernel_bench(quick);
    std::fs::write(path, to_json(&bench))?;
    Ok(bench)
}

// ---------------------------------------------------------------------------
// PR 6: the explicit-SIMD multi-candidate sweep (`BENCH_PR6.json`).
// ---------------------------------------------------------------------------

/// One timed (kernel knob, admission mode, dimension count) cell of the
/// PR 6 sweep.
#[derive(Debug, Clone)]
pub struct SimdCell {
    /// `"scalar"`, `"chunked"`, or `"simd"` (the forced knob).
    pub kernel: &'static str,
    /// `"one_candidate"` (per-row window admission, the PR 2 protocol) or
    /// `"multi_candidate"` (groups of [`MULTI_LANES`] rows per window
    /// pass).
    pub mode: &'static str,
    /// Skyline dimension count.
    pub dims: usize,
    /// Input rows.
    pub rows: usize,
    /// Skyline size (must match across every knob and mode).
    pub skyline: usize,
    /// Wall-clock seconds of the local-phase BNL pass.
    pub secs: f64,
    /// Dominance tests performed.
    pub dominance_tests: u64,
    /// Tests routed through the columnar kernel.
    pub batched_tests: u64,
    /// Batched tests answered by an explicit-SIMD tier.
    pub simd_tests: u64,
    /// Multi-candidate admission pre-passes executed.
    pub multi_candidate_passes: u64,
    /// Nanoseconds per performed dominance test.
    pub ns_per_test: f64,
    /// Input rows per second.
    pub rows_per_sec: f64,
}

/// The PR 6 benchmark result: the knob × mode grid, the headline speedup
/// per dimension count, and the [`CANDIDATE_FIRST_CHUNK`] tuning curve.
///
/// The `chunked` one-candidate cells reproduce PR 2's `columnar` variant
/// (same code path, knob-pinned), so `speedups` reads as "SIMD
/// multi-candidate over the PR 2 kernel, per performed test" measured in
/// one run on one machine. As in PR 2, the knobs count tests differently
/// (chunk-granular early exit, snapshot pre-passes) while the windows
/// stay byte-identical; both the per-test cost and the wall clock are
/// kept so neither story hides the other.
#[derive(Debug, Clone)]
pub struct SimdBench {
    /// What the `simd` knob resolves to on this CPU (e.g.
    /// `simd(avx2), lanes=8`, or `chunked` on a host without SIMD tiers).
    pub simd_tier: String,
    /// All measured cells, grouped per dimension count.
    pub cells: Vec<SimdCell>,
    /// `(dims, chunked one-candidate ns/test ÷ simd multi-candidate
    /// ns/test)` — the PR 6 acceptance ratio.
    pub speedups: Vec<(usize, f64)>,
    /// `(first_chunk, ns per candidate-vs-window pass)` for the
    /// progressive-doubling start size, measured on the widest sweep
    /// dimension count. [`CANDIDATE_FIRST_CHUNK`] is pinned at this
    /// curve's minimum.
    pub first_chunk_tuning: Vec<(usize, f64)>,
}

/// The forced knob behind each kernel column of the sweep.
fn knob(kernel: &str) -> DominanceKernel {
    match kernel {
        "scalar" => DominanceKernel::Scalar,
        "chunked" => DominanceKernel::Chunked,
        "simd" => DominanceKernel::Simd,
        other => panic!("unknown kernel column {other}"),
    }
}

fn run_simd_cell(
    kernel: &'static str,
    mode: &'static str,
    dims: usize,
    rows_n: usize,
    seed: u64,
) -> SimdCell {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = anti_correlated_rows(&mut rng, rows_n, dims);
    let checker = DominanceChecker::complete(spec(dims));
    let forced = knob(kernel);
    let pass = |stats: &mut SkylineStats| -> Vec<Row> {
        if mode == "multi_candidate" {
            // One batch: `push_batch` admits groups of MULTI_LANES rows
            // per window snapshot pass.
            bnl_skyline_kernel(rows.clone(), &checker, stats, forced)
        } else {
            // Per-row admission: the PR 2 protocol on the forced knob.
            let mut builder = BnlBuilder::with_kernel(checker.clone(), forced);
            for row in rows.clone() {
                builder.push(row);
            }
            let (window, pass_stats) = builder.finish();
            stats.merge(&pass_stats);
            window
        }
    };
    let _ = pass(&mut SkylineStats::default());
    let (secs, (skyline, stats)) = best_of_n(5, || {
        let mut pass_stats = SkylineStats::default();
        let result = pass(&mut pass_stats);
        (result, pass_stats)
    });
    let tests = stats.dominance_tests.max(1);
    SimdCell {
        kernel,
        mode,
        dims,
        rows: rows_n,
        skyline: skyline.len(),
        secs,
        dominance_tests: stats.dominance_tests,
        batched_tests: stats.batched_tests,
        simd_tests: stats.simd_tests,
        multi_candidate_passes: stats.multi_candidate_passes,
        ns_per_test: secs * 1e9 / tests as f64,
        rows_per_sec: rows_n as f64 / secs.max(1e-12),
    }
}

/// Sweep the progressive-doubling start size of the single-candidate
/// compare on a realistic window: the final skyline of the widest sweep
/// cell becomes the block, and every input row is tested against it once
/// per `first_chunk` setting. The minimum of this curve is what
/// [`CANDIDATE_FIRST_CHUNK`] is pinned to.
fn first_chunk_sweep(dims: usize, rows_n: usize, seed: u64) -> Vec<(usize, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = anti_correlated_rows(&mut rng, rows_n, dims);
    let checker = DominanceChecker::complete(spec(dims));
    let skyline = bnl_skyline(rows.clone(), &checker, &mut SkylineStats::default());
    let mut block = ColumnarBlock::for_checker(&checker);
    for row in &skyline {
        block.push(row);
    }
    assert!(!block.is_fallback(), "numeric MIN dims must encode");
    let candidates: Vec<_> = rows
        .iter()
        .map(|row| block.encode(row).expect("numeric row encodes"))
        .collect();
    let mut curve = Vec::new();
    for first_chunk in [1usize, 2, 4, 8, 16, CHUNK] {
        let mut out: Vec<Dominance> = Vec::new();
        let mut run = || {
            let mut tested = 0u64;
            for cand in &candidates {
                tested += block
                    .compare_batch_tuned(cand, &mut out, true, first_chunk)
                    .tested;
            }
            tested
        };
        let _ = run();
        let (secs, _) = best_of_n(5, run);
        curve.push((first_chunk, secs * 1e9 / candidates.len().max(1) as f64));
    }
    curve
}

/// Run the PR 6 knob × mode sweep. `quick` shrinks the input so test
/// suites stay fast; the full run mirrors the PR 2 workload sizes.
pub fn run_simd_bench(quick: bool) -> SimdBench {
    let rows_n = if quick { 1_500 } else { 12_000 };
    let dims_list: &[usize] = if quick { &[2, 4] } else { &[2, 3, 4, 6] };
    let mut cells = Vec::new();
    let mut speedups = Vec::new();
    for &dims in dims_list {
        let mut baseline_skyline = None;
        let mut chunked_one = f64::NAN;
        let mut simd_multi = f64::NAN;
        for kernel in ["scalar", "chunked", "simd"] {
            for mode in ["one_candidate", "multi_candidate"] {
                let cell = run_simd_cell(kernel, mode, dims, rows_n, 42);
                match baseline_skyline {
                    None => baseline_skyline = Some(cell.skyline),
                    Some(expected) => assert_eq!(
                        cell.skyline, expected,
                        "every knob and mode must produce the same skyline"
                    ),
                }
                if kernel == "chunked" && mode == "one_candidate" {
                    chunked_one = cell.ns_per_test;
                }
                if kernel == "simd" && mode == "multi_candidate" {
                    simd_multi = cell.ns_per_test;
                }
                cells.push(cell);
            }
        }
        speedups.push((dims, chunked_one / simd_multi.max(1e-12)));
    }
    let tuning_dims = *dims_list.last().expect("non-empty sweep");
    SimdBench {
        simd_tier: kernel_label(DominanceKernel::Simd),
        cells,
        speedups,
        first_chunk_tuning: first_chunk_sweep(tuning_dims, rows_n, 42),
    }
}

/// Serialize a PR 6 run as the `BENCH_PR6.json` document.
pub fn to_json_pr6(bench: &SimdBench) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"simd_multi_candidate_dominance_kernel\",\n");
    out.push_str("  \"workload\": \"anti_correlated_bnl_local_phase\",\n");
    let _ = writeln!(out, "  \"simd_tier\": \"{}\",", bench.simd_tier);
    let _ = writeln!(out, "  \"multi_lanes\": {MULTI_LANES},");
    let _ = writeln!(out, "  \"candidate_first_chunk\": {CANDIDATE_FIRST_CHUNK},");
    out.push_str("  \"cells\": [\n");
    for (i, c) in bench.cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"kernel\": \"{}\", \"mode\": \"{}\", \"dims\": {}, \"rows\": {}, \
             \"skyline\": {}, \"secs\": {:.6}, \"dominance_tests\": {}, \
             \"batched_tests\": {}, \"simd_tests\": {}, \"multi_candidate_passes\": {}, \
             \"ns_per_test\": {:.3}, \"rows_per_sec\": {:.1}}}{}",
            c.kernel,
            c.mode,
            c.dims,
            c.rows,
            c.skyline,
            c.secs,
            c.dominance_tests,
            c.batched_tests,
            c.simd_tests,
            c.multi_candidate_passes,
            c.ns_per_test,
            c.rows_per_sec,
            if i + 1 < bench.cells.len() { "," } else { "" },
        );
    }
    out.push_str("  ],\n  \"chunked_one_candidate_over_simd_multi_ns_per_test\": {\n");
    for (i, (dims, ratio)) in bench.speedups.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"d{dims}\": {ratio:.3}{}",
            if i + 1 < bench.speedups.len() {
                ","
            } else {
                ""
            },
        );
    }
    out.push_str("  },\n  \"first_chunk_tuning_ns_per_candidate_pass\": {\n");
    for (i, (first_chunk, ns)) in bench.first_chunk_tuning.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"fc{first_chunk}\": {ns:.1}{}",
            if i + 1 < bench.first_chunk_tuning.len() {
                ","
            } else {
                ""
            },
        );
    }
    out.push_str("  }\n}\n");
    out
}

/// Run the PR 6 sweep and write `BENCH_PR6.json` to `path`.
pub fn write_bench_pr6(path: &str, quick: bool) -> std::io::Result<SimdBench> {
    let bench = run_simd_bench(quick);
    std::fs::write(path, to_json_pr6(&bench))?;
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_consistent_cells() {
        let bench = run_kernel_bench(true);
        assert_eq!(bench.cells.len(), 4);
        assert_eq!(bench.speedups.len(), 2);
        for cell in &bench.cells {
            assert!(cell.dominance_tests > 0);
            assert!(cell.ns_per_test > 0.0);
            match cell.variant {
                "columnar" => assert_eq!(cell.scalar_tests, 0, "{cell:?}"),
                "scalar" => assert_eq!(cell.batched_tests, 0, "{cell:?}"),
                other => panic!("unexpected variant {other}"),
            }
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let bench = run_kernel_bench(true);
        let json = to_json(&bench);
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"variant\"").count(), bench.cells.len());
        assert!(json.contains("\"scalar_over_columnar_ns_per_test\""));
        // Balanced braces/brackets (hand-rolled serializer sanity).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn quick_simd_bench_attributes_work_to_the_right_cells() {
        let bench = run_simd_bench(true);
        // 3 kernels × 2 modes × 2 quick dimension counts.
        assert_eq!(bench.cells.len(), 12);
        assert_eq!(bench.speedups.len(), 2);
        assert!(!bench.simd_tier.is_empty());
        for cell in &bench.cells {
            assert!(cell.dominance_tests > 0, "{cell:?}");
            assert!(cell.ns_per_test > 0.0, "{cell:?}");
            match cell.kernel {
                "scalar" => {
                    assert_eq!(cell.batched_tests, 0, "{cell:?}");
                    assert_eq!(cell.simd_tests, 0, "{cell:?}");
                    assert_eq!(cell.multi_candidate_passes, 0, "{cell:?}");
                }
                "chunked" => {
                    assert!(cell.batched_tests > 0, "{cell:?}");
                    assert_eq!(cell.simd_tests, 0, "{cell:?}");
                }
                "simd" => {
                    assert!(cell.batched_tests > 0, "{cell:?}");
                    assert!(cell.simd_tests <= cell.batched_tests, "{cell:?}");
                }
                other => panic!("unexpected kernel column {other}"),
            }
            match cell.mode {
                "one_candidate" => {
                    assert_eq!(cell.multi_candidate_passes, 0, "{cell:?}")
                }
                "multi_candidate" => {
                    if cell.kernel != "scalar" {
                        assert!(cell.multi_candidate_passes > 0, "{cell:?}");
                    }
                }
                other => panic!("unexpected mode column {other}"),
            }
        }
        // The tuning curve covers the pinned constant.
        assert!(bench
            .first_chunk_tuning
            .iter()
            .any(|&(fc, _)| fc == CANDIDATE_FIRST_CHUNK));
        assert!(bench.first_chunk_tuning.iter().all(|&(_, ns)| ns > 0.0));
    }

    #[test]
    fn pr6_json_is_well_formed_enough() {
        let bench = run_simd_bench(true);
        let json = to_json_pr6(&bench);
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"kernel\"").count(), bench.cells.len());
        assert!(json.contains("\"chunked_one_candidate_over_simd_multi_ns_per_test\""));
        assert!(json.contains("\"first_chunk_tuning_ns_per_candidate_pass\""));
        assert!(json.contains("\"simd_tier\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
