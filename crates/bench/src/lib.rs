//! # sparkline-bench
//!
//! The paper-evaluation harness: code that regenerates every table and
//! figure of the EDBT 2023 skyline paper's evaluation (§6 + Appendices C–E)
//! at reproduction scale. See `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured outcomes.
//!
//! Scaling: datasets default to 1:100 of the paper's sizes and the timeout
//! to 30 s (the paper's 3600 s scales with them). Absolute times differ
//! from the paper (simulator vs 18-node YARN cluster); the reproduction
//! target is the *shape*: which algorithm wins, how series scale, where
//! timeouts appear.

pub mod adaptive_bench;
pub mod chaos_bench;
pub mod experiments;
pub mod harness;
pub mod incomplete_bench;
pub mod kernel_bench;
pub mod mutation_bench;
pub mod report;
pub mod runner;
pub mod server_bench;
pub mod storage_bench;
pub mod stream_bench;

pub use adaptive_bench::{run_adaptive_bench, write_bench_pr4, AdaptiveBench};
pub use chaos_bench::{run_chaos_bench, write_bench_pr7, ChaosBench};
pub use incomplete_bench::{run_incomplete_bench, write_bench_pr5, IncompleteBench};
pub use kernel_bench::{run_kernel_bench, write_bench_pr2, KernelBench};
pub use mutation_bench::{run_mutation_bench, write_bench_pr10, MutationBench};
pub use report::{format_relative_table, format_series_table, Cell};
pub use runner::{EvalContext, EvalSettings, Measurement, Metric};
pub use server_bench::{run_server_bench, write_bench_pr9, ServerBench};
pub use storage_bench::{run_storage_bench, write_bench_pr8, StorageBench};
