//! Adaptive-vs-fixed planning benchmark and the machine-readable
//! `BENCH_PR4.json` trajectory file (the `ext5` experiment).
//!
//! For each Börzsönyi distribution (correlated / independent /
//! anti-correlated, 3 dims) the same skyline query runs once under
//! `SkylineStrategy::Adaptive` — statistics-driven partitioning + merge
//! selection plus the representative-point pre-filter — and once under
//! every fixed partitioning scheme (even / hash / angle / grid with the
//! static config knobs). Results must agree exactly; the interesting
//! numbers are which scheme the adaptive planner picked per distribution,
//! how many rows the pre-filter discarded before the local phase, and
//! where the adaptive wall clock lands between the best and worst fixed
//! scheme (the acceptance bar: never worse than the worst fixed scheme,
//! while no single fixed scheme wins all three distributions).

use std::fmt::Write as _;

use sparkline::{
    DataType, Field, Schema, SessionConfig, SessionContext, SkylinePartitioning, SkylineStrategy,
};

use crate::harness::{best_of_three, borzsonyi_rows, skyline_sql};

const DIMS: usize = 3;
const EXECUTORS: usize = 5;
const FIXED: [(&str, SkylinePartitioning); 4] = [
    ("even", SkylinePartitioning::Even),
    ("hash", SkylinePartitioning::Hash),
    ("angle", SkylinePartitioning::AngleBased),
    ("grid", SkylinePartitioning::Grid),
];

/// One timed (distribution, plan-variant) cell.
#[derive(Debug, Clone)]
pub struct AdaptiveCell {
    /// `"correlated"`, `"independent"`, or `"anti_correlated"`.
    pub distribution: &'static str,
    /// `"adaptive"` or the fixed scheme name.
    pub variant: &'static str,
    /// Input rows.
    pub rows: usize,
    /// Skyline size.
    pub result_rows: usize,
    /// Wall-clock seconds (best of three runs).
    pub secs: f64,
    /// Rows the representative pre-filter discarded (0 for fixed plans).
    pub prefilter_rows_dropped: u64,
    /// The partitioning scheme the plan actually applied.
    pub chosen_partitioning: &'static str,
}

/// Per-distribution summary: the adaptive choice against the fixed field.
#[derive(Debug, Clone)]
pub struct AdaptiveSummary {
    /// The distribution.
    pub distribution: &'static str,
    /// Scheme the adaptive planner picked.
    pub chosen: &'static str,
    /// Adaptive wall clock.
    pub adaptive_secs: f64,
    /// Fastest fixed scheme and its wall clock.
    pub best_fixed: &'static str,
    /// Seconds of the fastest fixed scheme.
    pub best_fixed_secs: f64,
    /// Slowest fixed scheme and its wall clock.
    pub worst_fixed: &'static str,
    /// Seconds of the slowest fixed scheme.
    pub worst_fixed_secs: f64,
    /// Rows the pre-filter discarded under the adaptive plan.
    pub prefilter_rows_dropped: u64,
}

/// The full benchmark.
#[derive(Debug, Clone)]
pub struct AdaptiveBench {
    /// All measured cells (one adaptive + four fixed per distribution).
    pub cells: Vec<AdaptiveCell>,
    /// One summary per distribution.
    pub summaries: Vec<AdaptiveSummary>,
}

fn session(distribution: &str, n: usize) -> SessionContext {
    let ctx = SessionContext::new();
    ctx.register_table(
        "t",
        Schema::new(
            (0..DIMS)
                .map(|i| Field::new(format!("d{i}"), DataType::Float64, false))
                .collect(),
        ),
        borzsonyi_rows(distribution, n, DIMS, 42),
    )
    .expect("register bench table");
    ctx
}

/// Run one plan variant under the shared best-of-three protocol.
fn run_cell(
    base: &SessionContext,
    distribution: &'static str,
    variant: &'static str,
    config: SessionConfig,
    n: usize,
) -> (AdaptiveCell, Vec<String>) {
    let ctx = base.with_shared_catalog(config.with_executors(EXECUTORS));
    let df = ctx
        .sql(&skyline_sql(DIMS, true))
        .expect("parse bench query");
    let (secs, result) = best_of_three(&df);
    let cell = AdaptiveCell {
        distribution,
        variant,
        rows: n,
        result_rows: result.num_rows(),
        secs,
        prefilter_rows_dropped: result.metrics.prefilter_rows_dropped,
        chosen_partitioning: result.metrics.chosen_partitioning_label(),
    };
    (cell, result.sorted_display())
}

/// Run the adaptive-vs-fixed sweep. `quick` shrinks the input so test
/// suites and CI smoke runs stay fast.
pub fn run_adaptive_bench(quick: bool) -> AdaptiveBench {
    let n = if quick { 3_000 } else { 20_000 };
    let mut cells = Vec::new();
    let mut summaries = Vec::new();
    for distribution in ["correlated", "independent", "anti_correlated"] {
        let base = session(distribution, n);
        let (adaptive, expected) = run_cell(
            &base,
            distribution,
            "adaptive",
            SessionConfig::default().with_skyline_strategy(SkylineStrategy::Adaptive),
            n,
        );
        assert!(
            adaptive.prefilter_rows_dropped > 0,
            "{distribution}: the representative pre-filter discarded nothing"
        );
        let mut fixed = Vec::new();
        for (label, scheme) in FIXED {
            let (cell, rows) = run_cell(
                &base,
                distribution,
                label,
                SessionConfig::default().with_skyline_partitioning(scheme),
                n,
            );
            assert_eq!(
                rows, expected,
                "{distribution}/{label}: fixed plan disagrees with adaptive"
            );
            fixed.push(cell);
        }
        let best = fixed
            .iter()
            .min_by(|a, b| a.secs.total_cmp(&b.secs))
            .expect("fixed cells")
            .clone();
        let worst = fixed
            .iter()
            .max_by(|a, b| a.secs.total_cmp(&b.secs))
            .expect("fixed cells")
            .clone();
        // The acceptance bar: adaptive never loses to the worst fixed
        // scheme. Only the full release benchmark asserts it — debug
        // builds measure nothing meaningful, and the quick/smoke cells
        // (run on every CI push) are millisecond-scale where scheduler
        // jitter on a shared runner can exceed the real gap; the smoke
        // run checks structure (result equality, drops, distinct
        // choices), the full run checks the clock with a small noise
        // allowance.
        if cfg!(not(debug_assertions)) && !quick {
            assert!(
                adaptive.secs <= worst.secs * 1.05 + 0.002,
                "{distribution}: adaptive {:.4}s slower than worst fixed {} {:.4}s",
                adaptive.secs,
                worst.variant,
                worst.secs,
            );
        }
        summaries.push(AdaptiveSummary {
            distribution,
            chosen: adaptive.chosen_partitioning,
            adaptive_secs: adaptive.secs,
            best_fixed: best.variant,
            best_fixed_secs: best.secs,
            worst_fixed: worst.variant,
            worst_fixed_secs: worst.secs,
            prefilter_rows_dropped: adaptive.prefilter_rows_dropped,
        });
        cells.push(adaptive);
        cells.extend(fixed);
    }
    let distinct_choices: std::collections::HashSet<&str> =
        summaries.iter().map(|s| s.chosen).collect();
    assert!(
        distinct_choices.len() >= 2,
        "adaptive planning must pick at least two different schemes \
         across the distributions: {summaries:?}"
    );
    AdaptiveBench { cells, summaries }
}

/// Serialize a benchmark run as the `BENCH_PR4.json` document.
pub fn to_json(bench: &AdaptiveBench) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"benchmark\": \"adaptive_planning\",\n");
    out.push_str("  \"workload\": \"skyline_3d_adaptive_vs_fixed_partitioning\",\n");
    out.push_str("  \"cells\": [\n");
    for (i, c) in bench.cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"distribution\": \"{}\", \"variant\": \"{}\", \"rows\": {}, \
             \"result_rows\": {}, \"secs\": {:.6}, \"prefilter_rows_dropped\": {}, \
             \"chosen_partitioning\": \"{}\"}}{}",
            c.distribution,
            c.variant,
            c.rows,
            c.result_rows,
            c.secs,
            c.prefilter_rows_dropped,
            c.chosen_partitioning,
            if i + 1 < bench.cells.len() { "," } else { "" },
        );
    }
    out.push_str("  ],\n  \"summary\": [\n");
    for (i, s) in bench.summaries.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"distribution\": \"{}\", \"chosen\": \"{}\", \"adaptive_secs\": {:.6}, \
             \"best_fixed\": \"{}\", \"best_fixed_secs\": {:.6}, \
             \"worst_fixed\": \"{}\", \"worst_fixed_secs\": {:.6}, \
             \"prefilter_rows_dropped\": {}}}{}",
            s.distribution,
            s.chosen,
            s.adaptive_secs,
            s.best_fixed,
            s.best_fixed_secs,
            s.worst_fixed,
            s.worst_fixed_secs,
            s.prefilter_rows_dropped,
            if i + 1 < bench.summaries.len() {
                ","
            } else {
                ""
            },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run the sweep and write `BENCH_PR4.json` to `path`.
pub fn write_bench_pr4(path: &str, quick: bool) -> std::io::Result<AdaptiveBench> {
    let bench = run_adaptive_bench(quick);
    std::fs::write(path, to_json(&bench))?;
    Ok(bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_exercises_adaptive_planning() {
        let bench = run_adaptive_bench(true);
        assert_eq!(bench.cells.len(), 15, "1 adaptive + 4 fixed × 3");
        assert_eq!(bench.summaries.len(), 3);
        for s in &bench.summaries {
            assert!(s.prefilter_rows_dropped > 0, "{s:?}");
            assert_ne!(s.chosen, "standard", "{s:?}");
        }
        // Correlated and anti-correlated plan differently — the point of
        // the subsystem (the run itself asserts >= 2 distinct schemes).
        let chosen: Vec<&str> = bench.summaries.iter().map(|s| s.chosen).collect();
        assert_ne!(chosen[0], chosen[2], "{chosen:?}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let bench = run_adaptive_bench(true);
        let json = to_json(&bench);
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"variant\"").count(), bench.cells.len());
        assert_eq!(json.matches("\"chosen\"").count(), bench.summaries.len());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
