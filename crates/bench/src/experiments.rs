//! The experiments of the paper's evaluation (§6.4, §6.5, Appendices C–E),
//! one function per figure; the Appendix D tables (3–12) are the relative
//! renderings of Figures 3–7 and are emitted alongside them.

use sparkline::Algorithm;
use sparkline_datagen::{airbnb, musicbrainz, skyline_query_for, store_sales, Variant};

use crate::report::Cell;
use crate::runner::{EvalContext, Metric};

/// A rendered experiment result (one chart/table of the paper).
pub struct Report {
    /// Experiment id (e.g. "fig3").
    pub id: String,
    /// Chart title (mirrors the paper's captions).
    pub title: String,
    /// X-axis label.
    pub x_label: &'static str,
    /// X-axis values.
    pub x_values: Vec<String>,
    /// One series per algorithm.
    pub series: Vec<(String, Vec<Cell>)>,
    /// Time or memory.
    pub metric: Metric,
    /// Whether to also render the Appendix D relative table.
    pub with_relative: bool,
}

/// All experiment ids, in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
        "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "ext1", "ext2", "ext3", "ext4",
        "ext5", "ext6", "ext7", "ext8", "ext9", "ext10", "ext11",
    ]
}

/// Run one experiment by id.
pub fn run(id: &str, ctx: &mut EvalContext, quick: bool) -> Vec<Report> {
    match id {
        "fig3" => fig3(ctx, quick),
        "fig4" => fig4(ctx, quick),
        "fig5" => fig5(ctx, quick),
        "fig6" => fig6(ctx, quick),
        "fig7" => fig7(ctx, quick),
        "fig8" => fig8(ctx, quick),
        "fig9" => fig9(ctx, quick),
        "fig10" => fig10(ctx, quick),
        "fig11" => grid_dims_by_executors(ctx, quick, "fig11", DataSource::Airbnb),
        "fig12" => grid_dims_by_executors(ctx, quick, "fig12", DataSource::StoreSales5),
        "fig13" => fig13(ctx, quick),
        "fig14" => grid_executors_by_dims(ctx, quick, "fig14", DataSource::Airbnb, &[3, 4, 5, 6]),
        "fig15" => {
            grid_executors_by_dims(ctx, quick, "fig15", DataSource::StoreSales5, &[3, 4, 5, 6])
        }
        "fig16" => musicbrainz_dims_grid(ctx, quick, "fig16", Metric::Time),
        "fig17" => musicbrainz_dims_grid(ctx, quick, "fig17", Metric::Memory),
        "fig18" => musicbrainz_executors_grid(ctx, quick, "fig18", Metric::Time),
        "fig19" => musicbrainz_executors_grid(ctx, quick, "fig19", Metric::Memory),
        "ext1" => ext1_partitioning_schemes(ctx, quick),
        "ext2" => ext2_hierarchical_merge(ctx, quick),
        "ext3" => ext3_vectorized_dominance(quick),
        "ext4" => ext4_streaming_execution(quick),
        "ext5" => ext5_adaptive_planning(quick),
        "ext6" => ext6_incomplete_merge(quick),
        "ext7" => ext7_simd_kernel(quick),
        "ext8" => ext8_chaos(quick),
        "ext9" => ext9_storage(quick),
        "ext10" => ext10_server(quick),
        "ext11" => ext11_mutation(quick),
        other => panic!("unknown experiment '{other}'; known: {:?}", all_ids()),
    }
}

/// The algorithm series of a complete-data chart (§6.3: all four) or an
/// incomplete-data chart (the two applicable ones).
fn algorithms(variant: Variant) -> Vec<Algorithm> {
    match variant {
        Variant::Complete => Algorithm::paper_algorithms().to_vec(),
        Variant::Incomplete => Algorithm::incomplete_algorithms().to_vec(),
    }
}

/// Run a set of x-axis points for every algorithm.
///
/// `skip_after_timeout` is used for monotonically growing workloads
/// (input-size sweeps): once a series times out, larger points are marked
/// "t.o." without burning the full timeout again.
fn run_series(
    ctx: &EvalContext,
    algs: &[Algorithm],
    executors: usize,
    points: &[(String, String)],
    metric: Metric,
    skip_after_timeout: bool,
) -> Vec<(String, Vec<Cell>)> {
    let mut series = Vec::new();
    for &alg in algs {
        let mut cells = Vec::with_capacity(points.len());
        let mut skipping = false;
        for (x, sql) in points {
            if skipping {
                cells.push(Cell::Timeout);
                continue;
            }
            eprint!("    [{:<24}] x={x} ... ", alg.label());
            let m = ctx
                .run(sql, alg, executors)
                .unwrap_or_else(|e| panic!("query failed ({sql}): {e}"));
            if m.timed_out() {
                eprintln!("t.o.");
                skipping = skip_after_timeout;
                cells.push(Cell::Timeout);
            } else {
                let fallbacks = if m.sfs_fallbacks > 0 {
                    format!(", {} sfs fallbacks", m.sfs_fallbacks)
                } else {
                    String::new()
                };
                eprintln!(
                    "{:.3}s ({} rows, {} batched / {} scalar tests{fallbacks}, \
                     {} batches, peak {} rows in flight)",
                    m.secs.unwrap_or_default(),
                    m.rows,
                    m.batched_tests,
                    m.scalar_tests,
                    m.batches_emitted,
                    m.peak_rows_in_flight,
                );
                cells.push(Cell::from_measurement(&m, metric));
            }
        }
        series.push((alg.label().to_string(), cells));
    }
    series
}

fn dims_list(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 3, 6]
    } else {
        vec![1, 2, 3, 4, 5, 6]
    }
}

fn executors_list(ctx: &EvalContext, quick: bool) -> Vec<usize> {
    if quick {
        vec![2, 5]
    } else {
        ctx.settings().executors.clone()
    }
}

/// Which dataset a grid experiment runs on.
enum DataSource {
    Airbnb,
    StoreSales5,
}

impl DataSource {
    fn prepare(&self, ctx: &mut EvalContext, variant: Variant) -> (String, usize) {
        match self {
            DataSource::Airbnb => ctx.airbnb(variant),
            DataSource::StoreSales5 => {
                let size = ctx.settings().store_sales_sizes()[2];
                ctx.store_sales(size, variant)
            }
        }
    }

    fn dims(&self) -> &'static [(&'static str, &'static str)] {
        match self {
            DataSource::Airbnb => &airbnb::SKYLINE_DIMS,
            DataSource::StoreSales5 => &store_sales::SKYLINE_DIMS,
        }
    }
}

fn dim_query(table: &str, dims: &[(&str, &str)], d: usize, variant: Variant) -> String {
    skyline_query_for(table, dims, d, variant == Variant::Complete)
}

// ---------------------------------------------------------------------
// Figure 3 / Tables 3–4: dimensions vs time, Airbnb, 5 executors.
// ---------------------------------------------------------------------
fn fig3(ctx: &mut EvalContext, quick: bool) -> Vec<Report> {
    let mut out = Vec::new();
    for variant in [Variant::Complete, Variant::Incomplete] {
        let (table, rows) = ctx.airbnb(variant);
        let points: Vec<(String, String)> = dims_list(quick)
            .iter()
            .map(|&d| {
                (
                    d.to_string(),
                    dim_query(&table, &airbnb::SKYLINE_DIMS, d, variant),
                )
            })
            .collect();
        let series = run_series(ctx, &algorithms(variant), 5, &points, Metric::Time, false);
        out.push(Report {
            id: "fig3".into(),
            title: format!(
                "Figure 3 / Table {}: dimensions vs. execution time \
                 (dataset: {table}, {rows} tuples, 5 executors)",
                if variant == Variant::Complete { 3 } else { 4 }
            ),
            x_label: "number of dimensions",
            x_values: points.into_iter().map(|(x, _)| x).collect(),
            series,
            metric: Metric::Time,
            with_relative: true,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Figure 4 / Tables 5–6: dimensions vs time, store_sales, 10 executors.
// Complete on the largest dataset; incomplete on the smallest (the paper
// uses a 10× smaller dataset there to avoid blanket timeouts).
// ---------------------------------------------------------------------
fn fig4(ctx: &mut EvalContext, quick: bool) -> Vec<Report> {
    let sizes = ctx.settings().store_sales_sizes();
    let mut out = Vec::new();
    for (variant, size, table_no) in [
        (Variant::Complete, sizes[3], 5),
        (Variant::Incomplete, sizes[0], 6),
    ] {
        let (table, rows) = ctx.store_sales(size, variant);
        let points: Vec<(String, String)> = dims_list(quick)
            .iter()
            .map(|&d| {
                (
                    d.to_string(),
                    dim_query(&table, &store_sales::SKYLINE_DIMS, d, variant),
                )
            })
            .collect();
        let series = run_series(ctx, &algorithms(variant), 10, &points, Metric::Time, false);
        out.push(Report {
            id: "fig4".into(),
            title: format!(
                "Figure 4 / Table {table_no}: dimensions vs. execution time \
                 (dataset: {table}, {rows} tuples, 10 executors)"
            ),
            x_label: "number of dimensions",
            x_values: points.into_iter().map(|(x, _)| x).collect(),
            series,
            metric: Metric::Time,
            with_relative: true,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Figure 5 / Tables 7–8: input tuples vs time, store_sales, 6 dims,
// 3 executors.
// ---------------------------------------------------------------------
fn fig5(ctx: &mut EvalContext, quick: bool) -> Vec<Report> {
    tuples_sweep(ctx, quick, "fig5", 3, Metric::Time, true, 7)
}

fn tuples_sweep(
    ctx: &mut EvalContext,
    quick: bool,
    id: &str,
    executors: usize,
    metric: Metric,
    with_relative: bool,
    first_table_no: usize,
) -> Vec<Report> {
    let sizes = ctx.settings().store_sales_sizes();
    let sizes = if quick { sizes[..2].to_vec() } else { sizes };
    let mut out = Vec::new();
    for (variant, table_no) in [
        (Variant::Complete, first_table_no),
        (Variant::Incomplete, first_table_no + 1),
    ] {
        let mut points = Vec::new();
        for &size in &sizes {
            let (table, rows) = ctx.store_sales(size, variant);
            points.push((
                rows.to_string(),
                dim_query(&table, &store_sales::SKYLINE_DIMS, 6, variant),
            ));
        }
        let series = run_series(ctx, &algorithms(variant), executors, &points, metric, true);
        let table_part = if with_relative {
            format!(" / Table {table_no}")
        } else {
            String::new()
        };
        out.push(Report {
            id: id.into(),
            title: format!(
                "{}{table_part}: input tuples vs. {} (store_sales{}, 6 dims, \
                 {executors} executors)",
                figure_name(id),
                metric_name(metric),
                variant.suffix(),
            ),
            x_label: "number of input tuples",
            x_values: points.into_iter().map(|(x, _)| x).collect(),
            series,
            metric,
            with_relative,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Figure 6 / Tables 9–10: executors vs time, Airbnb, 6 dims.
// ---------------------------------------------------------------------
fn fig6(ctx: &mut EvalContext, quick: bool) -> Vec<Report> {
    executors_sweep_airbnb(ctx, quick, "fig6", 6, Metric::Time, true, 9)
}

fn executors_sweep_airbnb(
    ctx: &mut EvalContext,
    quick: bool,
    id: &str,
    dims: usize,
    metric: Metric,
    with_relative: bool,
    first_table_no: usize,
) -> Vec<Report> {
    let executor_counts = executors_list(ctx, quick);
    let mut out = Vec::new();
    for (variant, table_no) in [
        (Variant::Complete, first_table_no),
        (Variant::Incomplete, first_table_no + 1),
    ] {
        let (table, rows) = ctx.airbnb(variant);
        let sql = dim_query(&table, &airbnb::SKYLINE_DIMS, dims, variant);
        let mut series: Vec<(String, Vec<Cell>)> = algorithms(variant)
            .iter()
            .map(|a| (a.label().to_string(), Vec::new()))
            .collect();
        for &e in &executor_counts {
            let points = vec![(e.to_string(), sql.clone())];
            let partial = run_series(ctx, &algorithms(variant), e, &points, metric, false);
            for ((_, cells), (_, new)) in series.iter_mut().zip(partial) {
                cells.extend(new);
            }
        }
        let table_part = if with_relative {
            format!(" / Table {table_no}")
        } else {
            String::new()
        };
        out.push(Report {
            id: id.into(),
            title: format!(
                "{}{table_part}: executors vs. {} (dataset: {table}, {rows} tuples, \
                 {dims} dims)",
                figure_name(id),
                metric_name(metric),
            ),
            x_label: "number of executors",
            x_values: executor_counts.iter().map(|e| e.to_string()).collect(),
            series,
            metric,
            with_relative,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Figure 7 / Tables 11–12: executors vs time, store_sales (complete on
// the 10^7-equivalent, incomplete on the 5·10^6-equivalent), 6 dims.
// ---------------------------------------------------------------------
fn fig7(ctx: &mut EvalContext, quick: bool) -> Vec<Report> {
    executors_sweep_store_sales(ctx, quick, "fig7", 6, Metric::Time, true, Some(11))
}

fn executors_sweep_store_sales(
    ctx: &mut EvalContext,
    quick: bool,
    id: &str,
    dims: usize,
    metric: Metric,
    with_relative: bool,
    first_table_no: Option<usize>,
) -> Vec<Report> {
    let sizes = ctx.settings().store_sales_sizes();
    let executor_counts = executors_list(ctx, quick);
    let mut out = Vec::new();
    for (variant, size, table_no) in [
        (Variant::Complete, sizes[3], first_table_no),
        (Variant::Incomplete, sizes[2], first_table_no.map(|t| t + 1)),
    ] {
        let (table, rows) = ctx.store_sales(size, variant);
        let sql = dim_query(&table, &store_sales::SKYLINE_DIMS, dims, variant);
        let mut series: Vec<(String, Vec<Cell>)> = algorithms(variant)
            .iter()
            .map(|a| (a.label().to_string(), Vec::new()))
            .collect();
        for &e in &executor_counts {
            let points = vec![(e.to_string(), sql.clone())];
            let partial = run_series(ctx, &algorithms(variant), e, &points, metric, false);
            for ((_, cells), (_, new)) in series.iter_mut().zip(partial) {
                cells.extend(new);
            }
        }
        let table_part = match table_no {
            Some(t) => format!(" / Table {t}"),
            None => String::new(),
        };
        out.push(Report {
            id: id.into(),
            title: format!(
                "{}{table_part}: executors vs. {} (dataset: {table}, {rows} tuples, \
                 {dims} dims)",
                figure_name(id),
                metric_name(metric),
            ),
            x_label: "number of executors",
            x_values: executor_counts.iter().map(|e| e.to_string()).collect(),
            series,
            metric,
            with_relative,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Figures 8–10 (Appendix C): memory.
// ---------------------------------------------------------------------
fn fig8(ctx: &mut EvalContext, quick: bool) -> Vec<Report> {
    executors_sweep_airbnb(ctx, quick, "fig8", 6, Metric::Memory, false, 0)
}

fn fig9(ctx: &mut EvalContext, quick: bool) -> Vec<Report> {
    // Paper's Figure 9 uses the 5·10^6-equivalent for both variants.
    let sizes = ctx.settings().store_sales_sizes();
    let executor_counts = executors_list(ctx, quick);
    let mut out = Vec::new();
    for variant in [Variant::Complete, Variant::Incomplete] {
        let (table, rows) = ctx.store_sales(sizes[2], variant);
        let sql = dim_query(&table, &store_sales::SKYLINE_DIMS, 6, variant);
        let mut series: Vec<(String, Vec<Cell>)> = algorithms(variant)
            .iter()
            .map(|a| (a.label().to_string(), Vec::new()))
            .collect();
        for &e in &executor_counts {
            let points = vec![(e.to_string(), sql.clone())];
            let partial = run_series(ctx, &algorithms(variant), e, &points, Metric::Memory, false);
            for ((_, cells), (_, new)) in series.iter_mut().zip(partial) {
                cells.extend(new);
            }
        }
        out.push(Report {
            id: "fig9".into(),
            title: format!(
                "Figure 9: executors vs. memory (dataset: {table}, {rows} tuples, 6 dims)"
            ),
            x_label: "number of executors",
            x_values: executor_counts.iter().map(|e| e.to_string()).collect(),
            series,
            metric: Metric::Memory,
            with_relative: false,
        });
    }
    out
}

fn fig10(ctx: &mut EvalContext, quick: bool) -> Vec<Report> {
    let executor_grid: &[usize] = if quick { &[3] } else { &[3, 5, 10] };
    let mut out = Vec::new();
    for &e in executor_grid {
        out.extend(tuples_sweep(
            ctx,
            quick,
            "fig10",
            e,
            Metric::Memory,
            false,
            0,
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Figures 11/12 (Appendix C): dims vs time grids over executor counts.
// ---------------------------------------------------------------------
fn grid_dims_by_executors(
    ctx: &mut EvalContext,
    quick: bool,
    id: &str,
    source: DataSource,
) -> Vec<Report> {
    let executor_grid: Vec<usize> = if quick { vec![2, 5] } else { vec![2, 3, 5, 10] };
    let mut out = Vec::new();
    for &e in &executor_grid {
        for variant in [Variant::Complete, Variant::Incomplete] {
            let (table, rows) = source.prepare(ctx, variant);
            let points: Vec<(String, String)> = dims_list(quick)
                .iter()
                .map(|&d| (d.to_string(), dim_query(&table, source.dims(), d, variant)))
                .collect();
            let series = run_series(ctx, &algorithms(variant), e, &points, Metric::Time, false);
            out.push(Report {
                id: id.into(),
                title: format!(
                    "{}: dimensions vs. time (dataset: {table}, {rows} tuples, \
                     {e} executors)",
                    figure_name(id)
                ),
                x_label: "number of dimensions",
                x_values: points.into_iter().map(|(x, _)| x).collect(),
                series,
                metric: Metric::Time,
                with_relative: false,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figure 13 (Appendix C): tuples vs time over executor counts.
// ---------------------------------------------------------------------
fn fig13(ctx: &mut EvalContext, quick: bool) -> Vec<Report> {
    let executor_grid: &[usize] = if quick { &[2] } else { &[2, 3, 5, 10] };
    let mut out = Vec::new();
    for &e in executor_grid {
        out.extend(tuples_sweep(ctx, quick, "fig13", e, Metric::Time, false, 0));
    }
    out
}

// ---------------------------------------------------------------------
// Figures 14/15 (Appendix C): executors vs time grids over dim counts.
// ---------------------------------------------------------------------
fn grid_executors_by_dims(
    ctx: &mut EvalContext,
    quick: bool,
    id: &str,
    source: DataSource,
    dim_grid: &[usize],
) -> Vec<Report> {
    let dim_grid: Vec<usize> = if quick {
        vec![dim_grid[0], *dim_grid.last().unwrap()]
    } else {
        dim_grid.to_vec()
    };
    let mut out = Vec::new();
    for &d in &dim_grid {
        match source {
            DataSource::Airbnb => {
                out.extend(executors_sweep_airbnb(
                    ctx,
                    quick,
                    id,
                    d,
                    Metric::Time,
                    false,
                    0,
                ));
            }
            DataSource::StoreSales5 => {
                // Figure 15 runs on the 5·10^6-equivalent dataset for both
                // variants.
                let sizes = ctx.settings().store_sales_sizes();
                let executor_counts = executors_list(ctx, quick);
                for variant in [Variant::Complete, Variant::Incomplete] {
                    let (table, rows) = ctx.store_sales(sizes[2], variant);
                    let sql = dim_query(&table, &store_sales::SKYLINE_DIMS, d, variant);
                    let mut series: Vec<(String, Vec<Cell>)> = algorithms(variant)
                        .iter()
                        .map(|a| (a.label().to_string(), Vec::new()))
                        .collect();
                    for &e in &executor_counts {
                        let points = vec![(e.to_string(), sql.clone())];
                        let partial =
                            run_series(ctx, &algorithms(variant), e, &points, Metric::Time, false);
                        for ((_, cells), (_, new)) in series.iter_mut().zip(partial) {
                            cells.extend(new);
                        }
                    }
                    out.push(Report {
                        id: id.into(),
                        title: format!(
                            "{}: executors vs. time (dataset: {table}, {rows} tuples, \
                             {d} dims)",
                            figure_name(id)
                        ),
                        x_label: "number of executors",
                        x_values: executor_counts.iter().map(|e| e.to_string()).collect(),
                        series,
                        metric: Metric::Time,
                        with_relative: false,
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figures 16–19 (Appendix E): MusicBrainz complex queries.
// ---------------------------------------------------------------------
fn musicbrainz_dims_grid(
    ctx: &mut EvalContext,
    quick: bool,
    id: &str,
    metric: Metric,
) -> Vec<Report> {
    let executor_grid = executors_list(ctx, quick);
    let mut out = Vec::new();
    for &e in &executor_grid {
        for variant in [Variant::Complete, Variant::Incomplete] {
            let (table, rows) = ctx.musicbrainz(variant);
            let points: Vec<(String, String)> = dims_list(quick)
                .iter()
                .map(|&d| (d.to_string(), musicbrainz::skyline_query(variant, d)))
                .collect();
            let series = run_series(ctx, &algorithms(variant), e, &points, metric, false);
            out.push(Report {
                id: id.into(),
                title: format!(
                    "{}: dimensions vs. {} using complex queries \
                     (dataset: {table}, {rows} recordings, {e} executors)",
                    figure_name(id),
                    metric_name(metric),
                ),
                x_label: "number of dimensions",
                x_values: points.into_iter().map(|(x, _)| x).collect(),
                series,
                metric,
                with_relative: false,
            });
        }
    }
    out
}

fn musicbrainz_executors_grid(
    ctx: &mut EvalContext,
    quick: bool,
    id: &str,
    metric: Metric,
) -> Vec<Report> {
    let dim_grid = dims_list(quick);
    let executor_counts = executors_list(ctx, quick);
    let mut out = Vec::new();
    for &d in &dim_grid {
        for variant in [Variant::Complete, Variant::Incomplete] {
            let (table, rows) = ctx.musicbrainz(variant);
            let sql = musicbrainz::skyline_query(variant, d);
            let mut series: Vec<(String, Vec<Cell>)> = algorithms(variant)
                .iter()
                .map(|a| (a.label().to_string(), Vec::new()))
                .collect();
            for &e in &executor_counts {
                let points = vec![(e.to_string(), sql.clone())];
                let partial = run_series(ctx, &algorithms(variant), e, &points, metric, false);
                for ((_, cells), (_, new)) in series.iter_mut().zip(partial) {
                    cells.extend(new);
                }
            }
            out.push(Report {
                id: id.into(),
                title: format!(
                    "{}: executors vs. {} using complex queries \
                     (dataset: {table}, {rows} recordings, {d} dims)",
                    figure_name(id),
                    metric_name(metric),
                ),
                x_label: "number of executors",
                x_values: executor_counts.iter().map(|e| e.to_string()).collect(),
                series,
                metric,
                with_relative: false,
            });
        }
    }
    out
}

/// ext5: statistics-driven adaptive planning vs every fixed partitioning
/// scheme, per Börzsönyi distribution. Also writes the machine-readable
/// `BENCH_PR4.json` (adaptive vs best/worst fixed wall clock, the chosen
/// scheme, and the rows the representative pre-filter discarded) so the
/// adaptive trajectory is tracked from PR 4 on; set `BENCH_PR4_OUT` to
/// redirect the file.
fn ext5_adaptive_planning(quick: bool) -> Vec<Report> {
    let path = std::env::var("BENCH_PR4_OUT").unwrap_or_else(|_| "BENCH_PR4.json".to_string());
    let bench = crate::adaptive_bench::write_bench_pr4(&path, quick)
        .unwrap_or_else(|e| panic!("ext5: cannot write {path}: {e}"));
    eprintln!("    wrote {path}");
    for s in &bench.summaries {
        eprintln!(
            "    [{:<15}] chose {} ({:.3}s; fixed field {:.3}s..{:.3}s), \
             pre-filter dropped {} rows",
            s.distribution,
            s.chosen,
            s.adaptive_secs,
            s.best_fixed_secs,
            s.worst_fixed_secs,
            s.prefilter_rows_dropped,
        );
    }
    let distributions: Vec<&'static str> = bench.summaries.iter().map(|s| s.distribution).collect();
    let series: Vec<(String, Vec<Cell>)> = vec![
        (
            "adaptive".to_string(),
            bench
                .summaries
                .iter()
                .map(|s| Cell::Value(s.adaptive_secs))
                .collect(),
        ),
        (
            "best fixed".to_string(),
            bench
                .summaries
                .iter()
                .map(|s| Cell::Value(s.best_fixed_secs))
                .collect(),
        ),
        (
            "worst fixed".to_string(),
            bench
                .summaries
                .iter()
                .map(|s| Cell::Value(s.worst_fixed_secs))
                .collect(),
        ),
    ];
    let rows = bench.cells.first().map(|c| c.rows).unwrap_or(0);
    vec![Report {
        id: "ext5".into(),
        title: format!(
            "Extension 5: adaptive vs fixed skyline planning ({rows} rows, 3 dims; \
             see BENCH_PR4.json)"
        ),
        x_label: "distribution",
        x_values: distributions.iter().map(|d| d.to_string()).collect(),
        series,
        metric: Metric::Time,
        with_relative: false,
    }]
}

/// ext6: the paper's flat single-executor incomplete global phase vs the
/// bitmap-class-aware hierarchical merge (PR 5), per NULL-bearing
/// Börzsönyi distribution. Also writes the machine-readable
/// `BENCH_PR5.json` (flat vs tree wall clock, the shared
/// `deferred_deletions` count, and the classes the tree combined); set
/// `BENCH_PR5_OUT` to redirect the file.
fn ext6_incomplete_merge(quick: bool) -> Vec<Report> {
    let path = std::env::var("BENCH_PR5_OUT").unwrap_or_else(|_| "BENCH_PR5.json".to_string());
    let bench = crate::incomplete_bench::write_bench_pr5(&path, quick)
        .unwrap_or_else(|e| panic!("ext6: cannot write {path}: {e}"));
    eprintln!("    wrote {path}");
    for s in &bench.summaries {
        eprintln!(
            "    [{:<15}] flat {:.3}s vs tree {:.3}s ({:.2}x), \
             {} deferred deletions over {} bitmap classes",
            s.distribution,
            s.flat_secs,
            s.tree_secs,
            s.flat_secs / s.tree_secs.max(1e-9),
            s.deferred_deletions,
            s.classes_merged,
        );
    }
    let distributions: Vec<&'static str> = bench.summaries.iter().map(|s| s.distribution).collect();
    let series: Vec<(String, Vec<Cell>)> = vec![
        (
            "flat (paper)".to_string(),
            bench
                .summaries
                .iter()
                .map(|s| Cell::Value(s.flat_secs))
                .collect(),
        ),
        (
            "hierarchical".to_string(),
            bench
                .summaries
                .iter()
                .map(|s| Cell::Value(s.tree_secs))
                .collect(),
        ),
    ];
    let rows = bench.cells.first().map(|c| c.rows).unwrap_or(0);
    vec![Report {
        id: "ext6".into(),
        title: format!(
            "Extension 6: flat vs hierarchical incomplete global merge ({rows} rows, \
             3 dims, 30% NULLs; see BENCH_PR5.json)"
        ),
        x_label: "distribution",
        x_values: distributions.iter().map(|d| d.to_string()).collect(),
        series,
        metric: Metric::Time,
        with_relative: false,
    }]
}

/// ext7: the explicit-SIMD multi-candidate dominance kernel (PR 6) vs
/// the PR 2 chunked kernel and the scalar checker, per dimension count on
/// the anti-correlated local phase. Also writes the machine-readable
/// `BENCH_PR6.json` (the full knob × admission-mode grid, the headline
/// speedup per dimension count, and the `CANDIDATE_FIRST_CHUNK` tuning
/// curve); set `BENCH_PR6_OUT` to redirect the file.
fn ext7_simd_kernel(quick: bool) -> Vec<Report> {
    let path = std::env::var("BENCH_PR6_OUT").unwrap_or_else(|_| "BENCH_PR6.json".to_string());
    let bench = crate::kernel_bench::write_bench_pr6(&path, quick)
        .unwrap_or_else(|e| panic!("ext7: cannot write {path}: {e}"));
    eprintln!("    wrote {path} (simd tier: {})", bench.simd_tier);
    for (dims, ratio) in &bench.speedups {
        eprintln!("    [{dims} dims] simd multi-candidate is {ratio:.2}x the PR 2 chunked kernel");
    }
    let dims_list: Vec<usize> = bench.speedups.iter().map(|(d, _)| *d).collect();
    let series_for = |kernel: &str, mode: &str| -> Vec<Cell> {
        dims_list
            .iter()
            .map(|&d| {
                bench
                    .cells
                    .iter()
                    .find(|c| c.kernel == kernel && c.mode == mode && c.dims == d)
                    .map(|c| Cell::Value(c.ns_per_test))
                    .unwrap_or(Cell::NotApplicable)
            })
            .collect()
    };
    let series: Vec<(String, Vec<Cell>)> = vec![
        (
            "scalar ×1".to_string(),
            series_for("scalar", "one_candidate"),
        ),
        (
            "chunked ×1 (PR 2)".to_string(),
            series_for("chunked", "one_candidate"),
        ),
        (
            format!("{} ×{}", bench.simd_tier, sparkline_skyline::MULTI_LANES),
            series_for("simd", "multi_candidate"),
        ),
    ];
    let rows = bench.cells.first().map(|c| c.rows).unwrap_or(0);
    vec![Report {
        id: "ext7".into(),
        title: format!(
            "Extension 7: dominance kernel ns/test by tier and admission width \
             ({rows} rows, anti-correlated; see BENCH_PR6.json)"
        ),
        x_label: "dimensions",
        x_values: dims_list.iter().map(|d| d.to_string()).collect(),
        series,
        metric: Metric::Time,
        with_relative: false,
    }]
}

/// ext8: the fault-tolerant runtime (PR 7) under chaos — retry overhead
/// of the lineage-based partition recovery at injected fault rates
/// 0 / 1% / 5% (retried results are asserted byte-identical to the
/// fault-free run), plus the budget sweep showing degradation-vs-failure
/// under tight memory budgets. Also writes the machine-readable
/// `BENCH_PR7.json`; set `BENCH_PR7_OUT` to redirect the file.
fn ext8_chaos(quick: bool) -> Vec<Report> {
    let path = std::env::var("BENCH_PR7_OUT").unwrap_or_else(|_| "BENCH_PR7.json".to_string());
    let bench = crate::chaos_bench::write_bench_pr7(&path, quick)
        .unwrap_or_else(|e| panic!("ext8: cannot write {path}: {e}"));
    eprintln!("    wrote {path}");
    for (distribution, rate, ratio) in &bench.retry_overheads {
        eprintln!(
            "    [{distribution} @ {:.0}% faults] retried run is {ratio:.2}x the fault-free run",
            rate * 100.0
        );
    }
    for c in &bench.budget_cells {
        eprintln!(
            "    [budget {}] outcome {} (degraded_paths {}, budget_denials {})",
            c.budget, c.outcome, c.degraded_paths, c.budget_denials
        );
    }
    let distributions = ["correlated", "independent", "anti_correlated"];
    let series: Vec<(String, Vec<Cell>)> = distributions
        .iter()
        .map(|&distribution| {
            let cells = crate::chaos_bench::FAULT_RATES
                .iter()
                .map(|&rate| {
                    bench
                        .fault_cells
                        .iter()
                        .find(|c| c.distribution == distribution && c.fault_rate == rate)
                        .map(|c| Cell::Value(c.secs))
                        .unwrap_or(Cell::NotApplicable)
                })
                .collect();
            (distribution.to_string(), cells)
        })
        .collect();
    let rows = bench.fault_cells.first().map(|c| c.rows).unwrap_or(0);
    vec![Report {
        id: "ext8".into(),
        title: format!(
            "Extension 8: query wall clock by injected fault rate, retries \
             enabled ({rows} rows; see BENCH_PR7.json for the retry \
             counters and the memory-budget degradation sweep)"
        ),
        x_label: "fault rate",
        x_values: crate::chaos_bench::FAULT_RATES
            .iter()
            .map(|r| format!("{:.0}%", r * 100.0))
            .collect(),
        series,
        metric: Metric::Time,
        with_relative: false,
    }]
}

/// ext9: out-of-core columnar storage (PR 8) — disk-scan wall clock per
/// distribution with block skipping off / min-max / min-max + dominance,
/// the block and byte counters showing where the speedup comes from, and
/// the out-of-core cell (a query over a file ~8× the memory budget that
/// must complete by streaming one block at a time). Also writes the
/// machine-readable `BENCH_PR8.json`; set `BENCH_PR8_OUT` to redirect
/// the file.
fn ext9_storage(quick: bool) -> Vec<Report> {
    let path = std::env::var("BENCH_PR8_OUT").unwrap_or_else(|_| "BENCH_PR8.json".to_string());
    let bench = crate::storage_bench::write_bench_pr8(&path, quick)
        .unwrap_or_else(|e| panic!("ext9: cannot write {path}: {e}"));
    eprintln!("    wrote {path}");
    for c in &bench.scan_cells {
        eprintln!(
            "    [{} / {}] {:.0} rows/s (blocks: {} read, {} skipped min/max, \
             {} skipped dominance; {} bytes decoded)",
            c.distribution,
            c.mode,
            c.rows_per_sec,
            c.blocks_read,
            c.blocks_skipped_minmax,
            c.blocks_skipped_dominance,
            c.bytes_decoded
        );
    }
    let o = &bench.out_of_core;
    eprintln!(
        "    [out-of-core] {} result rows from a {} B file under a {} B budget \
         ({} budget denials)",
        o.result_rows, o.file_bytes, o.memory_budget, o.budget_denials
    );
    let distributions = ["correlated", "independent", "anti_correlated"];
    let series: Vec<(String, Vec<Cell>)> = distributions
        .iter()
        .map(|&distribution| {
            let cells = crate::storage_bench::MODES
                .iter()
                .map(|&mode| {
                    bench
                        .scan_cells
                        .iter()
                        .find(|c| c.distribution == distribution && c.mode == mode)
                        .map(|c| Cell::Value(c.secs))
                        .unwrap_or(Cell::NotApplicable)
                })
                .collect();
            (distribution.to_string(), cells)
        })
        .collect();
    let rows = bench.scan_cells.first().map(|c| c.rows).unwrap_or(0);
    vec![Report {
        id: "ext9".into(),
        title: format!(
            "Extension 9: filtered-skyline wall clock over a disk table by \
             block-skipping mode ({rows} rows; see BENCH_PR8.json for the \
             block/byte counters and the out-of-core budget cell)"
        ),
        x_label: "skipping",
        x_values: crate::storage_bench::MODES
            .iter()
            .map(|m| m.to_string())
            .collect(),
        series,
        metric: Metric::Time,
        with_relative: false,
    }]
}

fn ext10_server(quick: bool) -> Vec<Report> {
    let path = std::env::var("BENCH_PR9_OUT").unwrap_or_else(|_| "BENCH_PR9.json".to_string());
    let bench = crate::server_bench::write_bench_pr9(&path, quick)
        .unwrap_or_else(|e| panic!("ext10: cannot write {path}: {e}"));
    eprintln!("    wrote {path}");
    for c in &bench.concurrency_cells {
        eprintln!(
            "    [{} clients] {:.0} qps, p50 {:.2} ms, p99 {:.2} ms \
             (plan hits {:.0}%, result hits {:.0}%)",
            c.clients,
            c.qps,
            c.p50_ms,
            c.p99_ms,
            c.plan_hit_rate * 100.0,
            c.result_hit_rate * 100.0
        );
    }
    eprintln!(
        "    [cold vs hot] {:.2} ms cold, {:.3} ms hot ({:.0}x speedup); \
         byte-identical: {}",
        bench.cold_hot.cold_ms, bench.cold_hot.hot_ms, bench.cold_hot.speedup, bench.byte_identical
    );
    let latency = |f: fn(&crate::server_bench::ConcurrencyCell) -> f64| -> Vec<Cell> {
        bench
            .concurrency_cells
            .iter()
            .map(|c| Cell::Value(f(c) / 1e3))
            .collect()
    };
    vec![Report {
        id: "ext10".into(),
        title: format!(
            "Extension 10: multi-tenant query service latency by concurrent \
             clients ({} rows; see BENCH_PR9.json for throughput, cache hit \
             rates, and the cold-vs-hot result-cache cell)",
            bench.rows
        ),
        x_label: "clients",
        x_values: bench
            .concurrency_cells
            .iter()
            .map(|c| c.clients.to_string())
            .collect(),
        series: vec![
            ("p50 latency".to_string(), latency(|c| c.p50_ms)),
            ("p99 latency".to_string(), latency(|c| c.p99_ms)),
        ],
        metric: Metric::Time,
        with_relative: false,
    }]
}

fn ext11_mutation(quick: bool) -> Vec<Report> {
    let path = std::env::var("BENCH_PR10_OUT").unwrap_or_else(|_| "BENCH_PR10.json".to_string());
    let bench = crate::mutation_bench::write_bench_pr10(&path, quick)
        .unwrap_or_else(|e| panic!("ext11: cannot write {path}: {e}"));
    eprintln!("    wrote {path}");
    for c in &bench.cells {
        eprintln!(
            "    [{:.0}% mutated] delta {:.1} ms vs recompute {:.1} ms \
             ({:.0}x, {} rebuilds); served p50 {:.2} ms with views vs \
             {:.2} ms baseline ({}/{} cache hits)",
            c.fraction * 100.0,
            c.delta_ms,
            c.recompute_ms,
            c.speedup,
            c.rebuilds,
            c.served_views_ms,
            c.served_baseline_ms,
            c.served_view_hits,
            c.served_samples
        );
    }
    eprintln!(
        "    exact: {}; served byte-identical: {}",
        bench.exact, bench.served_identical
    );
    let series = |f: fn(&crate::mutation_bench::MutationCell) -> f64| -> Vec<Cell> {
        bench
            .cells
            .iter()
            .map(|c| Cell::Value(f(c) / 1e3))
            .collect()
    };
    vec![Report {
        id: "ext11".into(),
        title: format!(
            "Extension 11: incremental skyline maintenance vs recompute under \
             mutation workloads ({} rows; see BENCH_PR10.json for served \
             latency and rebuild counts)",
            bench.rows
        ),
        x_label: "mutation fraction",
        x_values: bench
            .cells
            .iter()
            .map(|c| format!("{:.0}%", c.fraction * 100.0))
            .collect(),
        series: vec![
            ("delta maintenance".to_string(), series(|c| c.delta_ms)),
            (
                "recompute per mutation".to_string(),
                series(|c| c.recompute_ms),
            ),
        ],
        metric: Metric::Time,
        with_relative: false,
    }]
}

fn figure_name(id: &str) -> String {
    format!("Figure {}", id.trim_start_matches("fig"))
}

fn metric_name(metric: Metric) -> &'static str {
    match metric {
        Metric::Time => "execution time",
        Metric::Memory => "memory consumption",
        Metric::Rows => "peak rows in flight",
    }
}

// ---------------------------------------------------------------------
// Extension experiments (beyond the paper): the pluggable partitioning
// subsystem and the hierarchical global merge.
// ---------------------------------------------------------------------

/// ext1: partitioning schemes vs dimensions on an anti-correlated dataset
/// (the workload where local pruning power matters most). One series per
/// scheme, all running the distributed complete algorithm.
fn ext1_partitioning_schemes(ctx: &mut EvalContext, quick: bool) -> Vec<Report> {
    use sparkline::{SessionConfig, SkylinePartitioning};
    let n = if quick { 2_000 } else { 10_000 };
    let max_dims = 3usize;
    let (table, _rows) = ctx.anti_correlated(n, max_dims);
    let dims_points: Vec<usize> = vec![2, 3];
    let schemes = [
        ("standard", SkylinePartitioning::Standard),
        ("even", SkylinePartitioning::Even),
        ("hash", SkylinePartitioning::Hash),
        ("angle", SkylinePartitioning::AngleBased),
        ("grid", SkylinePartitioning::Grid),
    ];
    let mut series = Vec::new();
    for (label, scheme) in schemes {
        let mut cells = Vec::new();
        for &d in &dims_points {
            let dim_list = (0..d)
                .map(|i| format!("d{i} MIN"))
                .collect::<Vec<_>>()
                .join(", ");
            let sql = format!("SELECT * FROM {table} SKYLINE OF COMPLETE {dim_list}");
            eprint!("    [{label:<10}] dims={d} ... ");
            let config = SessionConfig::default()
                .with_executors(5)
                .with_skyline_partitioning(scheme);
            let m = ctx
                .run_with_config(&sql, Algorithm::DistributedComplete, config)
                .unwrap_or_else(|e| panic!("ext1 failed ({sql}): {e}"));
            eprintln!("{:.3}s ({} rows)", m.secs.unwrap_or_default(), m.rows);
            cells.push(Cell::from_measurement(&m, Metric::Time));
        }
        series.push((label.to_string(), cells));
    }
    vec![Report {
        id: "ext1".into(),
        title: format!(
            "Extension 1: partitioning schemes, anti-correlated ({n} rows, 5 executors)"
        ),
        x_label: "dimensions",
        x_values: dims_points.iter().map(|d| d.to_string()).collect(),
        series,
        metric: Metric::Time,
        with_relative: false,
    }]
}

/// ext3: scalar vs columnar dominance kernel on the anti-correlated local
/// phase (`ext1`'s workload), one cell per dimension count. Also writes
/// the machine-readable `BENCH_PR2.json` (rows/s, tests/s, ns/test, the
/// scalar/columnar ratio) so the perf trajectory is tracked from PR 2 on;
/// set `BENCH_PR2_OUT` to redirect the file.
fn ext3_vectorized_dominance(quick: bool) -> Vec<Report> {
    let path = std::env::var("BENCH_PR2_OUT").unwrap_or_else(|_| "BENCH_PR2.json".to_string());
    let bench = crate::kernel_bench::write_bench_pr2(&path, quick)
        .unwrap_or_else(|e| panic!("ext3: cannot write {path}: {e}"));
    eprintln!("    wrote {path}");
    for (dims, ratio) in &bench.speedups {
        eprintln!("    [d={dims}] scalar/columnar ns-per-test ratio: {ratio:.2}x");
    }
    let dims: Vec<usize> = bench.speedups.iter().map(|(d, _)| *d).collect();
    let series: Vec<(String, Vec<Cell>)> = ["scalar", "columnar"]
        .iter()
        .map(|variant| {
            (
                variant.to_string(),
                dims.iter()
                    .map(|&d| {
                        bench
                            .cells
                            .iter()
                            .find(|c| c.variant == *variant && c.dims == d)
                            .map(|c| Cell::Value(c.secs))
                            .unwrap_or(Cell::NotApplicable)
                    })
                    .collect(),
            )
        })
        .collect();
    let rows = bench.cells.first().map(|c| c.rows).unwrap_or(0);
    vec![Report {
        id: "ext3".into(),
        title: format!(
            "Extension 3: scalar vs columnar dominance kernel, anti-correlated local \
             phase ({rows} rows; see BENCH_PR2.json)"
        ),
        x_label: "dimensions",
        x_values: dims.iter().map(|d| d.to_string()).collect(),
        series,
        metric: Metric::Time,
        with_relative: false,
    }]
}

/// ext2: flat vs hierarchical global merge over the executor count. The
/// hierarchical merge pays off once the gathered local skylines are large
/// enough that the single-executor global pass dominates the runtime.
fn ext2_hierarchical_merge(ctx: &mut EvalContext, quick: bool) -> Vec<Report> {
    use sparkline::SessionConfig;
    let n = if quick { 2_000 } else { 20_000 };
    let (table, _rows) = ctx.anti_correlated(n, 3);
    let sql = format!("SELECT * FROM {table} SKYLINE OF COMPLETE d0 MIN, d1 MIN, d2 MIN");
    let executor_counts: Vec<usize> = if quick { vec![2, 5] } else { vec![2, 5, 10] };
    type ConfigFor = Box<dyn Fn(usize) -> SessionConfig>;
    let variants: [(&str, ConfigFor); 2] = [
        (
            "flat merge",
            Box::new(|e| {
                SessionConfig::default()
                    .with_executors(e)
                    .with_hierarchical_merge_min_partitions(usize::MAX)
            }),
        ),
        (
            "hierarchical merge",
            Box::new(|e| {
                SessionConfig::default()
                    .with_executors(e)
                    .with_hierarchical_merge_min_partitions(2)
                    .with_merge_fan_in(2)
            }),
        ),
    ];
    let mut series = Vec::new();
    for (label, mk_config) in &variants {
        let mut cells = Vec::new();
        for &e in &executor_counts {
            eprint!("    [{label:<20}] executors={e} ... ");
            let m = ctx
                .run_with_config(&sql, Algorithm::DistributedComplete, mk_config(e))
                .unwrap_or_else(|err| panic!("ext2 failed ({sql}): {err}"));
            eprintln!("{:.3}s ({} rows)", m.secs.unwrap_or_default(), m.rows);
            cells.push(Cell::from_measurement(&m, Metric::Time));
        }
        series.push((label.to_string(), cells));
    }
    vec![Report {
        id: "ext2".into(),
        title: format!("Extension 2: flat vs hierarchical global merge ({n} rows)"),
        x_label: "executors",
        x_values: executor_counts.iter().map(|e| e.to_string()).collect(),
        series,
        metric: Metric::Time,
        with_relative: false,
    }]
}

/// ext4: pipelined stream model vs the materialized (seed) execution on
/// the scan → filter → skyline → limit pipeline, per Börzsönyi
/// distribution. Also writes the machine-readable `BENCH_PR3.json`
/// (peak rows in flight, batches, wall clock per mode) so the streaming
/// trajectory is tracked from PR 3 on; set `BENCH_PR3_OUT` to redirect
/// the file.
fn ext4_streaming_execution(quick: bool) -> Vec<Report> {
    let path = std::env::var("BENCH_PR3_OUT").unwrap_or_else(|_| "BENCH_PR3.json".to_string());
    let bench = crate::stream_bench::write_bench_pr3(&path, quick)
        .unwrap_or_else(|e| panic!("ext4: cannot write {path}: {e}"));
    eprintln!("    wrote {path}");
    for (distribution, ratio) in &bench.peak_ratios {
        eprintln!("    [{distribution}] materialized/streaming peak rows in flight: {ratio:.2}x");
    }
    let distributions: Vec<&'static str> = bench.peak_ratios.iter().map(|(d, _)| *d).collect();
    let series: Vec<(String, Vec<Cell>)> = ["streaming", "materialized"]
        .iter()
        .map(|mode| {
            (
                mode.to_string(),
                distributions
                    .iter()
                    .map(|&d| {
                        bench
                            .cells
                            .iter()
                            .find(|c| c.mode == *mode && c.distribution == d)
                            .map(|c| Cell::Value(c.peak_rows_in_flight as f64))
                            .unwrap_or(Cell::NotApplicable)
                    })
                    .collect(),
            )
        })
        .collect();
    let rows = bench.cells.first().map(|c| c.rows).unwrap_or(0);
    vec![Report {
        id: "ext4".into(),
        title: format!(
            "Extension 4: peak rows in flight, streaming vs materialized execution \
             (scan→filter→skyline→limit, {rows} rows; see BENCH_PR3.json)"
        ),
        x_label: "distribution",
        x_values: distributions.iter().map(|d| d.to_string()).collect(),
        series,
        metric: Metric::Rows,
        with_relative: false,
    }]
}
