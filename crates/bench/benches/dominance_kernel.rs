//! Scalar vs columnar (batched) dominance kernel micro-benchmark: one
//! candidate tested against a full window at d ∈ {2, 4, 8} dimensions and
//! window sizes {16, 256, 4096}. The columnar variant encodes the window
//! once and runs the chunked struct-of-arrays kernel; the scalar variant
//! loops the per-pair `DominanceChecker`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkline_common::{Row, SkylineDim, SkylineSpec, Value};
use sparkline_skyline::{ColumnarBlock, Dominance, DominanceChecker};
use std::hint::black_box;

fn rows(n: usize, dims: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Row::new(
                (0..dims)
                    .map(|_| Value::Float64(rng.gen_range(0.0..1000.0)))
                    .collect(),
            )
        })
        .collect()
}

fn spec(dims: usize) -> SkylineSpec {
    SkylineSpec::new((0..dims).map(SkylineDim::min).collect())
}

fn bench_candidate_vs_window(c: &mut Criterion) {
    for dims in [2usize, 4, 8] {
        let mut group = c.benchmark_group(format!("candidate_vs_window_d{dims}"));
        for window_size in [16usize, 256, 4096] {
            let window = rows(window_size, dims, 7);
            let candidates = rows(64, dims, 11);
            let checker = DominanceChecker::complete(spec(dims));

            group.bench_with_input(
                BenchmarkId::new("scalar", window_size),
                &window_size,
                |b, _| {
                    b.iter(|| {
                        let mut dominated = 0u32;
                        for cand in &candidates {
                            for row in &window {
                                if checker.compare(black_box(cand), black_box(row))
                                    == Dominance::DominatedBy
                                {
                                    dominated += 1;
                                }
                            }
                        }
                        dominated
                    })
                },
            );

            let mut block = ColumnarBlock::for_checker(&checker);
            for row in &window {
                block.push(row);
            }
            assert!(!block.is_fallback());
            group.bench_with_input(
                BenchmarkId::new("columnar", window_size),
                &window_size,
                |b, _| {
                    let mut out = Vec::with_capacity(window.len());
                    b.iter(|| {
                        let mut dominated = 0u32;
                        for cand in &candidates {
                            let enc = block.encode(black_box(cand)).expect("numeric candidate");
                            block.compare_batch(&enc, &mut out, false);
                            dominated +=
                                out.iter().filter(|&&o| o == Dominance::DominatedBy).count() as u32;
                        }
                        dominated
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_candidate_vs_window
);
criterion_main!(benches);
