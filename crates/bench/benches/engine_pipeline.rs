//! End-to-end engine benchmarks: parsing, planning, and the §5.4
//! optimizer-rule ablations (single-dimension rewrite and skyline-join
//! pushdown) that DESIGN.md calls out as design choices.

use criterion::{criterion_group, criterion_main, Criterion};
use sparkline::{Algorithm, SessionConfig, SessionContext};
use sparkline_datagen::{airbnb, register_airbnb, skyline_query_for, Variant};
use sparkline_parser::parse_query;
use std::hint::black_box;

fn session(rows: usize) -> SessionContext {
    let ctx = SessionContext::with_config(SessionConfig::default().with_executors(4));
    register_airbnb(&ctx, rows, 17, Variant::Complete).unwrap();
    ctx
}

fn bench_parser(c: &mut Criterion) {
    let sql = "SELECT price, user_rating FROM hotels AS o WHERE NOT EXISTS( \
               SELECT * FROM hotels AS i WHERE i.price <= o.price AND \
               i.user_rating >= o.user_rating AND (i.price < o.price OR \
               i.user_rating > o.user_rating)) ORDER BY price LIMIT 10";
    c.bench_function("parse_reference_query", |b| {
        b.iter(|| parse_query(black_box(sql)).unwrap())
    });
    let skyline = "SELECT * FROM hotels SKYLINE OF DISTINCT COMPLETE a MIN, \
                   b MAX, c DIFF, d MIN ORDER BY a";
    c.bench_function("parse_skyline_query", |b| {
        b.iter(|| parse_query(black_box(skyline)).unwrap())
    });
}

fn bench_planning(c: &mut Criterion) {
    let ctx = session(500);
    let sql = skyline_query_for("airbnb", &airbnb::SKYLINE_DIMS, 6, true);
    c.bench_function("analyze_optimize_plan", |b| {
        b.iter(|| ctx.sql(black_box(&sql)).unwrap().explain().unwrap())
    });
}

fn bench_integrated_vs_reference(c: &mut Criterion) {
    // The paper's headline result at micro scale.
    let ctx = session(2_000);
    let sql = skyline_query_for("airbnb", &airbnb::SKYLINE_DIMS, 4, true);
    let df = ctx.sql(&sql).unwrap();
    let mut group = c.benchmark_group("integrated_vs_reference");
    group.sample_size(10);
    group.bench_function("integrated", |b| {
        b.iter(|| {
            df.collect_with_algorithm(Algorithm::DistributedComplete)
                .unwrap()
        })
    });
    group.bench_function("reference", |b| {
        b.iter(|| df.collect_with_algorithm(Algorithm::Reference).unwrap())
    });
    group.finish();
}

fn bench_single_dim_rewrite_ablation(c: &mut Criterion) {
    // §5.4: O(n) MinMaxFilter vs the general skyline plan on one dimension.
    let base = session(20_000);
    let sql = skyline_query_for("airbnb", &airbnb::SKYLINE_DIMS, 1, true);
    let with_rule = base.with_shared_catalog(
        SessionConfig::default()
            .with_executors(4)
            .with_single_dim_rewrite(true),
    );
    let without_rule = base.with_shared_catalog(
        SessionConfig::default()
            .with_executors(4)
            .with_single_dim_rewrite(false),
    );
    let mut group = c.benchmark_group("single_dim_rewrite");
    group.sample_size(10);
    group.bench_function("enabled_minmax_scan", |b| {
        b.iter(|| with_rule.sql(&sql).unwrap().collect().unwrap())
    });
    group.bench_function("disabled_general_skyline", |b| {
        b.iter(|| without_rule.sql(&sql).unwrap().collect().unwrap())
    });
    group.finish();
}

fn bench_join_pushdown_ablation(c: &mut Criterion) {
    // §5.4: skyline below a non-reductive join vs above it.
    let mk = |pushdown: bool| {
        let ctx = SessionContext::with_config(
            SessionConfig::default()
                .with_executors(4)
                .with_skyline_join_pushdown(pushdown),
        );
        register_airbnb(&ctx, 4_000, 23, Variant::Complete).unwrap();
        // A 1:1 "amenities" side table; LEFT OUTER JOIN is non-reductive.
        let rows: Vec<sparkline::Row> = (0..4_000i64)
            .map(|i| sparkline::Row::new(vec![i.into(), ((i * 7) % 100).into()]))
            .collect();
        ctx.register_table(
            "amenities",
            sparkline::Schema::new(vec![
                sparkline::Field::new("listing_id", sparkline::DataType::Int64, false),
                sparkline::Field::new("score", sparkline::DataType::Int64, false),
            ]),
            rows,
        )
        .unwrap();
        ctx
    };
    let sql = "SELECT * FROM airbnb LEFT OUTER JOIN amenities \
               ON airbnb.id = amenities.listing_id \
               SKYLINE OF price MIN, accommodates MAX, beds MAX";
    let with_rule = mk(true);
    let without_rule = mk(false);
    let mut group = c.benchmark_group("skyline_join_pushdown");
    group.sample_size(10);
    group.bench_function("enabled_skyline_before_join", |b| {
        b.iter(|| with_rule.sql(sql).unwrap().collect().unwrap())
    });
    group.bench_function("disabled_skyline_after_join", |b| {
        b.iter(|| without_rule.sql(sql).unwrap().collect().unwrap())
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parser, bench_planning, bench_integrated_vs_reference,
              bench_single_dim_rewrite_ablation, bench_join_pushdown_ablation
);
criterion_main!(benches);
