//! Micro-benchmarks of the pure skyline algorithms: BNL vs the all-pairs
//! incomplete global phase, and the local-phase scaling that underlies the
//! paper's executor sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkline_common::{Row, SkylineDim, SkylineSpec, Value};
use sparkline_skyline::{
    bnl_skyline, incomplete_global_skyline, sfs_skyline, DominanceChecker, SkylineStats,
};

fn rows(n: usize, dims: usize, null_rate: f64, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Row::new(
                (0..dims)
                    .map(|_| {
                        if rng.gen_bool(null_rate) {
                            Value::Null
                        } else {
                            Value::Int64(rng.gen_range(0..10_000))
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

fn spec(dims: usize) -> SkylineSpec {
    SkylineSpec::new((0..dims).map(SkylineDim::min).collect())
}

fn bench_bnl_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("bnl_by_input_size");
    for n in [1_000usize, 4_000, 16_000] {
        let data = rows(n, 4, 0.0, 3);
        let checker = DominanceChecker::complete(spec(4));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let mut stats = SkylineStats::default();
                bnl_skyline(data.clone(), &checker, &mut stats)
            })
        });
    }
    group.finish();
}

fn bench_bnl_vs_all_pairs(c: &mut Criterion) {
    // The §5.7 trade-off: the all-pairs flagged global phase is safe for
    // incomplete data but much slower than the windowed BNL.
    let mut group = c.benchmark_group("global_phase");
    let data = rows(2_000, 4, 0.0, 5);
    let complete = DominanceChecker::complete(spec(4));
    let incomplete = DominanceChecker::incomplete(spec(4));
    group.bench_function("bnl_window", |b| {
        b.iter(|| {
            let mut stats = SkylineStats::default();
            bnl_skyline(data.clone(), &complete, &mut stats)
        })
    });
    group.bench_function("all_pairs_flagged", |b| {
        b.iter(|| {
            let mut stats = SkylineStats::default();
            incomplete_global_skyline(data.clone(), &incomplete, &mut stats)
        })
    });
    group.finish();
}

fn bench_dimension_effect(c: &mut Criterion) {
    // Figure 3's mechanism: more dimensions → bigger windows → more tests.
    let mut group = c.benchmark_group("bnl_by_dims");
    for dims in [1usize, 2, 4, 6] {
        let data = rows(4_000, 6, 0.0, 7);
        let checker = DominanceChecker::complete(spec(dims));
        group.bench_with_input(BenchmarkId::from_parameter(dims), &data, |b, data| {
            b.iter(|| {
                let mut stats = SkylineStats::default();
                bnl_skyline(data.clone(), &checker, &mut stats)
            })
        });
    }
    group.finish();
}

fn bench_local_phase_partitions(c: &mut Criterion) {
    // Partitioned local skylines (sequential here; the engine parallelizes
    // across executors): more partitions → less pruning per partition.
    let mut group = c.benchmark_group("local_phase_by_partitions");
    let data = rows(8_000, 4, 0.0, 9);
    let checker = DominanceChecker::complete(spec(4));
    for parts in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(parts), &parts, |b, &parts| {
            b.iter(|| {
                let chunk = data.len().div_ceil(parts);
                let mut locals = Vec::new();
                let mut stats = SkylineStats::default();
                for piece in data.chunks(chunk) {
                    locals.extend(bnl_skyline(piece.to_vec(), &checker, &mut stats));
                }
                bnl_skyline(locals, &checker, &mut stats)
            })
        });
    }
    group.finish();
}

fn bench_bnl_vs_sfs(c: &mut Criterion) {
    // The §7 future-work extension: presorting vs the BNL window.
    let mut group = c.benchmark_group("bnl_vs_sfs");
    for dims in [2usize, 6] {
        let data = rows(8_000, 6, 0.0, 21);
        let checker = DominanceChecker::complete(spec(dims));
        group.bench_function(format!("bnl_{dims}d"), |b| {
            b.iter(|| {
                let mut stats = SkylineStats::default();
                bnl_skyline(data.clone(), &checker, &mut stats)
            })
        });
        group.bench_function(format!("sfs_{dims}d"), |b| {
            b.iter(|| {
                let mut stats = SkylineStats::default();
                sfs_skyline(data.clone(), &checker, &mut stats)
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bnl_scaling, bench_bnl_vs_all_pairs, bench_dimension_effect,
              bench_local_phase_partitions, bench_bnl_vs_sfs
);
criterion_main!(benches);
