//! Micro-benchmarks for the dominance test — the paper's "main cost
//! factor of skyline computation" (§2) — across dimension counts, value
//! types, and the complete vs incomplete relation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparkline_common::{Row, SkylineDim, SkylineSpec, SkylineType, Value};
use sparkline_skyline::DominanceChecker;
use std::hint::black_box;

fn int_rows(n: usize, dims: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Row::new(
                (0..dims)
                    .map(|_| Value::Int64(rng.gen_range(0..1000)))
                    .collect(),
            )
        })
        .collect()
}

fn float_rows(n: usize, dims: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Row::new(
                (0..dims)
                    .map(|_| Value::Float64(rng.gen_range(0.0..1000.0)))
                    .collect(),
            )
        })
        .collect()
}

fn spec(dims: usize) -> SkylineSpec {
    SkylineSpec::new(
        (0..dims)
            .map(|i| {
                SkylineDim::new(
                    i,
                    if i % 2 == 0 {
                        SkylineType::Min
                    } else {
                        SkylineType::Max
                    },
                )
            })
            .collect(),
    )
}

fn bench_dominance_by_dims(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominance_check_by_dims");
    for dims in [2usize, 4, 6, 8] {
        let rows = int_rows(256, dims, 7);
        let checker = DominanceChecker::complete(spec(dims));
        group.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |b, _| {
            b.iter(|| {
                let mut count = 0u32;
                for i in 0..rows.len() - 1 {
                    if checker.dominates(black_box(&rows[i]), black_box(&rows[i + 1])) {
                        count += 1;
                    }
                }
                count
            })
        });
    }
    group.finish();
}

fn bench_dominance_types(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominance_check_by_type");
    let checker = DominanceChecker::complete(spec(4));
    for (name, rows) in [
        ("int64", int_rows(256, 4, 9)),
        ("float64", float_rows(256, 4, 9)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &rows, |b, rows| {
            b.iter(|| {
                let mut count = 0u32;
                for i in 0..rows.len() - 1 {
                    if checker.dominates(&rows[i], &rows[i + 1]) {
                        count += 1;
                    }
                }
                count
            })
        });
    }
    group.finish();
}

fn bench_complete_vs_incomplete_relation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominance_relation");
    let rows = int_rows(256, 4, 11);
    for (name, checker) in [
        ("complete", DominanceChecker::complete(spec(4))),
        ("incomplete", DominanceChecker::incomplete(spec(4))),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &checker, |b, ch| {
            b.iter(|| {
                let mut count = 0u32;
                for i in 0..rows.len() - 1 {
                    if ch.dominates(&rows[i], &rows[i + 1]) {
                        count += 1;
                    }
                }
                count
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dominance_by_dims, bench_dominance_types,
              bench_complete_vs_incomplete_relation
);
criterion_main!(benches);
