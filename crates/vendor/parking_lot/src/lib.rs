//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *API subset it actually uses*: [`Mutex`] / [`RwLock`] whose guard
//! accessors do not return `Result` (poisoning is absorbed by recovering
//! the inner guard, matching `parking_lot`'s no-poisoning semantics).

use std::sync::{self, TryLockError};

/// Guard type re-exported under `parking_lot`'s name.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
