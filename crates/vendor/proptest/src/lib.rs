//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros the workspace's property
//! tests use: range/`Just`/`prop_oneof!` strategies, `prop_map`, boxed
//! strategies, tuple strategies, `prop::collection::vec`, the `proptest!`
//! test macro, and `prop_assert*` / `prop_assume!`. Generation is seeded
//! deterministically per test (FNV of the test name), so failures
//! reproduce; there is **no shrinking** — the failing input is printed
//! as-is.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// `prop_assume!` rejected the input; the case is skipped.
    Reject,
}

/// Result type the generated test bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator driving strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (the test name).
    pub fn from_label(label: &str) -> Self {
        // FNV-1a over the label gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` below `n` (n > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A value generator. Unlike real proptest there is no shrinking: a
/// strategy is just a deterministic function of the [`TestRng`].
pub trait Strategy: 'static {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy {
            gen: std::rc::Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    gen: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T: fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Strategy producing a constant.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                let draw = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_u64() % (span + 1)
                };
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Weighted choice over boxed alternatives (backs `prop_oneof!`).
pub fn weighted_union<T: fmt::Debug + 'static>(
    arms: Vec<(u32, BoxedStrategy<T>)>,
) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    let total: u32 = arms.iter().map(|(w, _)| *w).sum();
    assert!(total > 0, "prop_oneof! weights must not all be zero");
    BoxedStrategy {
        gen: std::rc::Rc::new(move |rng| {
            let mut draw = (rng.next_u64() % total as u64) as u32;
            for (w, s) in &arms {
                if draw < *w {
                    return s.generate(rng);
                }
                draw -= w;
            }
            unreachable!("weight accounting")
        }),
    }
}

/// The `prop::` namespace of real proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Length specification: exact or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy for `Vec`s of values from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generate vectors with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.hi - self.size.lo <= 1 {
                    self.size.lo
                } else {
                    self.size.lo + rng.below(self.size.hi - self.size.lo)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Weighted / unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::weighted_union(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::weighted_union(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a property; failure reports the case instead of panicking
/// the whole harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right` ({})\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
}

/// Reject the current case (it is skipped, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The test-definition macro: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
            let mut ran: u32 = 0;
            let mut attempts: u32 = 0;
            while ran < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(20) {
                    panic!(
                        "proptest {}: too many rejected cases ({} accepted of {} attempts)",
                        stringify!($name), ran, attempts
                    );
                }
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let input_repr = {
                    let mut s = String::new();
                    $(s.push_str(&format!("\n    {} = {:?}", stringify!($arg), &$arg));)+
                    s
                };
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}\n  inputs:{}",
                            stringify!($name),
                            ran,
                            msg,
                            input_repr
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate() {
        let mut rng = TestRng::from_label("t");
        let s = (0i64..6).prop_map(|v| v * 2).boxed();
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..12).contains(&v));
        }
    }

    #[test]
    fn oneof_respects_arms() {
        let mut rng = TestRng::from_label("arms");
        let s = prop_oneof![3 => Just(1u8), 1 => Just(2u8)];
        let mut seen = [0usize; 3];
        for _ in 0..400 {
            seen[s.generate(&mut rng) as usize] += 1;
        }
        assert_eq!(seen[0], 0);
        assert!(seen[1] > seen[2]);
    }

    #[test]
    fn vec_sizes() {
        let mut rng = TestRng::from_label("vecs");
        let exact = prop::collection::vec(0i64..4, 3);
        assert_eq!(exact.generate(&mut rng).len(), 3);
        let ranged = prop::collection::vec(0i64..4, 0..5);
        for _ in 0..50 {
            assert!(ranged.generate(&mut rng).len() < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(v in prop::collection::vec(0i64..10, 0..8), cut in 0usize..8) {
            prop_assume!(cut <= v.len());
            let (a, b) = v.split_at(cut);
            prop_assert_eq!(a.len() + b.len(), v.len());
            prop_assert!(a.len() <= v.len());
        }
    }
}
