//! Offline stand-in for the `rand` crate.
//!
//! Implements the API subset the workspace uses — `StdRng::seed_from_u64`,
//! `gen_range` over integer/float ranges, and `gen_bool` — on top of a
//! SplitMix64/xoshiro256** generator. Statistical quality is more than
//! sufficient for seeded test-data generation; this is **not** a
//! cryptographic source.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Marker for types uniformly sampleable from a range. Mirrors
/// `rand::distributions::uniform::SampleUniform`; the bound is what lets
/// type inference pick the output type at mixed-arithmetic call sites.
pub trait SampleUniform {}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$( impl SampleUniform for $t {} )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

/// A range that knows how to sample a `T` uniformly.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Map 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                // Inclusive span; `hi - lo + 1` only overflows for the full
                // 64-bit domain, where any value is valid.
                let span = (hi as i128 - lo as i128) as u64;
                let draw = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_u64() % (span + 1)
                };
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 (the reference seeding procedure).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn split_mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    split_mix(&mut state),
                    split_mix(&mut state),
                    split_mix(&mut state),
                    split_mix(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&v));
            let u: usize = rng.gen_range(0..5);
            assert!(u < 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn uniform_int_is_roughly_flat() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0usize..8)] += 1;
        }
        assert!(
            buckets.iter().all(|&b| (800..1200).contains(&b)),
            "{buckets:?}"
        );
    }
}
