//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use: benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs a
//! short warm-up followed by `sample_size` timed samples and prints the
//! per-iteration mean and minimum — enough to compare variants locally;
//! there is no statistical analysis, plotting, or baseline storage.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a benchmark by its parameter value.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// Identify a benchmark by function name and parameter.
    pub fn new(function: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{param}"))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    best: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            total: Duration::ZERO,
            best: Duration::MAX,
            iters: 0,
        }
    }

    /// Run and time the routine `samples` times (plus one warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.best = self.best.min(elapsed);
            self.iters += 1;
        }
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label}: no samples");
            return;
        }
        let mean = self.total / self.iters as u32;
        println!(
            "{label}: mean {:>12.3?}  min {:>12.3?}  ({} samples)",
            mean, self.best, self.iters
        );
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&id.to_string());
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("== {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
        }
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Run a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a group-runner function over benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching `criterion::black_box` users.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, &n| {
            b.iter(|| (0..n).sum::<i32>())
        });
        g.finish();
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = target
    );

    #[test]
    fn harness_runs() {
        benches();
    }
}
