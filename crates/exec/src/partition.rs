//! Materialized partitions: the unit of distribution *at pipeline-breaker
//! stages* of the stream model.
//!
//! Since the pull-based refactor, operators no longer exchange
//! `Vec<Partition>` between every stage — they exchange
//! [`PartitionStream`](crate::stream::PartitionStream)s of row batches,
//! and a `Partition` (one `Vec<Row>`) only materializes where an
//! algorithm genuinely needs buffered rows: repartitioning exchanges,
//! sorts, aggregation tables, join build sides, and the skyline merge
//! phases. The helpers here implement the distribution schemes those
//! breaker stages need — even splitting (Spark's default when reading),
//! coalescing to a single partition (the `AllTuples` requirement of the
//! flat global skyline), and hash partitioning (the null-bitmap
//! distribution of the incomplete algorithm, §5.7) — plus the
//! flatten/drain adapters the tests and the bench harness use to compare
//! against the materialized model.

use sparkline_common::Row;

/// One partition of rows, processed by a single executor.
pub type Partition = Vec<Row>;

/// Split rows into `n` contiguous, evenly sized partitions.
///
/// Mirrors the paper's description: "if there are 10 executors available
/// for 10,000,000 tuples ... each executor will receive roughly 1 million
/// tuples each".
pub fn split_evenly(rows: Vec<Row>, n: usize) -> Vec<Partition> {
    let total = rows.len();
    if n == 1 || total == 0 {
        assert!(n >= 1, "at least one partition required");
        return vec![rows];
    }
    let mut parts: Vec<Partition> = Vec::with_capacity(n);
    let mut iter = rows.into_iter();
    for (start, end) in even_ranges(total, n) {
        let part: Partition = iter.by_ref().take(end - start).collect();
        parts.push(part);
    }
    parts
}

/// The `(start, end)` index ranges [`split_evenly`] cuts `total` rows
/// into — shared with the streaming scan so both models produce identical
/// partition boundaries. The remainder is spread one row at a time over
/// the leading ranges, so sizes differ by at most one and no partition is
/// left empty while another holds two or more rows (ceil-sized chunks
/// would emit empty *trailing* partitions, e.g. 4 rows / 3 executors as
/// [2, 2, 0], idling an executor).
pub fn even_ranges(total: usize, n: usize) -> Vec<(usize, usize)> {
    assert!(n >= 1, "at least one partition required");
    if n == 1 || total == 0 {
        return vec![(0, total)];
    }
    let (base, extra) = (total / n, total % n);
    let mut start = 0;
    (0..n)
        .map(|i| {
            let size = base + usize::from(i < extra);
            let range = (start, start + size);
            start += size;
            range
        })
        .collect()
}

/// Merge all partitions into a single one (Spark's `AllTuples`
/// distribution, required by the global skyline phase).
pub fn coalesce(parts: Vec<Partition>) -> Vec<Partition> {
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    for p in parts {
        merged.extend(p);
    }
    vec![merged]
}

/// Redistribute rows into `n` partitions by a key function; rows with the
/// same key always land in the same partition.
pub fn hash_partition<K: std::hash::Hash>(
    parts: Vec<Partition>,
    n: usize,
    key: impl Fn(&Row) -> K,
) -> Vec<Partition> {
    use std::hash::Hasher;
    assert!(n >= 1);
    let mut out: Vec<Partition> = (0..n).map(|_| Vec::new()).collect();
    for part in parts {
        for row in part {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            key(&row).hash(&mut hasher);
            let slot = (hasher.finish() % n as u64) as usize;
            out[slot].push(row);
        }
    }
    out
}

/// Total number of rows across partitions.
pub fn total_rows(parts: &[Partition]) -> usize {
    parts.iter().map(Vec::len).sum()
}

/// Flatten partitions into a single row vector (preserving partition
/// order), consuming the input.
pub fn flatten(parts: Vec<Partition>) -> Vec<Row> {
    let mut rows = Vec::with_capacity(total_rows(&parts));
    for p in parts {
        rows.extend(p);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::Value;

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| Row::new(vec![Value::Int64(i as i64)]))
            .collect()
    }

    #[test]
    fn split_sizes_are_even() {
        let parts = split_evenly(rows(10), 3);
        assert_eq!(parts.len(), 3);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn split_never_leaves_an_executor_idle() {
        // Regression: 4 rows / 3 executors used to come out as [2, 2, 0].
        let parts = split_evenly(rows(4), 3);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![2, 1, 1]);
        // Whenever there are at least as many rows as partitions, every
        // partition gets work.
        for (total, n) in [(5usize, 4usize), (7, 3), (9, 2), (3, 3), (100, 7)] {
            let parts = split_evenly(rows(total), n);
            assert_eq!(parts.len(), n);
            assert_eq!(total_rows(&parts), total);
            assert!(parts.iter().all(|p| !p.is_empty()), "{total}/{n}");
        }
    }

    #[test]
    fn split_single_partition() {
        let parts = split_evenly(rows(5), 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 5);
    }

    #[test]
    fn split_more_partitions_than_rows() {
        let parts = split_evenly(rows(2), 5);
        assert_eq!(parts.len(), 5);
        assert_eq!(total_rows(&parts), 2);
    }

    #[test]
    fn coalesce_merges_preserving_order() {
        let parts = split_evenly(rows(9), 3);
        let merged = coalesce(parts);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0], rows(9));
    }

    #[test]
    fn hash_partition_groups_same_keys() {
        let parts = split_evenly(rows(100), 4);
        let by_parity = hash_partition(parts, 3, |r| match r.get(0) {
            Value::Int64(i) => i % 2,
            _ => 0,
        });
        assert_eq!(by_parity.len(), 3);
        assert_eq!(total_rows(&by_parity), 100);
        // Each non-empty partition holds only one parity class or both
        // classes never split across partitions.
        for class in [0i64, 1] {
            let holding: Vec<usize> = by_parity
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    p.iter()
                        .any(|r| matches!(r.get(0), Value::Int64(i) if i % 2 == class))
                })
                .map(|(i, _)| i)
                .collect();
            assert_eq!(holding.len(), 1, "class {class} in one partition");
        }
    }

    #[test]
    fn flatten_round_trip() {
        let parts = split_evenly(rows(7), 2);
        assert_eq!(flatten(parts).len(), 7);
    }
}
