//! Execution metrics: row counts, dominance tests, exchange volume.
//!
//! The paper identifies dominance testing as "the main cost factor of
//! skyline computation" (§2); the harness reports these counters alongside
//! wall time so experiments can explain *why* an algorithm wins.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shared, thread-safe metric counters for one query execution.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    /// Rows read from base tables.
    pub rows_scanned: AtomicU64,
    /// Rows produced by the root operator.
    pub rows_output: AtomicU64,
    /// Pairwise dominance tests across all skyline operators.
    pub dominance_tests: AtomicU64,
    /// Largest skyline window / candidate set observed.
    pub max_window: AtomicUsize,
    /// Rows moved through exchanges (repartitioning volume).
    pub rows_exchanged: AtomicU64,
    /// Rows compared by join operators (probe work).
    pub join_comparisons: AtomicU64,
}

impl ExecMetrics {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to a counter.
    pub fn add_dominance_tests(&self, n: u64) {
        self.dominance_tests.fetch_add(n, Ordering::Relaxed);
    }

    /// Track the maximum window size.
    pub fn observe_window(&self, size: usize) {
        self.max_window.fetch_max(size, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            rows_output: self.rows_output.load(Ordering::Relaxed),
            dominance_tests: self.dominance_tests.load(Ordering::Relaxed),
            max_window: self.max_window.load(Ordering::Relaxed),
            rows_exchanged: self.rows_exchanged.load(Ordering::Relaxed),
            join_comparisons: self.join_comparisons.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ExecMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Rows read from base tables.
    pub rows_scanned: u64,
    /// Rows produced by the root operator.
    pub rows_output: u64,
    /// Pairwise dominance tests.
    pub dominance_tests: u64,
    /// Largest skyline window observed.
    pub max_window: usize,
    /// Rows moved through exchanges.
    pub rows_exchanged: u64,
    /// Join probe comparisons.
    pub join_comparisons: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ExecMetrics::new();
        m.add_dominance_tests(10);
        m.add_dominance_tests(5);
        m.observe_window(3);
        m.observe_window(2);
        m.rows_scanned.fetch_add(100, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.dominance_tests, 15);
        assert_eq!(s.max_window, 3);
        assert_eq!(s.rows_scanned, 100);
    }
}
