//! Execution metrics: row counts, dominance tests, exchange volume.
//!
//! The paper identifies dominance testing as "the main cost factor of
//! skyline computation" (§2); the harness reports these counters alongside
//! wall time so experiments can explain *why* an algorithm wins.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared, thread-safe metric counters for one query execution.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    /// Rows read from base tables.
    pub rows_scanned: AtomicU64,
    /// Batches yielded across all partition streams (every operator
    /// boundary counts its own batches — a proxy for pipeline work).
    pub batches_emitted: AtomicU64,
    /// Rows currently held by live batches and operator buffers.
    pub rows_in_flight: AtomicUsize,
    /// High-water mark of [`rows_in_flight`](Self::rows_in_flight) — the
    /// peak-memory story of the stream model, in rows.
    pub peak_rows_in_flight: AtomicUsize,
    /// Rows produced by the root operator.
    pub rows_output: AtomicU64,
    /// Pairwise dominance tests across all skyline operators.
    pub dominance_tests: AtomicU64,
    /// Dominance tests answered by the columnar batch kernel.
    pub batched_tests: AtomicU64,
    /// Dominance tests answered by the scalar checker (scalar operators,
    /// or per-tuple fallbacks of the columnar kernel).
    pub scalar_tests: AtomicU64,
    /// Dominance tests answered by an explicit-SIMD compare tier (a subset
    /// of `batched_tests`; 0 when the chunked tier or the scalar checker
    /// served every test).
    pub simd_tests: AtomicU64,
    /// Multi-candidate kernel passes: window walks amortized over a batch
    /// of candidates instead of one.
    pub multi_candidate_passes: AtomicU64,
    /// Times the SFS scan discarded its sort work and re-ran BNL because a
    /// row did not admit the monotone scoring function.
    pub sfs_fallbacks: AtomicU64,
    /// Largest skyline window / candidate set observed.
    pub max_window: AtomicUsize,
    /// Rows moved through exchanges (repartitioning volume).
    pub rows_exchanged: AtomicU64,
    /// Rows compared by join operators (probe work).
    pub join_comparisons: AtomicU64,
    /// Grid cells discarded because another cell's worst corner dominates
    /// their best corner (the whole cell is provably dominated).
    pub partitions_pruned: AtomicU64,
    /// Rows discarded with pruned grid cells — work the local skyline
    /// phase never sees.
    pub rows_pruned: AtomicU64,
    /// Corner-to-corner dominance tests performed by grid pruning.
    pub corner_tests: AtomicU64,
    /// Rounds of the hierarchical global merge (0 for the flat merge).
    pub merge_rounds: AtomicU64,
    /// Merge tasks executed across all hierarchical rounds.
    pub merge_tasks: AtomicU64,
    /// Largest number of merge tasks in a single round — the parallelism
    /// the tree merge actually exposed to the executor pool.
    pub max_merge_fanout: AtomicUsize,
    /// Rows discarded by the representative-point pre-filter before they
    /// reached any skyline window.
    pub prefilter_rows_dropped: AtomicU64,
    /// Tuples flagged as dominated during the incomplete global phase —
    /// the deferred deletions of §5.7: flagged tuples keep traveling as
    /// dominance witnesses (flat: until the final filter; hierarchical:
    /// with their partial result) and are removed only at the end. The
    /// flat and tree merges flag the same tuples, so this counter is
    /// plan-shape invariant — the bench harness records it as a structural
    /// check alongside wall clock.
    pub deferred_deletions: AtomicU64,
    /// Distinct null-bitmap classes consumed by the hierarchical
    /// incomplete merge (0 for the flat single-executor global phase).
    pub classes_merged: AtomicU64,
    /// Rows in the planner's reservoir sample (0 when no skyline operator
    /// was planned adaptively).
    pub sample_rows: AtomicU64,
    /// Local-phase partitioning scheme chosen by the planner, as a code
    /// (see [`partitioning_code`]); 0 = standard / inherited distribution.
    /// Aggregated with `max` so the value is deterministic when several
    /// custom exchanges run concurrently — for the (rare) query with
    /// multiple differently-partitioned skylines this is a summary of the
    /// schemes involved, not a per-operator attribution (the plan display
    /// names each exchange's scheme exactly).
    pub chosen_partitioning: AtomicU64,
    /// Transient faults fired by the deterministic injector
    /// (`fault_rate` > 0). The differential chaos suite asserts this is
    /// positive to prove the fault-free-identical results were earned.
    pub faults_injected: AtomicU64,
    /// Partition recomputations triggered by retryable failures.
    pub retries_attempted: AtomicU64,
    /// Reservations denied by the per-query memory budget.
    pub budget_denials: AtomicU64,
    /// Graceful-degradation steps the session took before this execution
    /// (streaming sinks, dropped pre-filter, shrunk batches).
    pub degraded_paths: AtomicU64,
    /// Storage blocks read and decoded by disk scans.
    pub blocks_read: AtomicU64,
    /// Storage blocks skipped by static min/max pruning of pushed-down
    /// filter conjuncts — never read from disk.
    pub blocks_skipped_minmax: AtomicU64,
    /// Storage blocks skipped because a representative pre-filter point
    /// dominates the block's best corner — never read from disk.
    pub blocks_skipped_dominance: AtomicU64,
    /// Encoded bytes actually read and decoded by disk scans (skipped
    /// blocks contribute nothing).
    pub bytes_decoded: AtomicU64,
}

/// Stable code for a partitioner name ([`crate::Partitioner::name`]);
/// `0` means the input distribution was inherited (`Standard`).
pub fn partitioning_code(name: &str) -> u64 {
    match name {
        "Even" => 1,
        "Hash" => 2,
        "AngleBased" => 3,
        "Grid" => 4,
        _ => 0,
    }
}

/// Human-readable label for a [`partitioning_code`] value.
pub fn partitioning_label(code: u64) -> &'static str {
    match code {
        1 => "even",
        2 => "hash",
        3 => "angle",
        4 => "grid",
        _ => "standard",
    }
}

impl ExecMetrics {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to a counter.
    pub fn add_dominance_tests(&self, n: u64) {
        self.dominance_tests.fetch_add(n, Ordering::Relaxed);
    }

    /// Attribute dominance tests to the columnar kernel vs the scalar
    /// checker (both also count toward `dominance_tests` via
    /// [`add_dominance_tests`](Self::add_dominance_tests)).
    pub fn add_dominance_breakdown(&self, batched: u64, scalar: u64) {
        self.batched_tests.fetch_add(batched, Ordering::Relaxed);
        self.scalar_tests.fetch_add(scalar, Ordering::Relaxed);
    }

    /// Attribute kernel work to the SIMD tier and count multi-candidate
    /// passes (`simd` is a subset of the `batched` count reported through
    /// [`add_dominance_breakdown`](Self::add_dominance_breakdown)).
    pub fn add_kernel_breakdown(&self, simd: u64, multi_passes: u64) {
        self.simd_tests.fetch_add(simd, Ordering::Relaxed);
        self.multi_candidate_passes
            .fetch_add(multi_passes, Ordering::Relaxed);
    }

    /// Record SFS sort-discarding fallbacks.
    pub fn add_sfs_fallbacks(&self, n: u64) {
        self.sfs_fallbacks.fetch_add(n, Ordering::Relaxed);
    }

    /// Track the maximum window size.
    pub fn observe_window(&self, size: usize) {
        self.max_window.fetch_max(size, Ordering::Relaxed);
    }

    /// Record a batch entering flight (yielded by a partition stream).
    pub fn begin_batch(&self, rows: usize) {
        self.batches_emitted.fetch_add(1, Ordering::Relaxed);
        self.add_rows_in_flight(rows);
    }

    /// Add buffered/in-transit rows to the in-flight gauge.
    pub fn add_rows_in_flight(&self, rows: usize) {
        let new = self.rows_in_flight.fetch_add(rows, Ordering::Relaxed) + rows;
        self.peak_rows_in_flight.fetch_max(new, Ordering::Relaxed);
    }

    /// Release in-flight rows (batch consumed / buffer dropped).
    pub fn sub_rows_in_flight(&self, rows: usize) {
        self.rows_in_flight.fetch_sub(rows, Ordering::Relaxed);
    }

    /// Record a pruned grid cell and the rows discarded with it.
    pub fn add_pruned_partition(&self, rows: u64) {
        self.partitions_pruned.fetch_add(1, Ordering::Relaxed);
        self.rows_pruned.fetch_add(rows, Ordering::Relaxed);
    }

    /// Record one round of the hierarchical merge with `tasks` tasks.
    pub fn add_merge_round(&self, tasks: usize) {
        self.merge_rounds.fetch_add(1, Ordering::Relaxed);
        self.merge_tasks.fetch_add(tasks as u64, Ordering::Relaxed);
        self.max_merge_fanout.fetch_max(tasks, Ordering::Relaxed);
    }

    /// Record rows discarded by the representative pre-filter.
    pub fn add_prefilter_dropped(&self, rows: u64) {
        self.prefilter_rows_dropped
            .fetch_add(rows, Ordering::Relaxed);
    }

    /// Record tuples flagged (deferred-deleted) by an incomplete global
    /// phase.
    pub fn add_deferred_deletions(&self, tuples: u64) {
        self.deferred_deletions.fetch_add(tuples, Ordering::Relaxed);
    }

    /// Record bitmap classes consumed by the hierarchical incomplete
    /// merge.
    pub fn add_classes_merged(&self, classes: u64) {
        self.classes_merged.fetch_add(classes, Ordering::Relaxed);
    }

    /// Record the planner's sample size (idempotent across partitions).
    pub fn note_sample_rows(&self, rows: u64) {
        self.sample_rows.fetch_max(rows, Ordering::Relaxed);
    }

    /// Record the partitioning scheme a custom exchange applied.
    pub fn note_partitioning(&self, name: &str) {
        self.chosen_partitioning
            .fetch_max(partitioning_code(name), Ordering::Relaxed);
    }

    /// Record one injected transient fault.
    pub fn add_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one partition retry (recomputation from source).
    pub fn add_retry_attempted(&self) {
        self.retries_attempted.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one memory-budget denial.
    pub fn add_budget_denial(&self) {
        self.budget_denials.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one graceful-degradation step.
    pub fn add_degraded_path(&self) {
        self.degraded_paths.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a storage block read and decoded (`bytes` encoded bytes).
    pub fn add_block_read(&self, bytes: u64) {
        self.blocks_read.fetch_add(1, Ordering::Relaxed);
        self.bytes_decoded.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a storage block skipped by min/max pruning.
    pub fn add_block_skipped_minmax(&self) {
        self.blocks_skipped_minmax.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a storage block skipped by dominance pruning.
    pub fn add_block_skipped_dominance(&self) {
        self.blocks_skipped_dominance
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Carry the resilience counters of an abandoned execution attempt
    /// (the session's degradation ladder re-executes with fresh metrics;
    /// faults fired and denials suffered on the way are part of the
    /// query's story and must survive into the final snapshot).
    pub fn absorb_resilience(&self, prior: &MetricsSnapshot) {
        self.faults_injected
            .fetch_add(prior.faults_injected, Ordering::Relaxed);
        self.retries_attempted
            .fetch_add(prior.retries_attempted, Ordering::Relaxed);
        self.budget_denials
            .fetch_add(prior.budget_denials, Ordering::Relaxed);
        self.degraded_paths
            .fetch_add(prior.degraded_paths, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            batches_emitted: self.batches_emitted.load(Ordering::Relaxed),
            peak_rows_in_flight: self.peak_rows_in_flight.load(Ordering::Relaxed),
            rows_output: self.rows_output.load(Ordering::Relaxed),
            dominance_tests: self.dominance_tests.load(Ordering::Relaxed),
            batched_tests: self.batched_tests.load(Ordering::Relaxed),
            scalar_tests: self.scalar_tests.load(Ordering::Relaxed),
            simd_tests: self.simd_tests.load(Ordering::Relaxed),
            multi_candidate_passes: self.multi_candidate_passes.load(Ordering::Relaxed),
            sfs_fallbacks: self.sfs_fallbacks.load(Ordering::Relaxed),
            max_window: self.max_window.load(Ordering::Relaxed),
            rows_exchanged: self.rows_exchanged.load(Ordering::Relaxed),
            join_comparisons: self.join_comparisons.load(Ordering::Relaxed),
            partitions_pruned: self.partitions_pruned.load(Ordering::Relaxed),
            rows_pruned: self.rows_pruned.load(Ordering::Relaxed),
            corner_tests: self.corner_tests.load(Ordering::Relaxed),
            merge_rounds: self.merge_rounds.load(Ordering::Relaxed),
            merge_tasks: self.merge_tasks.load(Ordering::Relaxed),
            max_merge_fanout: self.max_merge_fanout.load(Ordering::Relaxed),
            prefilter_rows_dropped: self.prefilter_rows_dropped.load(Ordering::Relaxed),
            deferred_deletions: self.deferred_deletions.load(Ordering::Relaxed),
            classes_merged: self.classes_merged.load(Ordering::Relaxed),
            sample_rows: self.sample_rows.load(Ordering::Relaxed),
            chosen_partitioning: self.chosen_partitioning.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            retries_attempted: self.retries_attempted.load(Ordering::Relaxed),
            budget_denials: self.budget_denials.load(Ordering::Relaxed),
            degraded_paths: self.degraded_paths.load(Ordering::Relaxed),
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
            blocks_skipped_minmax: self.blocks_skipped_minmax.load(Ordering::Relaxed),
            blocks_skipped_dominance: self.blocks_skipped_dominance.load(Ordering::Relaxed),
            bytes_decoded: self.bytes_decoded.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ExecMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Rows read from base tables.
    pub rows_scanned: u64,
    /// Batches yielded across all partition streams.
    pub batches_emitted: u64,
    /// Peak rows simultaneously held by batches and operator buffers.
    pub peak_rows_in_flight: usize,
    /// Rows produced by the root operator.
    pub rows_output: u64,
    /// Pairwise dominance tests.
    pub dominance_tests: u64,
    /// Dominance tests answered by the columnar batch kernel.
    pub batched_tests: u64,
    /// Dominance tests answered by the scalar checker.
    pub scalar_tests: u64,
    /// Dominance tests answered by an explicit-SIMD tier (subset of
    /// `batched_tests`).
    pub simd_tests: u64,
    /// Multi-candidate kernel passes.
    pub multi_candidate_passes: u64,
    /// SFS sort-discarding fallbacks.
    pub sfs_fallbacks: u64,
    /// Largest skyline window observed.
    pub max_window: usize,
    /// Rows moved through exchanges.
    pub rows_exchanged: u64,
    /// Join probe comparisons.
    pub join_comparisons: u64,
    /// Grid cells pruned before the local skyline phase.
    pub partitions_pruned: u64,
    /// Rows discarded with pruned cells.
    pub rows_pruned: u64,
    /// Corner dominance tests spent on pruning.
    pub corner_tests: u64,
    /// Hierarchical merge rounds.
    pub merge_rounds: u64,
    /// Total hierarchical merge tasks.
    pub merge_tasks: u64,
    /// Largest single-round merge parallelism.
    pub max_merge_fanout: usize,
    /// Rows discarded by the representative pre-filter.
    pub prefilter_rows_dropped: u64,
    /// Tuples flagged (deferred-deleted) by incomplete global phases.
    pub deferred_deletions: u64,
    /// Bitmap classes consumed by the hierarchical incomplete merge.
    pub classes_merged: u64,
    /// Rows in the planner's reservoir sample.
    pub sample_rows: u64,
    /// Chosen local-phase partitioning scheme (see [`partitioning_code`]).
    pub chosen_partitioning: u64,
    /// Transient faults fired by the deterministic injector.
    pub faults_injected: u64,
    /// Partition recomputations triggered by retryable failures.
    pub retries_attempted: u64,
    /// Reservations denied by the per-query memory budget.
    pub budget_denials: u64,
    /// Graceful-degradation steps taken by the session.
    pub degraded_paths: u64,
    /// Storage blocks read and decoded by disk scans.
    pub blocks_read: u64,
    /// Storage blocks skipped by static min/max pruning.
    pub blocks_skipped_minmax: u64,
    /// Storage blocks skipped by dominance pruning.
    pub blocks_skipped_dominance: u64,
    /// Encoded bytes read and decoded by disk scans.
    pub bytes_decoded: u64,
}

impl MetricsSnapshot {
    /// Label of the partitioning scheme the plan applied.
    pub fn chosen_partitioning_label(&self) -> &'static str {
        partitioning_label(self.chosen_partitioning)
    }
}

/// RAII gauge for rows buffered by a pipeline-breaker stage (sort buffers,
/// hash tables, skyline windows, materialized partitions): counts toward
/// `rows_in_flight` / `peak_rows_in_flight` until dropped.
#[derive(Debug)]
pub struct InFlightRows {
    metrics: Arc<ExecMetrics>,
    rows: usize,
}

impl InFlightRows {
    /// Register `rows` buffered rows.
    pub fn new(metrics: Arc<ExecMetrics>, rows: usize) -> Self {
        metrics.add_rows_in_flight(rows);
        InFlightRows { metrics, rows }
    }

    /// Adjust the gauge to a new buffer size (windows grow and shrink).
    pub fn set(&mut self, rows: usize) {
        if rows > self.rows {
            self.metrics.add_rows_in_flight(rows - self.rows);
        } else {
            self.metrics.sub_rows_in_flight(self.rows - rows);
        }
        self.rows = rows;
    }

    /// Rows currently registered by this guard.
    pub fn rows(&self) -> usize {
        self.rows
    }
}

impl Drop for InFlightRows {
    fn drop(&mut self) {
        self.metrics.sub_rows_in_flight(self.rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ExecMetrics::new();
        m.add_dominance_tests(10);
        m.add_dominance_tests(5);
        m.observe_window(3);
        m.observe_window(2);
        m.rows_scanned.fetch_add(100, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.dominance_tests, 15);
        assert_eq!(s.max_window, 3);
        assert_eq!(s.rows_scanned, 100);
    }

    #[test]
    fn dominance_breakdown_accumulates() {
        let m = ExecMetrics::new();
        m.add_dominance_tests(10);
        m.add_dominance_breakdown(7, 3);
        m.add_dominance_breakdown(1, 0);
        m.add_kernel_breakdown(5, 2);
        m.add_kernel_breakdown(0, 1);
        m.add_sfs_fallbacks(2);
        let s = m.snapshot();
        assert_eq!(s.batched_tests, 8);
        assert_eq!(s.scalar_tests, 3);
        assert_eq!(s.simd_tests, 5);
        assert_eq!(s.multi_candidate_passes, 3);
        assert_eq!(s.sfs_fallbacks, 2);
    }

    #[test]
    fn in_flight_gauge_tracks_peak() {
        let m = Arc::new(ExecMetrics::new());
        m.begin_batch(100);
        {
            let mut g = InFlightRows::new(Arc::clone(&m), 50);
            g.set(300);
            g.set(10);
        }
        m.sub_rows_in_flight(100);
        let s = m.snapshot();
        assert_eq!(s.batches_emitted, 1);
        assert_eq!(s.peak_rows_in_flight, 400);
        assert_eq!(m.rows_in_flight.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn prefilter_and_strategy_counters() {
        let m = ExecMetrics::new();
        m.add_prefilter_dropped(40);
        m.add_prefilter_dropped(2);
        m.add_deferred_deletions(5);
        m.add_deferred_deletions(2);
        m.add_classes_merged(3);
        m.note_sample_rows(128);
        m.note_sample_rows(128);
        m.note_partitioning("Grid");
        let s = m.snapshot();
        assert_eq!(s.prefilter_rows_dropped, 42);
        assert_eq!(s.deferred_deletions, 7);
        assert_eq!(s.classes_merged, 3);
        assert_eq!(s.sample_rows, 128);
        assert_eq!(s.chosen_partitioning, partitioning_code("Grid"));
        assert_eq!(s.chosen_partitioning_label(), "grid");
        assert_eq!(
            MetricsSnapshot::default().chosen_partitioning_label(),
            "standard"
        );
        for name in ["Even", "Hash", "AngleBased", "Grid"] {
            assert_ne!(
                partitioning_label(partitioning_code(name)),
                "standard",
                "{name}"
            );
        }
    }

    #[test]
    fn resilience_counters_accumulate_and_carry() {
        let m = ExecMetrics::new();
        m.add_fault_injected();
        m.add_fault_injected();
        m.add_retry_attempted();
        m.add_budget_denial();
        m.add_degraded_path();
        let s = m.snapshot();
        assert_eq!(s.faults_injected, 2);
        assert_eq!(s.retries_attempted, 1);
        assert_eq!(s.budget_denials, 1);
        assert_eq!(s.degraded_paths, 1);
        let next = ExecMetrics::new();
        next.absorb_resilience(&s);
        next.add_retry_attempted();
        let carried = next.snapshot();
        assert_eq!(carried.faults_injected, 2);
        assert_eq!(carried.retries_attempted, 2);
        assert_eq!(carried.degraded_paths, 1);
    }

    #[test]
    fn storage_counters_accumulate() {
        let m = ExecMetrics::new();
        m.add_block_read(4096);
        m.add_block_read(1024);
        m.add_block_skipped_minmax();
        m.add_block_skipped_dominance();
        m.add_block_skipped_dominance();
        let s = m.snapshot();
        assert_eq!(s.blocks_read, 2);
        assert_eq!(s.bytes_decoded, 5120);
        assert_eq!(s.blocks_skipped_minmax, 1);
        assert_eq!(s.blocks_skipped_dominance, 2);
    }

    #[test]
    fn pruning_and_merge_counters() {
        let m = ExecMetrics::new();
        m.add_pruned_partition(40);
        m.add_pruned_partition(2);
        m.add_merge_round(4);
        m.add_merge_round(2);
        m.add_merge_round(1);
        let s = m.snapshot();
        assert_eq!(s.partitions_pruned, 2);
        assert_eq!(s.rows_pruned, 42);
        assert_eq!(s.merge_rounds, 3);
        assert_eq!(s.merge_tasks, 7);
        assert_eq!(s.max_merge_fanout, 4);
    }
}
