#![warn(missing_docs)]

//! # sparkline-exec
//!
//! The distributed execution substrate of the `sparkline` engine — the
//! stand-in for Spark's executor runtime that the paper's algorithms run
//! on:
//!
//! * [`stream`] — the pull-based, batched execution substrate:
//!   [`PartitionStream`]s yielding [`stream::RowBatch`]es with in-flight
//!   accounting, plus the shared pipeline-breaker and lazy-build stage
//!   helpers;
//! * [`partition`] — materialized partition helpers with the distribution
//!   schemes the skyline plans require (even split, `AllTuples`
//!   coalescing, hash / null-bitmap partitioning), used by breaker stages
//!   and the materialized adapter;
//! * [`partitioner`] — the pluggable partitioning subsystem: strategy
//!   objects (even / hash / angle-based / grid with dominated-cell
//!   pruning) the planner selects from the session configuration;
//! * [`runtime`] — the executor pool (`num_executors` worker threads), the
//!   stream fan-out (`Runtime::drain_streams`), and its retrying twin
//!   (`Runtime::drain_streams_with_retry`) that recomputes failed
//!   partitions from source;
//! * [`fault`] — the deterministic, seeded fault injector behind the
//!   `fault_seed` / `fault_rate` session knobs;
//! * [`metrics`] — row/dominance-test counters reported by the harness,
//!   including the stream gauges (`batches_emitted`,
//!   `peak_rows_in_flight`) and the resilience counters
//!   (`faults_injected`, `retries_attempted`, `budget_denials`,
//!   `degraded_paths`);
//! * [`memory`] — byte-accounted buffer tracking with per-executor
//!   overhead and an enforced per-query budget.
//!
//! [`TaskContext`] bundles the per-query state every physical operator
//! receives: the pool, the [`QueryControl`] (deadline + cancellation),
//! the fault injector, the retry policy, budgeted memory accounting, the
//! stream batch size, and the materialized-mode switch (the seed model's
//! memory profile, kept for A/B benchmarks).

pub mod fault;
pub mod memory;
pub mod metrics;
pub mod partition;
pub mod partitioner;
pub mod runtime;
pub mod stream;

use std::sync::Arc;
use std::time::Duration;

pub use fault::{FaultInjector, FaultSite};
pub use memory::{MemoryReservation, MemoryTracker};
pub use metrics::{
    partitioning_code, partitioning_label, ExecMetrics, InFlightRows, MetricsSnapshot,
};
pub use partition::Partition;
pub use partitioner::{
    AnglePartitioner, EvenPartitioner, GridPartitioner, Partitioner, SkylineHashPartitioner,
};
pub use runtime::{
    retry_loop, Deadline, QueryControl, Runtime, CONTROL_CHECK_ROWS, MAX_BACKOFF_MULTIPLIER,
};
pub use stream::{PartitionStream, RowBatch, DEFAULT_BATCH_SIZE};

use sparkline_common::Result;

/// Per-query execution state handed to every operator.
#[derive(Debug, Clone)]
pub struct TaskContext {
    /// The executor pool.
    pub runtime: Arc<Runtime>,
    /// Cooperative control: wall-clock deadline + cancellation flag.
    pub control: QueryControl,
    /// Metric counters.
    pub metrics: Arc<ExecMetrics>,
    /// Buffer memory accounting (optionally budget-enforcing).
    pub memory: Arc<MemoryTracker>,
    /// Deterministic transient-fault injector (disabled by default).
    pub faults: Arc<FaultInjector>,
    /// Per-partition retry cap for retryable failures.
    pub max_retries: u32,
    /// Backoff base between retry attempts: the wait is `base * attempt`
    /// with the multiplier capped at
    /// [`runtime::MAX_BACKOFF_MULTIPLIER`], and it aborts early on
    /// cancel/deadline (see [`QueryControl::backoff_wait`]).
    pub retry_backoff: Duration,
    /// Rows per stream batch.
    pub batch_size: usize,
    /// Materialize every operator boundary (the seed model) instead of
    /// pipelining batches — the A/B switch of the streaming benchmarks.
    pub materialized: bool,
}

impl TaskContext {
    /// Context over a pool with `num_executors`, no timeout, streaming
    /// execution with the default batch size, no fault injection, no
    /// memory budget.
    pub fn new(num_executors: usize) -> Self {
        TaskContext {
            runtime: Arc::new(Runtime::new(num_executors)),
            control: QueryControl::unlimited(),
            metrics: Arc::new(ExecMetrics::new()),
            memory: Arc::new(MemoryTracker::new()),
            faults: FaultInjector::disabled(),
            max_retries: 3,
            retry_backoff: Duration::ZERO,
            batch_size: DEFAULT_BATCH_SIZE,
            materialized: false,
        }
    }

    /// Replace the deadline, keeping the cancellation flag.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.control = QueryControl::with_cancel_flag(
            deadline,
            // Re-wrap the existing flag so clones made earlier still
            // observe cancels. QueryControl clones share it.
            {
                let control = self.control.clone();
                control.cancel_flag()
            },
        );
        self
    }

    /// Replace the whole control handle (deadline + cancellation flag).
    pub fn with_control(mut self, control: QueryControl) -> Self {
        self.control = control;
        self
    }

    /// The wall-clock deadline (through the control handle).
    pub fn deadline(&self) -> Deadline {
        self.control.deadline()
    }

    /// Install a fault injector.
    pub fn with_fault_injector(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = faults;
        self
    }

    /// Set the retry policy for retryable partition failures.
    pub fn with_retry_policy(mut self, max_retries: u32, backoff: Duration) -> Self {
        self.max_retries = max_retries;
        self.retry_backoff = backoff;
        self
    }

    /// Replace the memory tracker with a budget-enforcing one.
    pub fn with_memory_budget(mut self, budget: Option<usize>) -> Self {
        self.memory = Arc::new(MemoryTracker::with_budget(budget));
        self
    }

    /// Set the stream batch size (>= 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch size must be at least 1");
        self.batch_size = batch_size;
        self
    }

    /// Toggle the materialized (per-boundary `Vec<Partition>`) model.
    pub fn with_materialized(mut self, materialized: bool) -> Self {
        self.materialized = materialized;
        self
    }

    /// Fault-injection decision for one step, counting fired faults.
    pub fn maybe_inject(&self, site: FaultSite, partition: usize, seq: u64) -> Result<()> {
        match self.faults.check(site, partition, seq) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.metrics.add_fault_injected();
                Err(e)
            }
        }
    }

    /// Budget-checked reservation, counting denials.
    pub fn try_reserve(&self, bytes: usize) -> Result<MemoryReservation> {
        self.memory.try_reserve(bytes).inspect_err(|_| {
            self.metrics.add_budget_denial();
        })
    }

    /// Budget-checked reservation growth, counting denials.
    pub fn try_grow(&self, reservation: &mut MemoryReservation, bytes: usize) -> Result<()> {
        reservation.try_grow(bytes).inspect_err(|_| {
            self.metrics.add_budget_denial();
        })
    }

    /// Drain partition streams with this context's retry policy: failed
    /// partitions are recomputed via `recreate` (typically re-running
    /// `execute_stream` on the immutable plan subtree and keeping the
    /// failed partition's stream), siblings keep their results, and every
    /// recomputation is counted in `retries_attempted`.
    pub fn drain_streams_retrying<R>(
        &self,
        streams: Vec<PartitionStream>,
        recreate: R,
    ) -> Result<Vec<Partition>>
    where
        R: Fn(usize) -> Result<PartitionStream> + Sync,
    {
        self.runtime.drain_streams_with_retry(
            streams,
            &self.control,
            self.max_retries,
            self.retry_backoff,
            recreate,
            |_, _| self.metrics.add_retry_attempted(),
        )
    }
}
