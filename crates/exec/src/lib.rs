#![warn(missing_docs)]

//! # sparkline-exec
//!
//! The distributed execution substrate of the `sparkline` engine — the
//! stand-in for Spark's executor runtime that the paper's algorithms run
//! on:
//!
//! * [`partition`] — partitioned datasets with the distribution schemes the
//!   skyline plans require (even split, `AllTuples` coalescing, hash /
//!   null-bitmap partitioning);
//! * [`partitioner`] — the pluggable partitioning subsystem: strategy
//!   objects (even / hash / angle-based / grid with dominated-cell
//!   pruning) the planner selects from the session configuration;
//! * [`runtime`] — the executor pool (`num_executors` worker threads) and
//!   the cooperative query [`Deadline`];
//! * [`metrics`] — row/dominance-test counters reported by the harness,
//!   including pruned-partition and hierarchical-merge counters;
//! * [`memory`] — byte-accounted buffer tracking with per-executor
//!   overhead, reproducing the paper's peak-memory measurements.
//!
//! [`TaskContext`] bundles the per-query state every physical operator
//! receives.

pub mod memory;
pub mod metrics;
pub mod partition;
pub mod partitioner;
pub mod runtime;

use std::sync::Arc;

pub use memory::{MemoryReservation, MemoryTracker};
pub use metrics::{ExecMetrics, MetricsSnapshot};
pub use partition::Partition;
pub use partitioner::{
    AnglePartitioner, EvenPartitioner, GridPartitioner, Partitioner, SkylineHashPartitioner,
};
pub use runtime::{Deadline, Runtime};

/// Per-query execution state handed to every operator.
#[derive(Debug, Clone)]
pub struct TaskContext {
    /// The executor pool.
    pub runtime: Arc<Runtime>,
    /// Wall-clock budget.
    pub deadline: Deadline,
    /// Metric counters.
    pub metrics: Arc<ExecMetrics>,
    /// Buffer memory accounting.
    pub memory: Arc<MemoryTracker>,
}

impl TaskContext {
    /// Context over a pool with `num_executors`, no timeout.
    pub fn new(num_executors: usize) -> Self {
        TaskContext {
            runtime: Arc::new(Runtime::new(num_executors)),
            deadline: Deadline::unlimited(),
            metrics: Arc::new(ExecMetrics::new()),
            memory: Arc::new(MemoryTracker::new()),
        }
    }

    /// Replace the deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }
}
