#![warn(missing_docs)]

//! # sparkline-exec
//!
//! The distributed execution substrate of the `sparkline` engine — the
//! stand-in for Spark's executor runtime that the paper's algorithms run
//! on:
//!
//! * [`stream`] — the pull-based, batched execution substrate:
//!   [`PartitionStream`]s yielding [`stream::RowBatch`]es with in-flight
//!   accounting, plus the shared pipeline-breaker and lazy-build stage
//!   helpers;
//! * [`partition`] — materialized partition helpers with the distribution
//!   schemes the skyline plans require (even split, `AllTuples`
//!   coalescing, hash / null-bitmap partitioning), used by breaker stages
//!   and the materialized adapter;
//! * [`partitioner`] — the pluggable partitioning subsystem: strategy
//!   objects (even / hash / angle-based / grid with dominated-cell
//!   pruning) the planner selects from the session configuration;
//! * [`runtime`] — the executor pool (`num_executors` worker threads), the
//!   stream fan-out (`Runtime::drain_streams`), and the cooperative query
//!   [`Deadline`];
//! * [`metrics`] — row/dominance-test counters reported by the harness,
//!   including the stream gauges (`batches_emitted`,
//!   `peak_rows_in_flight`) and pruned-partition / hierarchical-merge
//!   counters;
//! * [`memory`] — byte-accounted buffer tracking with per-executor
//!   overhead, reproducing the paper's peak-memory measurements.
//!
//! [`TaskContext`] bundles the per-query state every physical operator
//! receives, including the stream batch size and the materialized-mode
//! switch (the seed model's memory profile, kept for A/B benchmarks).

pub mod memory;
pub mod metrics;
pub mod partition;
pub mod partitioner;
pub mod runtime;
pub mod stream;

use std::sync::Arc;

pub use memory::{MemoryReservation, MemoryTracker};
pub use metrics::{
    partitioning_code, partitioning_label, ExecMetrics, InFlightRows, MetricsSnapshot,
};
pub use partition::Partition;
pub use partitioner::{
    AnglePartitioner, EvenPartitioner, GridPartitioner, Partitioner, SkylineHashPartitioner,
};
pub use runtime::{Deadline, Runtime};
pub use stream::{PartitionStream, RowBatch, DEFAULT_BATCH_SIZE};

/// Per-query execution state handed to every operator.
#[derive(Debug, Clone)]
pub struct TaskContext {
    /// The executor pool.
    pub runtime: Arc<Runtime>,
    /// Wall-clock budget.
    pub deadline: Deadline,
    /// Metric counters.
    pub metrics: Arc<ExecMetrics>,
    /// Buffer memory accounting.
    pub memory: Arc<MemoryTracker>,
    /// Rows per stream batch.
    pub batch_size: usize,
    /// Materialize every operator boundary (the seed model) instead of
    /// pipelining batches — the A/B switch of the streaming benchmarks.
    pub materialized: bool,
}

impl TaskContext {
    /// Context over a pool with `num_executors`, no timeout, streaming
    /// execution with the default batch size.
    pub fn new(num_executors: usize) -> Self {
        TaskContext {
            runtime: Arc::new(Runtime::new(num_executors)),
            deadline: Deadline::unlimited(),
            metrics: Arc::new(ExecMetrics::new()),
            memory: Arc::new(MemoryTracker::new()),
            batch_size: DEFAULT_BATCH_SIZE,
            materialized: false,
        }
    }

    /// Replace the deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Set the stream batch size (>= 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch size must be at least 1");
        self.batch_size = batch_size;
        self
    }

    /// Toggle the materialized (per-boundary `Vec<Partition>`) model.
    pub fn with_materialized(mut self, materialized: bool) -> Self {
        self.materialized = materialized;
        self
    }
}
