//! Byte-accounted memory tracking with enforced per-query budgets.
//!
//! Two jobs share the tracker. First, *measurement*: operators report the
//! buffers they materialize (gathered partitions, hash tables, skyline
//! windows) and the tracker keeps the high-water mark, reproducing the
//! paper's peak-memory charts (Appendix C); a fixed per-executor overhead
//! models its observation that "every single executor must include the
//! entire execution environment of Spark". Second, *enforcement*: a
//! tracker built with [`MemoryTracker::with_budget`] turns
//! [`try_reserve`](MemoryTracker::try_reserve) /
//! [`try_grow`](MemoryTracker::try_grow) into admission checks — a
//! reservation that would push `current_bytes` past the budget is denied
//! with [`Error::ResourceExhausted`] instead of silently growing, and the
//! session reacts by degrading the plan (streaming sinks, no pre-filter,
//! smaller batches) before surfacing the error.
//!
//! Accounting is RAII throughout: every reservation releases its bytes on
//! drop, so an error unwinding through an operator — injected fault,
//! timeout, cancellation, budget denial — leaves `current_bytes == 0`
//! once the query's streams are dropped. Releases saturate at zero and
//! debug-assert on imbalance, so an over-release (a bug) can't wrap the
//! gauge and poison every later budget decision.
//!
//! The infallible [`reserve`](MemoryTracker::reserve) / [`grow`]
//! (MemoryTracker::grow) remain for measurement-only callers (tests,
//! benches without budgets); budgeted call sites go through the fallible
//! variants — `TaskContext::try_reserve` wires the denial metric on top.
//!
//! [`Error::ResourceExhausted`]: sparkline_common::Error::ResourceExhausted

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sparkline_common::{Error, Result};

/// Tracks current and peak buffered bytes for one query execution, with
/// an optional hard budget.
#[derive(Debug, Default)]
pub struct MemoryTracker {
    current: AtomicUsize,
    peak: AtomicUsize,
    budget: Option<usize>,
}

impl MemoryTracker {
    /// Fresh tracker without a budget (measurement only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Tracker enforcing `budget` bytes across all live reservations;
    /// `None` is equivalent to [`MemoryTracker::new`].
    pub fn with_budget(budget: Option<usize>) -> Self {
        MemoryTracker {
            budget,
            ..Self::default()
        }
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Record `bytes` of newly materialized buffer space; returns an RAII
    /// reservation that releases on drop. Ignores the budget — prefer
    /// [`try_reserve`](Self::try_reserve) on enforced paths.
    pub fn reserve(self: &Arc<Self>, bytes: usize) -> MemoryReservation {
        self.grow(bytes);
        MemoryReservation {
            tracker: Arc::clone(self),
            bytes,
        }
    }

    /// Budget-checked [`reserve`](Self::reserve): denies the whole
    /// reservation with [`Error::ResourceExhausted`] if it would exceed
    /// the budget, reserving nothing.
    ///
    /// [`Error::ResourceExhausted`]: sparkline_common::Error::ResourceExhausted
    pub fn try_reserve(self: &Arc<Self>, bytes: usize) -> Result<MemoryReservation> {
        self.try_grow(bytes)?;
        Ok(MemoryReservation {
            tracker: Arc::clone(self),
            bytes,
        })
    }

    /// Raw accounting (prefer [`MemoryTracker::reserve`]).
    pub fn grow(&self, bytes: usize) {
        let new = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(new, Ordering::Relaxed);
    }

    /// Budget-checked raw growth: admits `bytes` only if the gauge stays
    /// within the budget, atomically (concurrent reservations cannot
    /// jointly overshoot).
    pub fn try_grow(&self, bytes: usize) -> Result<()> {
        let Some(budget) = self.budget else {
            self.grow(bytes);
            return Ok(());
        };
        let mut current = self.current.load(Ordering::Relaxed);
        loop {
            let new = current.saturating_add(bytes);
            if new > budget {
                return Err(Error::ResourceExhausted {
                    requested: bytes,
                    used: current,
                    budget,
                });
            }
            match self.current.compare_exchange_weak(
                current,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak.fetch_max(new, Ordering::Relaxed);
                    return Ok(());
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Raw release. Saturates at zero: an over-release (releasing more
    /// than is currently reserved) is an accounting bug and trips a debug
    /// assertion, but must not wrap the gauge in release builds — a
    /// wrapped `current` would make every later budget check admit
    /// unbounded reservations.
    pub fn shrink(&self, bytes: usize) {
        let result = self
            .current
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |current| {
                Some(current.saturating_sub(bytes))
            });
        debug_assert!(
            result.unwrap_or(0) >= bytes,
            "memory accounting imbalance: releasing {bytes} bytes with only \
             {} reserved",
            result.unwrap_or(0),
        );
    }

    /// Currently reserved bytes.
    pub fn current_bytes(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark of data buffers.
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Peak including the per-executor environment overhead (the quantity
    /// the paper's memory charts report).
    pub fn peak_with_overhead(&self, num_executors: usize, overhead_per_executor: usize) -> usize {
        self.peak_bytes() + num_executors * overhead_per_executor
    }
}

/// RAII guard for a tracked buffer; releases its bytes on drop.
#[derive(Debug)]
pub struct MemoryReservation {
    tracker: Arc<MemoryTracker>,
    bytes: usize,
}

impl MemoryReservation {
    /// Grow this reservation by `bytes` (e.g. as a window expands),
    /// ignoring the budget.
    pub fn grow(&mut self, bytes: usize) {
        self.tracker.grow(bytes);
        self.bytes += bytes;
    }

    /// Budget-checked [`grow`](Self::grow): on denial the reservation
    /// keeps its current size.
    pub fn try_grow(&mut self, bytes: usize) -> Result<()> {
        self.tracker.try_grow(bytes)?;
        self.bytes += bytes;
        Ok(())
    }

    /// Bytes held by this reservation.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        self.tracker.shrink(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_survives_release() {
        let t = Arc::new(MemoryTracker::new());
        {
            let _r1 = t.reserve(1000);
            let _r2 = t.reserve(500);
            assert_eq!(t.current_bytes(), 1500);
        }
        assert_eq!(t.current_bytes(), 0);
        assert_eq!(t.peak_bytes(), 1500);
    }

    #[test]
    fn reservation_growth() {
        let t = Arc::new(MemoryTracker::new());
        let mut r = t.reserve(100);
        r.grow(50);
        assert_eq!(r.bytes(), 150);
        assert_eq!(t.current_bytes(), 150);
        drop(r);
        assert_eq!(t.current_bytes(), 0);
    }

    #[test]
    fn overhead_scales_with_executors() {
        let t = MemoryTracker::new();
        t.grow(10);
        assert_eq!(t.peak_with_overhead(5, 1000), 10 + 5000);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "imbalance"))]
    fn shrink_saturates_instead_of_wrapping() {
        let t = MemoryTracker::new();
        t.grow(10);
        // Over-release: debug builds assert, release builds saturate.
        t.shrink(25);
        assert_eq!(t.current_bytes(), 0);
    }

    #[test]
    fn budget_denies_past_the_cap() {
        let t = Arc::new(MemoryTracker::with_budget(Some(1000)));
        let r = t.try_reserve(800).unwrap();
        let err = t.try_reserve(300).unwrap_err();
        assert_eq!(
            err,
            Error::ResourceExhausted {
                requested: 300,
                used: 800,
                budget: 1000,
            }
        );
        // The denied reservation reserved nothing.
        assert_eq!(t.current_bytes(), 800);
        drop(r);
        assert_eq!(t.current_bytes(), 0);
        // Released bytes are admissible again.
        assert!(t.try_reserve(1000).is_ok());
    }

    #[test]
    fn try_grow_denial_keeps_reservation_size() {
        let t = Arc::new(MemoryTracker::with_budget(Some(100)));
        let mut r = t.try_reserve(60).unwrap();
        assert!(r.try_grow(30).is_ok());
        assert!(r.try_grow(30).unwrap_err().is_resource_exhausted());
        assert_eq!(r.bytes(), 90);
        drop(r);
        assert_eq!(t.current_bytes(), 0);
    }

    #[test]
    fn no_budget_try_paths_never_deny() {
        let t = Arc::new(MemoryTracker::new());
        let mut r = t.try_reserve(usize::MAX / 4).unwrap();
        assert!(r.try_grow(usize::MAX / 4).is_ok());
        assert!(t.budget().is_none());
    }
}
