//! Byte-accounted memory tracking.
//!
//! Reproduces the paper's peak-memory measurements (Appendix C): operators
//! report the buffers they materialize (gathered partitions, hash tables,
//! skyline windows) and the tracker keeps the high-water mark. A fixed
//! per-executor overhead models the paper's observation that "every single
//! executor must include the entire execution environment of Spark"
//! — the dominant term in its memory charts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Tracks current and peak buffered bytes for one query execution.
#[derive(Debug, Default)]
pub struct MemoryTracker {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl MemoryTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` of newly materialized buffer space; returns an RAII
    /// reservation that releases on drop.
    pub fn reserve(self: &Arc<Self>, bytes: usize) -> MemoryReservation {
        self.grow(bytes);
        MemoryReservation {
            tracker: Arc::clone(self),
            bytes,
        }
    }

    /// Raw accounting (prefer [`MemoryTracker::reserve`]).
    pub fn grow(&self, bytes: usize) {
        let new = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(new, Ordering::Relaxed);
    }

    /// Raw release.
    pub fn shrink(&self, bytes: usize) {
        self.current.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Currently reserved bytes.
    pub fn current_bytes(&self) -> usize {
        self.current.load(Ordering::Relaxed)
    }

    /// High-water mark of data buffers.
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Peak including the per-executor environment overhead (the quantity
    /// the paper's memory charts report).
    pub fn peak_with_overhead(&self, num_executors: usize, overhead_per_executor: usize) -> usize {
        self.peak_bytes() + num_executors * overhead_per_executor
    }
}

/// RAII guard for a tracked buffer; releases its bytes on drop.
#[derive(Debug)]
pub struct MemoryReservation {
    tracker: Arc<MemoryTracker>,
    bytes: usize,
}

impl MemoryReservation {
    /// Grow this reservation by `bytes` (e.g. as a window expands).
    pub fn grow(&mut self, bytes: usize) {
        self.tracker.grow(bytes);
        self.bytes += bytes;
    }

    /// Bytes held by this reservation.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        self.tracker.shrink(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_survives_release() {
        let t = Arc::new(MemoryTracker::new());
        {
            let _r1 = t.reserve(1000);
            let _r2 = t.reserve(500);
            assert_eq!(t.current_bytes(), 1500);
        }
        assert_eq!(t.current_bytes(), 0);
        assert_eq!(t.peak_bytes(), 1500);
    }

    #[test]
    fn reservation_growth() {
        let t = Arc::new(MemoryTracker::new());
        let mut r = t.reserve(100);
        r.grow(50);
        assert_eq!(r.bytes(), 150);
        assert_eq!(t.current_bytes(), 150);
        drop(r);
        assert_eq!(t.current_bytes(), 0);
    }

    #[test]
    fn overhead_scales_with_executors() {
        let t = MemoryTracker::new();
        t.grow(10);
        assert_eq!(t.peak_with_overhead(5, 1000), 10 + 5000);
    }
}
