//! The executor pool: a thread-based stand-in for Spark's executors,
//! with the partition-retry semantics that make Spark's model viable.
//!
//! `num_executors` worker threads process partitions concurrently — the
//! same parallelism model the paper sweeps in its `--num-executors`
//! experiments (§6.4, Figures 6/7): the local skyline phase scales with
//! executors, while `AllTuples` phases run on a single executor.
//!
//! # Failure semantics
//!
//! [`Runtime::map_indexed`] is fail-fast: the first task error stops the
//! pool from *starting* new tasks, and that error propagates to the
//! caller. Finished sibling tasks keep their results — a failure never
//! invalidates work that already completed.
//!
//! [`Runtime::drain_streams_with_retry`] layers Spark's lineage story on
//! top: each partition stream is drained inside a bounded retry loop, and
//! when a drain fails with a *retryable* error ([`Error::is_retryable`] —
//! in this engine, injected transient faults), the partition is recomputed
//! from its source via the caller-supplied `recreate` factory (re-running
//! `execute_stream` on the immutable plan subtree) with capped linear
//! backoff whose wait is cancel/deadline-aware ([`retry_loop`]). Retries
//! are per-partition and happen inside the owning task, so sibling
//! partitions are never recomputed. Fatal errors (timeout, cancellation,
//! budget denial, real execution errors) surface immediately.
//!
//! The query [`Deadline`] and cancellation handle live in
//! `sparkline_common::control` (re-exported here) so the skyline kernels
//! below this crate can observe them inside their hot loops.

use std::collections::VecDeque;
use std::time::Duration;

use parking_lot::Mutex;
use sparkline_common::{Error, Result};

pub use sparkline_common::control::{
    Deadline, QueryControl, CONTROL_CHECK_ROWS, MAX_BACKOFF_MULTIPLIER,
};

/// Run `run` on `state`, retrying retryable failures up to `max_retries`
/// times with capped, cancel/deadline-aware backoff — the one retry loop
/// shared by every lineage-recomputation site (stream drains here, the
/// incremental incomplete-leaf consumption in the physical layer).
///
/// On a retryable error with budget left, `recover(attempt, &error)` is
/// called first (metrics notification + rebuilding the state from its
/// immutable source), then the loop waits `backoff * attempt` via
/// [`QueryControl::backoff_wait`] — the multiplier capped at
/// [`MAX_BACKOFF_MULTIPLIER`], the wait sliced so a cancel or deadline
/// expiry aborts it within milliseconds instead of parking a shared
/// worker (the failure mode that matters once a server multiplexes many
/// queries onto one pool). Fatal errors, exhausted budgets, and aborted
/// waits surface immediately.
pub fn retry_loop<S, T, F, R>(
    control: &QueryControl,
    max_retries: u32,
    backoff: Duration,
    state: S,
    mut run: F,
    mut recover: R,
) -> Result<T>
where
    F: FnMut(S) -> Result<T>,
    R: FnMut(u32, &Error) -> Result<S>,
{
    let mut current = state;
    let mut attempt = 0u32;
    loop {
        match run(current) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() && attempt < max_retries => {
                attempt += 1;
                let next = recover(attempt, &e)?;
                control.backoff_wait(backoff, attempt)?;
                current = next;
            }
            Err(e) => return Err(e),
        }
    }
}

/// The executor pool.
#[derive(Debug, Clone)]
pub struct Runtime {
    num_executors: usize,
}

impl Runtime {
    /// Pool with `n >= 1` executors.
    pub fn new(num_executors: usize) -> Self {
        assert!(num_executors >= 1, "at least one executor required");
        Runtime { num_executors }
    }

    /// Number of executors (also the default partition count).
    pub fn num_executors(&self) -> usize {
        self.num_executors
    }

    /// Drain a set of partition streams concurrently, one stream per
    /// executor slot — the fan-out point of the stream model: a pipeline
    /// breaker (or the final collect) pulls all upstream pipelines to
    /// completion in parallel, which is where the `num_executors`-way
    /// parallelism of the materialized model re-enters the pull model.
    ///
    /// No retry: a failed partition fails the drain. Use
    /// [`drain_streams_with_retry`](Self::drain_streams_with_retry) (or
    /// `TaskContext::drain_streams_retrying`, which wires the session's
    /// retry policy) where the streams are re-creatable from their source.
    pub fn drain_streams(
        &self,
        streams: Vec<crate::stream::PartitionStream>,
    ) -> Result<Vec<crate::partition::Partition>> {
        self.map_indexed(streams, |_, stream| stream.drain())
    }

    /// Drain partition streams with bounded per-partition retry.
    ///
    /// When partition `i` fails with a retryable error and fewer than
    /// `max_retries` attempts have been burned, `on_retry(i, error)` is
    /// notified (metrics hook), `recreate(i)` rebuilds the stream from its
    /// source, and the task waits `attempt * backoff` — multiplier capped,
    /// the wait aborted early by `control`'s cancel flag or deadline (see
    /// [`retry_loop`]). The retry loop runs inside partition `i`'s own
    /// task: sibling partitions keep draining (and keep their results)
    /// undisturbed.
    pub fn drain_streams_with_retry<R, N>(
        &self,
        streams: Vec<crate::stream::PartitionStream>,
        control: &QueryControl,
        max_retries: u32,
        backoff: Duration,
        recreate: R,
        on_retry: N,
    ) -> Result<Vec<crate::partition::Partition>>
    where
        R: Fn(usize) -> Result<crate::stream::PartitionStream> + Sync,
        N: Fn(usize, &Error) + Sync,
    {
        self.map_indexed(streams, |i, stream| {
            retry_loop(
                control,
                max_retries,
                backoff,
                stream,
                |s| s.drain(),
                |_, e| {
                    on_retry(i, e);
                    recreate(i)
                },
            )
        })
    }

    /// Run `task` over every input concurrently on up to `num_executors`
    /// executors, preserving input order in the result. The first error
    /// wins; remaining tasks are drained without being run.
    pub fn map_indexed<I, O, F>(&self, inputs: Vec<I>, task: F) -> Result<Vec<O>>
    where
        I: Send,
        O: Send,
        F: Fn(usize, I) -> Result<O> + Sync,
    {
        let n_tasks = inputs.len();
        if n_tasks == 0 {
            return Ok(Vec::new());
        }
        let workers = self.num_executors.min(n_tasks);
        if workers <= 1 {
            return inputs
                .into_iter()
                .enumerate()
                .map(|(i, input)| task(i, input))
                .collect();
        }

        let queue: Mutex<VecDeque<(usize, I)>> =
            Mutex::new(inputs.into_iter().enumerate().collect());
        let results: Mutex<Vec<Option<Result<O>>>> =
            Mutex::new((0..n_tasks).map(|_| None).collect());
        let failed = std::sync::atomic::AtomicBool::new(false);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if failed.load(std::sync::atomic::Ordering::Relaxed) {
                        return;
                    }
                    let next = queue.lock().pop_front();
                    let Some((index, input)) = next else {
                        return;
                    };
                    let outcome = task(index, input);
                    if outcome.is_err() {
                        failed.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                    results.lock()[index] = Some(outcome);
                });
            }
        });

        let collected = results.into_inner();
        let mut out = Vec::with_capacity(n_tasks);
        for slot in collected {
            match slot {
                Some(Ok(v)) => out.push(v),
                Some(Err(e)) => return Err(e),
                // Task skipped because another one failed first.
                None => {
                    return Err(Error::internal(
                        "task skipped after failure without reported error",
                    ))
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use crate::stream::PartitionStream;
    use sparkline_common::{DataType, Field, Row, Schema, SchemaRef, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn maps_in_order() {
        let rt = Runtime::new(4);
        let out = rt
            .map_indexed((0..100).collect(), |i, x: i32| Ok(x * 2 + i as i32))
            .unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(out[10], 30);
    }

    #[test]
    fn single_executor_is_sequential() {
        let rt = Runtime::new(1);
        let counter = AtomicUsize::new(0);
        let out = rt
            .map_indexed((0..10).collect::<Vec<i32>>(), |_, x| {
                counter.fetch_add(1, Ordering::SeqCst);
                Ok(x)
            })
            .unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn parallelism_is_bounded_by_executors() {
        let rt = Runtime::new(3);
        let active = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        rt.map_indexed((0..50).collect::<Vec<i32>>(), |_, x| {
            let now = active.fetch_add(1, Ordering::SeqCst) + 1;
            max_seen.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_micros(300));
            active.fetch_sub(1, Ordering::SeqCst);
            Ok(x)
        })
        .unwrap();
        assert!(max_seen.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn first_error_propagates() {
        let rt = Runtime::new(4);
        let result: Result<Vec<i32>> = rt.map_indexed((0..20).collect::<Vec<i32>>(), |_, x| {
            if x == 7 {
                Err(Error::execution("boom"))
            } else {
                Ok(x)
            }
        });
        assert!(result.is_err());
    }

    #[test]
    fn empty_input() {
        let rt = Runtime::new(4);
        let out: Vec<i32> = rt.map_indexed(Vec::<i32>::new(), |_, x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn deadline_checks() {
        let d = Deadline::new(Some(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(5));
        let err = d.check().unwrap_err();
        assert!(err.is_timeout());
        assert!(Deadline::unlimited().check().is_ok());
        assert!(Deadline::new(Some(Duration::from_secs(60))).check().is_ok());
    }

    fn schema() -> SchemaRef {
        Schema::new(vec![Field::new("x", DataType::Int64, false)]).into_ref()
    }

    /// A stream that fails with a retryable error until `fail_left`
    /// attempts have been burned, then yields one row.
    fn flaky_stream(
        metrics: &Arc<ExecMetrics>,
        attempts: Arc<AtomicUsize>,
        fail_first: usize,
    ) -> PartitionStream {
        let metrics = Arc::clone(metrics);
        PartitionStream::new(schema(), Arc::clone(&metrics), move || {
            let n = attempts.fetch_add(1, Ordering::SeqCst);
            if n < fail_first {
                Err(Error::Injected {
                    site: "scan",
                    partition: 0,
                    seq: n as u64,
                })
            } else {
                Ok(None)
            }
        })
    }

    #[test]
    fn retry_recomputes_only_the_failed_partition() {
        let rt = Runtime::new(2);
        let metrics = Arc::new(ExecMetrics::new());
        let attempts = Arc::new(AtomicUsize::new(0));
        let recreations = Arc::new(AtomicUsize::new(0));
        let streams = vec![
            flaky_stream(&metrics, Arc::clone(&attempts), 2),
            PartitionStream::from_partition(
                schema(),
                Arc::clone(&metrics),
                4,
                vec![Row::new(vec![Value::Int64(7)])],
                false,
            ),
        ];
        let retried = Arc::new(AtomicUsize::new(0));
        let out = rt
            .drain_streams_with_retry(
                streams,
                &QueryControl::unlimited(),
                3,
                Duration::ZERO,
                |i| {
                    assert_eq!(i, 0, "only the flaky partition is recreated");
                    recreations.fetch_add(1, Ordering::SeqCst);
                    Ok(flaky_stream(&metrics, Arc::clone(&attempts), 2))
                },
                |_, e| {
                    assert!(e.is_retryable());
                    retried.fetch_add(1, Ordering::SeqCst);
                },
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].is_empty());
        assert_eq!(out[1].len(), 1);
        assert_eq!(retried.load(Ordering::SeqCst), 2);
        assert_eq!(recreations.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_the_fault() {
        let rt = Runtime::new(1);
        let metrics = Arc::new(ExecMetrics::new());
        // Fails forever: every recreation fails again.
        let make = |metrics: &Arc<ExecMetrics>| {
            let metrics = Arc::clone(metrics);
            PartitionStream::new(schema(), metrics, move || {
                Err(Error::Injected {
                    site: "scan",
                    partition: 0,
                    seq: 0,
                })
            })
        };
        let err = rt
            .drain_streams_with_retry(
                vec![make(&metrics)],
                &QueryControl::unlimited(),
                2,
                Duration::ZERO,
                |_| Ok(make(&metrics)),
                |_, _| {},
            )
            .unwrap_err();
        assert!(err.is_retryable(), "{err}");
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        let rt = Runtime::new(1);
        let metrics = Arc::new(ExecMetrics::new());
        let stream = PartitionStream::new(schema(), Arc::clone(&metrics), move || {
            Err(Error::execution("deterministic failure"))
        });
        let recreations = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&recreations);
        let err = rt
            .drain_streams_with_retry(
                vec![stream],
                &QueryControl::unlimited(),
                5,
                Duration::ZERO,
                move |_| {
                    r2.fetch_add(1, Ordering::SeqCst);
                    Err(Error::internal("recreate must not be called"))
                },
                |_, _| {},
            )
            .unwrap_err();
        assert_eq!(err, Error::execution("deterministic failure"));
        assert_eq!(recreations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn retry_backoff_wait_aborts_on_cancel() {
        // A retryable failure with an enormous backoff: the cancel lands
        // while the worker waits out the backoff, and the drain surfaces
        // Cancelled promptly instead of parking for the full wait.
        let rt = Runtime::new(1);
        let metrics = Arc::new(ExecMetrics::new());
        let attempts = Arc::new(AtomicUsize::new(0));
        let stream = flaky_stream(&metrics, Arc::clone(&attempts), 1);
        let control = QueryControl::unlimited();
        let clone = control.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            clone.cancel();
        });
        let start = std::time::Instant::now();
        let err = rt
            .drain_streams_with_retry(
                vec![stream],
                &control,
                3,
                Duration::from_secs(30),
                |_| Ok(flaky_stream(&metrics, Arc::clone(&attempts), 1)),
                |_, _| {},
            )
            .unwrap_err();
        canceller.join().unwrap();
        assert!(err.is_cancelled(), "{err}");
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
