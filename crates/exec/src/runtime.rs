//! The executor pool: a thread-based stand-in for Spark's executors.
//!
//! `num_executors` worker threads process partitions concurrently — the
//! same parallelism model the paper sweeps in its `--num-executors`
//! experiments (§6.4, Figures 6/7): the local skyline phase scales with
//! executors, while `AllTuples` phases run on a single executor.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sparkline_common::{Error, Result};

/// Wall-clock budget for a query (the paper uses 3600 s; the reproduction
/// harness scales this down). Cheap to clone; checked cooperatively by
/// operators.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    started: Instant,
    limit: Option<Duration>,
}

impl Deadline {
    /// A deadline starting now.
    pub fn new(limit: Option<Duration>) -> Self {
        Deadline {
            started: Instant::now(),
            limit,
        }
    }

    /// Unlimited deadline.
    pub fn unlimited() -> Self {
        Deadline::new(None)
    }

    /// Elapsed time since the query started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Error with [`Error::Timeout`] if the budget is exhausted.
    pub fn check(&self) -> Result<()> {
        if let Some(limit) = self.limit {
            let elapsed = self.started.elapsed();
            if elapsed > limit {
                return Err(Error::Timeout {
                    elapsed_ms: elapsed.as_millis() as u64,
                    limit_ms: limit.as_millis() as u64,
                });
            }
        }
        Ok(())
    }
}

/// The executor pool.
#[derive(Debug, Clone)]
pub struct Runtime {
    num_executors: usize,
}

impl Runtime {
    /// Pool with `n >= 1` executors.
    pub fn new(num_executors: usize) -> Self {
        assert!(num_executors >= 1, "at least one executor required");
        Runtime { num_executors }
    }

    /// Number of executors (also the default partition count).
    pub fn num_executors(&self) -> usize {
        self.num_executors
    }

    /// Drain a set of partition streams concurrently, one stream per
    /// executor slot — the fan-out point of the stream model: a pipeline
    /// breaker (or the final collect) pulls all upstream pipelines to
    /// completion in parallel, which is where the `num_executors`-way
    /// parallelism of the materialized model re-enters the pull model.
    pub fn drain_streams(
        &self,
        streams: Vec<crate::stream::PartitionStream>,
    ) -> Result<Vec<crate::partition::Partition>> {
        self.map_indexed(streams, |_, stream| stream.drain())
    }

    /// Run `task` over every input concurrently on up to `num_executors`
    /// executors, preserving input order in the result. The first error
    /// wins; remaining tasks are drained without being run.
    pub fn map_indexed<I, O, F>(&self, inputs: Vec<I>, task: F) -> Result<Vec<O>>
    where
        I: Send,
        O: Send,
        F: Fn(usize, I) -> Result<O> + Sync,
    {
        let n_tasks = inputs.len();
        if n_tasks == 0 {
            return Ok(Vec::new());
        }
        let workers = self.num_executors.min(n_tasks);
        if workers <= 1 {
            return inputs
                .into_iter()
                .enumerate()
                .map(|(i, input)| task(i, input))
                .collect();
        }

        let queue: Mutex<VecDeque<(usize, I)>> =
            Mutex::new(inputs.into_iter().enumerate().collect());
        let results: Mutex<Vec<Option<Result<O>>>> =
            Mutex::new((0..n_tasks).map(|_| None).collect());
        let failed = std::sync::atomic::AtomicBool::new(false);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if failed.load(std::sync::atomic::Ordering::Relaxed) {
                        return;
                    }
                    let next = queue.lock().pop_front();
                    let Some((index, input)) = next else {
                        return;
                    };
                    let outcome = task(index, input);
                    if outcome.is_err() {
                        failed.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                    results.lock()[index] = Some(outcome);
                });
            }
        });

        let collected = results.into_inner();
        let mut out = Vec::with_capacity(n_tasks);
        for slot in collected {
            match slot {
                Some(Ok(v)) => out.push(v),
                Some(Err(e)) => return Err(e),
                // Task skipped because another one failed first.
                None => {
                    return Err(Error::internal(
                        "task skipped after failure without reported error",
                    ))
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn maps_in_order() {
        let rt = Runtime::new(4);
        let out = rt
            .map_indexed((0..100).collect(), |i, x: i32| Ok(x * 2 + i as i32))
            .unwrap();
        assert_eq!(out.len(), 100);
        assert_eq!(out[10], 30);
    }

    #[test]
    fn single_executor_is_sequential() {
        let rt = Runtime::new(1);
        let counter = AtomicUsize::new(0);
        let out = rt
            .map_indexed((0..10).collect::<Vec<i32>>(), |_, x| {
                counter.fetch_add(1, Ordering::SeqCst);
                Ok(x)
            })
            .unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn parallelism_is_bounded_by_executors() {
        let rt = Runtime::new(3);
        let active = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        rt.map_indexed((0..50).collect::<Vec<i32>>(), |_, x| {
            let now = active.fetch_add(1, Ordering::SeqCst) + 1;
            max_seen.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_micros(300));
            active.fetch_sub(1, Ordering::SeqCst);
            Ok(x)
        })
        .unwrap();
        assert!(max_seen.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn first_error_propagates() {
        let rt = Runtime::new(4);
        let result: Result<Vec<i32>> = rt.map_indexed((0..20).collect::<Vec<i32>>(), |_, x| {
            if x == 7 {
                Err(Error::execution("boom"))
            } else {
                Ok(x)
            }
        });
        assert!(result.is_err());
    }

    #[test]
    fn empty_input() {
        let rt = Runtime::new(4);
        let out: Vec<i32> = rt.map_indexed(Vec::<i32>::new(), |_, x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn deadline_checks() {
        let d = Deadline::new(Some(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(5));
        let err = d.check().unwrap_err();
        assert!(err.is_timeout());
        assert!(Deadline::unlimited().check().is_ok());
        assert!(Deadline::new(Some(Duration::from_secs(60))).check().is_ok());
    }
}
