//! Pull-based batched execution streams — the substrate of the engine's
//! streaming model.
//!
//! A physical operator no longer materializes a `Vec<Partition>`; it
//! returns one [`PartitionStream`] per output partition. A stream is a
//! pull iterator yielding [`RowBatch`]es of at most
//! `SessionConfig::batch_size` rows, plus the output schema and
//! close/metrics hooks. Narrow operators (scan, project, filter, limit,
//! distinct, join probe sides) are pipelined: pulling one batch from the
//! root pulls exactly one batch through the whole chain, so peak memory is
//! `O(batch_size × pipeline depth)` instead of the sum of all
//! intermediates, and `LIMIT k` stops upstream work after
//! `O(k / batch_size)` batches. Pipeline breakers (sort, aggregation,
//! exchange, skyline phases, join build sides) consume their input stream
//! batch-by-batch into their internal state and only then start emitting.
//!
//! Accounting: every yielded batch counts toward
//! `ExecMetrics::batches_emitted` and is held in the
//! `rows_in_flight` gauge until the consumer pulls the next batch (or
//! closes the stream); breaker buffers register through
//! [`InFlightRows`](crate::metrics::InFlightRows). The high-water mark is
//! reported as `peak_rows_in_flight`.
//!
//! [`breaker_streams`] and [`LazyBuild`] are the two sharing primitives
//! breakers need: the former computes all output partitions once on first
//! pull (any output stream may be pulled first, from any executor
//! thread), the latter computes a shared build-side structure once.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use sparkline_common::{Error, Result, Row, SchemaRef};

use crate::memory::MemoryReservation;
use crate::metrics::{ExecMetrics, InFlightRows};
use crate::partition::Partition;
use crate::TaskContext;

/// A batch of rows flowing through the stream pipeline.
pub type RowBatch = Vec<Row>;

/// Default rows per batch (`SessionConfig::batch_size`).
pub const DEFAULT_BATCH_SIZE: usize = 4096;

/// One output partition of an operator: a pull iterator over row batches
/// with the partition's schema and metric accounting attached.
///
/// The stream releases the previously yielded batch from the in-flight
/// gauge on every pull (the pull protocol means the consumer is done with
/// it) and registers the new one; [`close`](Self::close) / `Drop` release
/// the last batch and drop the producer state (which recursively drops
/// upstream streams — this is what makes `LIMIT` cancel upstream work).
pub struct PartitionStream {
    schema: SchemaRef,
    metrics: Arc<ExecMetrics>,
    outstanding: usize,
    done: bool,
    /// Pass-through adapters (e.g. [`chain_streams`]) skip the
    /// batch/in-flight accounting: their batches are the wrapped streams'
    /// batches, already counted there.
    accounted: bool,
    next: Box<dyn FnMut() -> Result<Option<RowBatch>> + Send>,
}

impl fmt::Debug for PartitionStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PartitionStream")
            .field("outstanding", &self.outstanding)
            .field("done", &self.done)
            .finish()
    }
}

impl PartitionStream {
    /// Stream over a producer closure. The closure yields `Ok(Some(_))`
    /// per batch and `Ok(None)` at end-of-partition.
    pub fn new(
        schema: SchemaRef,
        metrics: Arc<ExecMetrics>,
        next: impl FnMut() -> Result<Option<RowBatch>> + Send + 'static,
    ) -> Self {
        PartitionStream {
            schema,
            metrics,
            outstanding: 0,
            done: false,
            accounted: true,
            next: Box::new(next),
        }
    }

    /// Like [`new`](Self::new) but without batch/in-flight accounting —
    /// for pass-through adapters that merely forward batches some wrapped
    /// stream already counts.
    pub fn new_passthrough(
        schema: SchemaRef,
        metrics: Arc<ExecMetrics>,
        next: impl FnMut() -> Result<Option<RowBatch>> + Send + 'static,
    ) -> Self {
        let mut stream = PartitionStream::new(schema, metrics, next);
        stream.accounted = false;
        stream
    }

    /// An empty partition.
    pub fn empty(schema: SchemaRef, metrics: Arc<ExecMetrics>) -> Self {
        PartitionStream::new(schema, metrics, || Ok(None))
    }

    /// Stream an in-memory partition out in `batch_size`d chunks. With
    /// `hold`, the whole buffer counts as in flight for the stream's
    /// lifetime — the honest accounting for a materialized intermediate
    /// (pipeline-breaker output, materialized-adapter boundary).
    pub fn from_partition(
        schema: SchemaRef,
        metrics: Arc<ExecMetrics>,
        batch_size: usize,
        part: Partition,
        hold: bool,
    ) -> Self {
        let guard = hold.then(|| InFlightRows::new(Arc::clone(&metrics), part.len()));
        Self::from_buffer(schema, metrics, batch_size, part, guard)
    }

    /// Like [`from_partition`](Self::from_partition) with an existing
    /// in-flight guard (kept alive until the stream is dropped).
    pub fn from_buffer(
        schema: SchemaRef,
        metrics: Arc<ExecMetrics>,
        batch_size: usize,
        part: Partition,
        guard: Option<InFlightRows>,
    ) -> Self {
        let batch_size = batch_size.max(1);
        let mut iter = part.into_iter();
        let mut guard = guard;
        PartitionStream::new(schema, metrics, move || {
            let batch: RowBatch = iter.by_ref().take(batch_size).collect();
            if batch.is_empty() {
                guard.take();
                return Ok(None);
            }
            Ok(Some(batch))
        })
    }

    /// The partition's schema.
    pub fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    /// Pull the next batch. Returns `Ok(None)` once the partition is
    /// exhausted (and stays exhausted).
    pub fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        if self.done {
            return Ok(None);
        }
        self.metrics.sub_rows_in_flight(self.outstanding);
        self.outstanding = 0;
        match (self.next)() {
            Ok(Some(batch)) => {
                if self.accounted {
                    self.outstanding = batch.len();
                    self.metrics.begin_batch(batch.len());
                }
                Ok(Some(batch))
            }
            Ok(None) => {
                self.finish();
                Ok(None)
            }
            Err(e) => {
                self.finish();
                Err(e)
            }
        }
    }

    /// Close early: release accounting and drop the producer (and with it
    /// the upstream streams) without draining.
    pub fn close(&mut self) {
        self.metrics.sub_rows_in_flight(self.outstanding);
        self.outstanding = 0;
        self.finish();
    }

    fn finish(&mut self) {
        self.done = true;
        // Replace the producer so captured upstream state is freed now,
        // not when the handle happens to be dropped.
        self.next = Box::new(|| Ok(None));
    }

    /// Drain the remaining batches into one partition (the materialized
    /// adapter used by `ExecutionPlan::execute`, tests, and breakers).
    pub fn drain(mut self) -> Result<Partition> {
        let mut rows: Partition = Vec::new();
        while let Some(batch) = self.next_batch()? {
            rows.extend(batch);
        }
        Ok(rows)
    }
}

impl Drop for PartitionStream {
    fn drop(&mut self) {
        self.metrics.sub_rows_in_flight(self.outstanding);
        self.outstanding = 0;
    }
}

/// Wrap materialized partitions as held buffer streams (used by the
/// materialized execution mode and by breakers emitting their results).
pub fn streams_from_partitions(
    schema: SchemaRef,
    ctx: &TaskContext,
    parts: Vec<Partition>,
) -> Vec<PartitionStream> {
    parts
        .into_iter()
        .map(|p| {
            PartitionStream::from_partition(
                Arc::clone(&schema),
                Arc::clone(&ctx.metrics),
                ctx.batch_size,
                p,
                true,
            )
        })
        .collect()
}

/// Like [`streams_from_partitions`], but each buffer additionally holds a
/// budget-checked byte reservation for its lifetime — the honest
/// accounting for the materialized execution model, where every operator
/// boundary keeps a full intermediate alive. Under an enforced memory
/// budget this is what makes the materialized model *fail* where the
/// streaming model fits, driving the session's graceful-degradation
/// ladder.
pub fn streams_from_partitions_reserved(
    schema: SchemaRef,
    ctx: &TaskContext,
    parts: Vec<Partition>,
) -> Result<Vec<PartitionStream>> {
    let batch_size = ctx.batch_size.max(1);
    parts
        .into_iter()
        .map(|p| {
            let reservation = ctx.try_reserve(p.iter().map(Row::estimated_bytes).sum())?;
            let mut guard = Some((
                InFlightRows::new(Arc::clone(&ctx.metrics), p.len()),
                reservation,
            ));
            let mut iter = p.into_iter();
            Ok(PartitionStream::new(
                Arc::clone(&schema),
                Arc::clone(&ctx.metrics),
                move || {
                    let batch: RowBatch = iter.by_ref().take(batch_size).collect();
                    if batch.is_empty() {
                        guard.take();
                        return Ok(None);
                    }
                    Ok(Some(batch))
                },
            ))
        })
        .collect()
}

/// Chain several streams into one, preserving stream order — the
/// streaming analogue of `partition::coalesce` for consumers that want a
/// single sequential view.
pub fn chain_streams(
    schema: SchemaRef,
    metrics: Arc<ExecMetrics>,
    streams: Vec<PartitionStream>,
) -> PartitionStream {
    let mut queue: VecDeque<PartitionStream> = streams.into();
    PartitionStream::new_passthrough(schema, metrics, move || loop {
        let Some(front) = queue.front_mut() else {
            return Ok(None);
        };
        match front.next_batch()? {
            Some(batch) => return Ok(Some(batch)),
            None => {
                queue.pop_front();
            }
        }
    })
}

enum BreakerStage {
    /// Not yet computed; holds the one-shot compute closure.
    Pending(Box<dyn FnOnce() -> Result<Vec<Partition>> + Send>),
    /// Computed; one slot per output stream (taken on first pull).
    Ready(Vec<Option<(Partition, InFlightRows, MemoryReservation)>>),
    /// The compute closure failed; every puller (whichever thread wins
    /// the race) receives a clone of the real error — so a timeout stays
    /// a timeout instead of degrading into a sibling-stream placeholder.
    Failed(Error),
}

/// A shared pipeline-breaker stage.
///
/// The first output stream pulled runs `compute` exactly once — producing
/// *all* output partitions — then every output stream emits its own
/// partition in batches. Each computed partition is registered with the
/// in-flight gauge and the byte-accounting memory tracker until its
/// stream is dropped. `compute` results with fewer than `n_outputs`
/// partitions are padded with empty ones (partition counts must be fixed
/// before execution in the stream model).
pub fn breaker_streams(
    schema: SchemaRef,
    ctx: &TaskContext,
    n_outputs: usize,
    compute: impl FnOnce() -> Result<Vec<Partition>> + Send + 'static,
) -> Vec<PartitionStream> {
    let core = Arc::new(Mutex::new(BreakerStage::Pending(Box::new(compute))));
    let metrics = Arc::clone(&ctx.metrics);
    let memory = Arc::clone(&ctx.memory);
    let batch_size = ctx.batch_size.max(1);
    (0..n_outputs.max(1))
        .map(|i| {
            let core = Arc::clone(&core);
            let metrics = Arc::clone(&metrics);
            let memory = Arc::clone(&memory);
            let stream_metrics = Arc::clone(&metrics);
            let mut slot: Option<(std::vec::IntoIter<Row>, InFlightRows, MemoryReservation)> = None;
            let mut started = false;
            PartitionStream::new(Arc::clone(&schema), stream_metrics, move || {
                if !started {
                    started = true;
                    let mut stage = core.lock();
                    if let BreakerStage::Pending(_) = &*stage {
                        let placeholder = BreakerStage::Failed(Error::internal(
                            "pipeline-breaker stage re-entered while computing",
                        ));
                        let BreakerStage::Pending(compute) =
                            std::mem::replace(&mut *stage, placeholder)
                        else {
                            return Err(Error::internal(
                                "pipeline-breaker stage lost its compute closure",
                            ));
                        };
                        // Reserve the computed partitions against the
                        // (possibly budgeted) tracker; a denial fails the
                        // stage like any compute error, releasing the
                        // partial reservations via RAII.
                        let reserve_all = |mut parts: Vec<Partition>| -> Result<
                            Vec<Option<(Partition, InFlightRows, MemoryReservation)>>,
                        > {
                            debug_assert!(
                                parts.len() <= n_outputs.max(1),
                                "breaker produced more partitions than declared"
                            );
                            parts.truncate(n_outputs.max(1));
                            parts.resize_with(n_outputs.max(1), Vec::new);
                            let mut slots = Vec::with_capacity(parts.len());
                            for p in parts {
                                let bytes: usize = p.iter().map(Row::estimated_bytes).sum();
                                let guard = InFlightRows::new(Arc::clone(&metrics), p.len());
                                let reservation = memory.try_reserve(bytes)?;
                                slots.push(Some((p, guard, reservation)));
                            }
                            Ok(slots)
                        };
                        match compute().and_then(reserve_all) {
                            Ok(slots) => {
                                *stage = BreakerStage::Ready(slots);
                            }
                            Err(e) => {
                                if e.is_resource_exhausted() {
                                    metrics.add_budget_denial();
                                }
                                *stage = BreakerStage::Failed(e.clone());
                                return Err(e);
                            }
                        }
                    }
                    match &mut *stage {
                        BreakerStage::Ready(slots) => {
                            if let Some((p, guard, reservation)) =
                                slots.get_mut(i).and_then(|s| s.take())
                            {
                                slot = Some((p.into_iter(), guard, reservation));
                            }
                        }
                        BreakerStage::Failed(e) => return Err(e.clone()),
                        BreakerStage::Pending(_) => {
                            return Err(Error::internal(
                                "pipeline-breaker stage still pending after compute",
                            ))
                        }
                    }
                }
                let Some((iter, _, _)) = slot.as_mut() else {
                    return Ok(None);
                };
                let batch: RowBatch = iter.by_ref().take(batch_size).collect();
                if batch.is_empty() {
                    slot.take();
                    return Ok(None);
                }
                Ok(Some(batch))
            })
        })
        .collect()
}

enum LazyState<T> {
    Pending(Box<dyn FnOnce() -> Result<T> + Send>),
    Ready(Arc<T>),
    Failed(Error),
}

/// A lazily computed, shared build stage (hash-join build side,
/// nested-loop inner side): the first probe stream that pulls runs the
/// build once; every stream then shares the result.
pub struct LazyBuild<T> {
    state: Mutex<LazyState<T>>,
}

impl<T: Send + Sync> LazyBuild<T> {
    /// Wrap a one-shot build closure.
    pub fn new(build: impl FnOnce() -> Result<T> + Send + 'static) -> Arc<Self> {
        Arc::new(LazyBuild {
            state: Mutex::new(LazyState::Pending(Box::new(build))),
        })
    }

    /// The built value, computing it on first call. A build failure is
    /// replayed (cloned) to every later caller, so the real error — a
    /// timeout in particular — survives whichever stream reports first.
    pub fn get(&self) -> Result<Arc<T>> {
        let mut state = self.state.lock();
        match &*state {
            LazyState::Ready(v) => Ok(Arc::clone(v)),
            LazyState::Failed(e) => Err(e.clone()),
            LazyState::Pending(_) => {
                let placeholder = LazyState::Failed(Error::internal(
                    "shared build stage re-entered while computing",
                ));
                let LazyState::Pending(build) = std::mem::replace(&mut *state, placeholder) else {
                    return Err(Error::internal("shared build stage lost its closure"));
                };
                match build() {
                    Ok(value) => {
                        let value = Arc::new(value);
                        *state = LazyState::Ready(Arc::clone(&value));
                        Ok(value)
                    }
                    Err(e) => {
                        *state = LazyState::Failed(e.clone());
                        Err(e)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{DataType, Field, Schema, Value};
    use std::sync::atomic::Ordering;

    fn schema() -> SchemaRef {
        Schema::new(vec![Field::new("x", DataType::Int64, false)]).into_ref()
    }

    fn rows(n: usize) -> Partition {
        (0..n)
            .map(|i| Row::new(vec![Value::Int64(i as i64)]))
            .collect()
    }

    #[test]
    fn buffer_stream_batches_and_accounts() {
        let m = Arc::new(ExecMetrics::new());
        let mut s = PartitionStream::from_partition(schema(), Arc::clone(&m), 4, rows(10), false);
        let mut seen = 0;
        let mut batches = 0;
        while let Some(b) = s.next_batch().unwrap() {
            assert!(b.len() <= 4);
            seen += b.len();
            batches += 1;
        }
        assert_eq!(seen, 10);
        assert_eq!(batches, 3);
        let snap = m.snapshot();
        assert_eq!(snap.batches_emitted, 3);
        assert!(snap.peak_rows_in_flight >= 4);
        assert_eq!(m.rows_in_flight.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn held_buffer_counts_whole_partition() {
        let m = Arc::new(ExecMetrics::new());
        let s = PartitionStream::from_partition(schema(), Arc::clone(&m), 4, rows(10), true);
        assert_eq!(m.rows_in_flight.load(Ordering::Relaxed), 10);
        drop(s);
        assert_eq!(m.rows_in_flight.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn close_releases_without_draining() {
        let m = Arc::new(ExecMetrics::new());
        let mut s = PartitionStream::from_partition(schema(), Arc::clone(&m), 4, rows(10), false);
        let _ = s.next_batch().unwrap();
        assert_eq!(m.rows_in_flight.load(Ordering::Relaxed), 4);
        s.close();
        assert_eq!(m.rows_in_flight.load(Ordering::Relaxed), 0);
        assert!(s.next_batch().unwrap().is_none());
    }

    #[test]
    fn chained_streams_preserve_order() {
        let m = Arc::new(ExecMetrics::new());
        let parts = vec![rows(3), rows(2)];
        let streams: Vec<PartitionStream> = parts
            .into_iter()
            .map(|p| PartitionStream::from_partition(schema(), Arc::clone(&m), 2, p, false))
            .collect();
        let chained = chain_streams(schema(), Arc::clone(&m), streams);
        let all = chained.drain().unwrap();
        assert_eq!(all.len(), 5);
        assert_eq!(all[3], Row::new(vec![Value::Int64(0)]));
    }

    #[test]
    fn breaker_computes_once_and_pads() {
        let ctx = TaskContext::new(2);
        let count = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let streams = breaker_streams(schema(), &ctx, 3, move || {
            c2.fetch_add(1, Ordering::SeqCst);
            Ok(vec![rows(5)])
        });
        assert_eq!(streams.len(), 3);
        let drained: Vec<Partition> = streams.into_iter().map(|s| s.drain().unwrap()).collect();
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert_eq!(drained[0].len(), 5);
        assert!(drained[1].is_empty() && drained[2].is_empty());
        assert_eq!(ctx.metrics.rows_in_flight.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn lazy_build_runs_once() {
        let count = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let c2 = Arc::clone(&count);
        let build = LazyBuild::new(move || {
            c2.fetch_add(1, Ordering::SeqCst);
            Ok(41usize + 1)
        });
        assert_eq!(*build.get().unwrap(), 42);
        assert_eq!(*build.get().unwrap(), 42);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn lazy_build_error_poisons() {
        let build: Arc<LazyBuild<usize>> = LazyBuild::new(|| Err(Error::execution("boom")));
        assert!(build.get().is_err());
        assert!(build.get().is_err());
    }

    #[test]
    fn breaker_replays_the_real_error_to_every_stream() {
        // A timeout inside the compute closure must surface as a timeout
        // on every output stream, not as a sibling-failure placeholder —
        // the bench harness distinguishes timeouts from hard errors.
        let ctx = TaskContext::new(2);
        let streams = breaker_streams(schema(), &ctx, 3, move || {
            Err(Error::Timeout {
                elapsed_ms: 10,
                limit_ms: 5,
            })
        });
        for mut s in streams {
            let err = s.next_batch().unwrap_err();
            assert!(err.is_timeout(), "{err}");
        }
    }

    #[test]
    fn lazy_build_replays_timeouts() {
        let build: Arc<LazyBuild<usize>> = LazyBuild::new(|| {
            Err(Error::Timeout {
                elapsed_ms: 10,
                limit_ms: 5,
            })
        });
        assert!(build.get().unwrap_err().is_timeout());
        assert!(build.get().unwrap_err().is_timeout(), "replayed clone");
    }
}
