//! Deterministic, seeded fault injection.
//!
//! The injector reproduces the transient failures a real cluster throws
//! at an executor runtime (lost task, flaky shuffle fetch) in a way unit
//! tests can pin down exactly: whether a step faults is a pure function
//! of `(fault_seed, site, partition, seq)`, so the same configuration
//! faults the same steps on every run.
//!
//! Two properties make the retry story testable:
//!
//! * **Determinism** — the firing decision hashes the step key with a
//!   splitmix64-style mixer and compares against `fault_rate`; no global
//!   RNG state, no ordering sensitivity across threads.
//! * **Fire-once** — each faulting step key fires exactly once per query
//!   (tracked in a shared set), so a retry that recomputes the partition
//!   re-executes the same keys *without* re-faulting. Every retry makes
//!   strict progress, and with retries enabled a fault-injected run must
//!   converge to the byte-identical fault-free result.

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;
use sparkline_common::{Error, Result};

/// Where a fault can be injected, mirroring the failure surfaces of a
/// distributed deployment: source reads, shuffle exchanges, merge tasks,
/// and the skyline operators' consuming sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A base-table scan batch.
    Scan,
    /// An exchange (repartitioning) input drain.
    Exchange,
    /// A (hierarchical) merge task.
    Merge,
    /// A skyline sink consuming its input batches.
    SkylineSink,
}

impl FaultSite {
    /// Stable label, used in [`Error::Injected`] and the chaos reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::Scan => "scan",
            FaultSite::Exchange => "exchange",
            FaultSite::Merge => "merge",
            FaultSite::SkylineSink => "skyline-sink",
        }
    }

    fn code(self) -> u64 {
        match self {
            FaultSite::Scan => 1,
            FaultSite::Exchange => 2,
            FaultSite::Merge => 3,
            FaultSite::SkylineSink => 4,
        }
    }
}

/// Per-query deterministic fault injector; shared (via `Arc`) by every
/// operator of one execution so retries observe the fire-once set.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    /// Firing threshold: `rate` mapped onto the full `u64` range.
    threshold: u64,
    fired: Mutex<HashSet<u64>>,
}

impl FaultInjector {
    /// Injector firing each step with probability `rate` in `[0, 1]`.
    pub fn new(seed: u64, rate: f64) -> Self {
        let threshold = if rate <= 0.0 {
            0
        } else if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        FaultInjector {
            seed,
            threshold,
            fired: Mutex::new(HashSet::new()),
        }
    }

    /// An injector that never fires (rate 0).
    pub fn disabled() -> Arc<Self> {
        Arc::new(FaultInjector::new(0, 0.0))
    }

    /// Whether this injector can fire at all.
    pub fn enabled(&self) -> bool {
        self.threshold > 0
    }

    /// Fault decision for one step. Returns `Err(Error::Injected)` iff the
    /// seeded hash of `(site, partition, seq)` clears the rate threshold
    /// *and* this key has not fired before in this query.
    pub fn check(&self, site: FaultSite, partition: usize, seq: u64) -> Result<()> {
        if self.threshold == 0 {
            return Ok(());
        }
        let key = mix(self.seed
            ^ site.code().wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (partition as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ seq.wrapping_mul(0x94D0_49BB_1331_11EB));
        if mix(key) >= self.threshold {
            return Ok(());
        }
        if self.fired.lock().insert(key) {
            Err(Error::Injected {
                site: site.label(),
                partition,
                seq,
            })
        } else {
            // Already fired once: the retry passes this step.
            Ok(())
        }
    }
}

/// splitmix64 finalizer: a cheap, well-distributed bijective mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(!inj.enabled());
        for seq in 0..1000 {
            assert!(inj.check(FaultSite::Scan, 0, seq).is_ok());
        }
    }

    #[test]
    fn decisions_are_deterministic_across_injectors() {
        let a = FaultInjector::new(42, 0.1);
        let b = FaultInjector::new(42, 0.1);
        for partition in 0..4 {
            for seq in 0..200 {
                assert_eq!(
                    a.check(FaultSite::Merge, partition, seq).is_err(),
                    b.check(FaultSite::Merge, partition, seq).is_err(),
                    "p{partition} seq {seq}"
                );
            }
        }
    }

    #[test]
    fn rate_one_fires_every_fresh_key_once() {
        let inj = FaultInjector::new(7, 1.0);
        for seq in 0..50 {
            assert!(inj.check(FaultSite::Exchange, 1, seq).is_err());
            // The retry of the same step passes.
            assert!(inj.check(FaultSite::Exchange, 1, seq).is_ok());
        }
    }

    #[test]
    fn rate_is_roughly_respected() {
        let inj = FaultInjector::new(99, 0.05);
        let fired = (0..10_000)
            .filter(|&seq| inj.check(FaultSite::Scan, 0, seq).is_err())
            .count();
        assert!((200..=800).contains(&fired), "5% of 10k ≈ 500, got {fired}");
    }

    #[test]
    fn different_seeds_fault_different_steps() {
        let a = FaultInjector::new(1, 0.2);
        let b = FaultInjector::new(2, 0.2);
        let pattern = |inj: &FaultInjector| -> Vec<bool> {
            (0..500)
                .map(|seq| inj.check(FaultSite::SkylineSink, 0, seq).is_err())
                .collect()
        };
        assert_ne!(pattern(&a), pattern(&b));
    }
}
