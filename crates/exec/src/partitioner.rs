//! The pluggable partitioning subsystem for distributed skyline plans.
//!
//! The paper's two-phase plan inherits the input distribution for its local
//! phase ("avoiding unnecessary communication cost", §5.6) — but the choice
//! of *how* tuples are spread over executors decides how much the local
//! phase can prune. This module makes that choice a first-class strategy
//! object ([`Partitioner`]) the planner selects from [`SessionConfig`]
//! (`sparkline_common::SessionConfig::skyline_partitioning`):
//!
//! * [`EvenPartitioner`] — contiguous even split, Spark's read default;
//! * [`SkylineHashPartitioner`] — tuples with identical skyline-dimension
//!   values share an executor, so duplicate trade-offs collapse locally;
//! * [`AnglePartitioner`] — the angle-based scheme of Vlachou et al.
//!   (SIGMOD 2008, the paper's §7 future work): tuples on the same
//!   price/quality trade-off compete in the same partition;
//! * [`GridPartitioner`] — MR-GRID-style grid partitioning with
//!   **dominated-cell pruning** (cf. Ciaccia & Martinenghi's dominated
//!   region strategies): each cell tracks the best and worst corner of its
//!   tuples, and a cell whose best corner is dominated by another cell's
//!   worst corner is discarded *before any local skyline runs*. Pruned
//!   cell and row counts are reported through [`ExecMetrics`].
//!
//! Correctness never depends on the scheme: on complete data the
//! local/global skyline decomposition is sound under *any* partitioning
//! (every global skyline tuple survives its local phase), and grid pruning
//! only discards tuples with a dominating witness. Pruning is disabled
//! when the spec carries `DIFF` dimensions (dominance then additionally
//! requires equality on those, which corners do not capture) and for
//! tuples that are NULL or non-numeric in a grid dimension (they are
//! routed past the grid, never pruned).

use std::fmt;

use sparkline_common::{Row, SkylineDim, SkylineSpec, SkylineType, Value};
use sparkline_skyline::{PointBlock, MULTI_LANES};

use crate::metrics::ExecMetrics;
use crate::partition::{flatten, split_evenly, Partition};

/// A partitioning strategy: redistributes a dataset over `n` executors.
pub trait Partitioner: fmt::Debug + Send + Sync {
    /// Strategy name for plan display and metrics.
    fn name(&self) -> &'static str;

    /// One-line description (strategy plus parameters) for `describe()`.
    fn describe(&self) -> String {
        self.name().to_string()
    }

    /// Redistribute `parts` into `n` partitions. Implementations may
    /// return fewer (never zero) partitions and may drop rows **only**
    /// when the rows are provably dominated under the strategy's spec;
    /// every drop must be reported through `metrics`.
    fn repartition(&self, parts: Vec<Partition>, n: usize, metrics: &ExecMetrics)
        -> Vec<Partition>;
}

/// Contiguous even split (Spark's default read distribution).
#[derive(Debug, Clone, Copy, Default)]
pub struct EvenPartitioner;

impl Partitioner for EvenPartitioner {
    fn name(&self) -> &'static str {
        "Even"
    }

    fn repartition(
        &self,
        parts: Vec<Partition>,
        n: usize,
        _metrics: &ExecMetrics,
    ) -> Vec<Partition> {
        split_evenly(flatten(parts), n)
    }
}

/// Hash partitioning on the skyline-dimension values: tuples with
/// identical dimension values always share an executor, so ties (and
/// `DISTINCT` representatives) collapse during the local phase.
#[derive(Debug, Clone)]
pub struct SkylineHashPartitioner {
    spec: SkylineSpec,
}

impl SkylineHashPartitioner {
    /// Hash partitioner over the spec's dimensions.
    pub fn new(spec: SkylineSpec) -> Self {
        SkylineHashPartitioner { spec }
    }
}

impl Partitioner for SkylineHashPartitioner {
    fn name(&self) -> &'static str {
        "Hash"
    }

    fn describe(&self) -> String {
        format!("Hash on {} dims", self.spec.dims.len())
    }

    fn repartition(
        &self,
        parts: Vec<Partition>,
        n: usize,
        _metrics: &ExecMetrics,
    ) -> Vec<Partition> {
        crate::partition::hash_partition(parts, n, |row| {
            use std::fmt::Write;
            let mut key = String::new();
            for dim in &self.spec.dims {
                let _ = write!(key, "{}\u{1f}", row.get(dim.index));
            }
            key
        })
    }
}

/// Numeric view of a ranked dimension with the MIN/MAX direction folded in
/// (smaller is always better). `None` for NULL / non-numeric values.
fn folded_numeric(row: &Row, dim: &SkylineDim) -> Option<f64> {
    match row.get(dim.index) {
        Value::Int64(i) => Some(*i as f64),
        Value::Float64(f) => Some(*f),
        Value::Boolean(b) => Some(f64::from(*b)),
        _ => None,
    }
    .map(|v| if dim.ty == SkylineType::Max { -v } else { v })
}

/// Angle-based partitioning (Vlachou et al., SIGMOD 2008, simplified to
/// the first two ranked dimensions): normalize both dimensions to [0, 1]
/// with the MIN/MAX direction folded in, compute each tuple's polar angle,
/// and split `[0, π/2]` into equal sectors. Tuples that do not admit the
/// numeric mapping are routed to sector 0.
#[derive(Debug, Clone)]
pub struct AnglePartitioner {
    spec: SkylineSpec,
}

impl AnglePartitioner {
    /// Angle partitioner over the spec's first two ranked dimensions.
    pub fn new(spec: SkylineSpec) -> Self {
        AnglePartitioner { spec }
    }
}

impl Partitioner for AnglePartitioner {
    fn name(&self) -> &'static str {
        "AngleBased"
    }

    fn describe(&self) -> String {
        format!(
            "AngleBased on {} dims",
            self.spec.ranked_dims().count().min(2)
        )
    }

    fn repartition(
        &self,
        parts: Vec<Partition>,
        n: usize,
        _metrics: &ExecMetrics,
    ) -> Vec<Partition> {
        let ranked: Vec<SkylineDim> = self.spec.ranked_dims().take(2).copied().collect();
        if ranked.len() < 2 || n == 1 {
            // One ranked dimension has no angular structure.
            return split_evenly(flatten(parts), n);
        }
        // Pass 1: global min/max per dimension for normalization.
        let mut lo = [f64::INFINITY; 2];
        let mut hi = [f64::NEG_INFINITY; 2];
        for part in &parts {
            for row in part {
                for (k, dim) in ranked.iter().enumerate() {
                    if let Some(v) = folded_numeric(row, dim) {
                        lo[k] = lo[k].min(v);
                        hi[k] = hi[k].max(v);
                    }
                }
            }
        }
        let span = [
            (hi[0] - lo[0]).max(f64::MIN_POSITIVE),
            (hi[1] - lo[1]).max(f64::MIN_POSITIVE),
        ];
        // Pass 2: route by polar angle sector.
        let mut out: Vec<Partition> = (0..n).map(|_| Vec::new()).collect();
        for part in parts {
            for row in part {
                let sector = match (
                    folded_numeric(&row, &ranked[0]),
                    folded_numeric(&row, &ranked[1]),
                ) {
                    (Some(x), Some(y)) => {
                        let nx = ((x - lo[0]) / span[0]).clamp(0.0, 1.0);
                        let ny = ((y - lo[1]) / span[1]).clamp(0.0, 1.0);
                        let theta = ny.atan2(nx); // [0, π/2]
                        ((theta / std::f64::consts::FRAC_PI_2) * n as f64) as usize
                    }
                    _ => 0,
                };
                out[sector.min(n - 1)].push(row);
            }
        }
        out
    }
}

/// Grid partitioning with dominated-cell pruning.
///
/// The value space of the first `MAX_GRID_DIMS` ranked dimensions is cut
/// into `cells_per_dim` equal-width buckets per dimension. Each nonempty
/// cell records the component-wise best (`min`) and worst (`max`) corner
/// of its tuples in folded space; a cell whose best corner is dominated by
/// another cell's worst corner contains only dominated tuples and is
/// dropped wholesale. Surviving cells are packed onto executors
/// largest-first so partition sizes stay balanced.
#[derive(Debug, Clone)]
pub struct GridPartitioner {
    spec: SkylineSpec,
    cells_per_dim: usize,
    prune: bool,
}

/// Grid dimensionality cap: cell count is `cells_per_dim ^ dims`, so the
/// grid uses at most this many leading ranked dimensions (pruning on a
/// prefix of the dimensions remains sound — corner dominance in a subspace
/// implies row dominance only when tested on all dims, so the corner test
/// below always runs over exactly the grid dims **and** pruning additionally
/// requires the spec to have no ranked dimensions beyond the grid prefix).
const MAX_GRID_DIMS: usize = 3;

impl GridPartitioner {
    /// Grid partitioner with `cells_per_dim >= 2` buckets per dimension.
    pub fn new(spec: SkylineSpec, cells_per_dim: usize) -> Self {
        assert!(
            cells_per_dim >= 2,
            "a grid needs at least 2 cells per dimension"
        );
        // Corner dominance over a *subset* of the ranked dimensions does
        // not imply row dominance, so pruning only engages when the grid
        // covers every ranked dimension and no DIFF dimension exists.
        let prune = spec.diff_dims().count() == 0 && spec.ranked_dims().count() <= MAX_GRID_DIMS;
        GridPartitioner {
            spec,
            cells_per_dim,
            prune,
        }
    }

    fn grid_dims(&self) -> Vec<SkylineDim> {
        self.spec
            .ranked_dims()
            .take(MAX_GRID_DIMS)
            .copied()
            .collect()
    }
}

struct GridCell {
    rows: Vec<Row>,
    best: Vec<f64>,
    worst: Vec<f64>,
}

impl Partitioner for GridPartitioner {
    fn name(&self) -> &'static str {
        "Grid"
    }

    fn describe(&self) -> String {
        format!(
            "Grid {}^{}{}",
            self.cells_per_dim,
            self.grid_dims().len(),
            if self.prune { ", cell pruning" } else { "" }
        )
    }

    fn repartition(
        &self,
        parts: Vec<Partition>,
        n: usize,
        metrics: &ExecMetrics,
    ) -> Vec<Partition> {
        let dims = self.grid_dims();
        if dims.len() < 2 {
            // The single-dimension case is already O(n) via MinMaxFilter;
            // a 1-d grid adds nothing over an even split.
            return split_evenly(flatten(parts), n);
        }
        let rows = flatten(parts);

        // Pass 1: bounds per grid dimension (folded space).
        let mut lo = vec![f64::INFINITY; dims.len()];
        let mut hi = vec![f64::NEG_INFINITY; dims.len()];
        for row in &rows {
            for (k, dim) in dims.iter().enumerate() {
                if let Some(v) = folded_numeric(row, dim) {
                    lo[k] = lo[k].min(v);
                    hi[k] = hi[k].max(v);
                }
            }
        }
        let span: Vec<f64> = lo
            .iter()
            .zip(&hi)
            .map(|(l, h)| (h - l).max(f64::MIN_POSITIVE))
            .collect();

        // Pass 2: route rows into cells; rows without a full numeric
        // mapping bypass the grid (kept, never pruned).
        let k = self.cells_per_dim;
        let mut cells: std::collections::HashMap<usize, GridCell> =
            std::collections::HashMap::new();
        let mut bypass: Vec<Row> = Vec::new();
        for row in rows {
            let coords: Option<Vec<f64>> = dims.iter().map(|d| folded_numeric(&row, d)).collect();
            let Some(coords) = coords else {
                bypass.push(row);
                continue;
            };
            let mut cell_id = 0usize;
            for (c, (l, s)) in coords.iter().zip(lo.iter().zip(&span)) {
                let bucket = (((c - l) / s) * k as f64) as usize;
                cell_id = cell_id * k + bucket.min(k - 1);
            }
            let cell = cells.entry(cell_id).or_insert_with(|| GridCell {
                rows: Vec::new(),
                best: vec![f64::INFINITY; dims.len()],
                worst: vec![f64::NEG_INFINITY; dims.len()],
            });
            for (d, c) in coords.iter().enumerate() {
                cell.best[d] = cell.best[d].min(*c);
                cell.worst[d] = cell.worst[d].max(*c);
            }
            cell.rows.push(row);
        }

        // Pass 3: dominated-cell pruning. Every cell's *worst* corner is
        // encoded into a columnar point block once (the same chunked
        // kernel the skyline windows use), and each cell's *best* corner
        // is tested against all of them in one batched pass; transitivity
        // of complete-data dominance makes comparing against
        // already-pruned cells sound. A cell never "dominates itself":
        // its worst corner is component-wise >= its best corner, which can
        // never be strictly dominating.
        let mut survivors: Vec<GridCell> = Vec::with_capacity(cells.len());
        // Deterministic cell order: the greedy packing below breaks size
        // ties by arrival order, so iterating the hash map directly would
        // make the partition composition — and with it the result *order*
        // of every downstream skyline — vary run to run.
        let mut ordered: Vec<(usize, GridCell)> = cells.into_iter().collect();
        ordered.sort_by_key(|(id, _)| *id);
        let all: Vec<GridCell> = ordered.into_iter().map(|(_, c)| c).collect();
        if self.prune {
            let mut worst_corners = PointBlock::new(dims.len());
            for cell in &all {
                worst_corners.push(&cell.worst);
            }
            // Best corners are tested MULTI_LANES at a time: one walk over
            // the worst-corner block serves the whole lane group.
            let mut corner_tests = 0u64;
            let mut dominated: Vec<bool> = Vec::with_capacity(all.len());
            let mut lanes: Vec<Option<usize>> = Vec::new();
            for group in all.chunks(MULTI_LANES) {
                let points: Vec<&[f64]> = group.iter().map(|c| c.best.as_slice()).collect();
                corner_tests += worst_corners.first_dominators(&points, &mut lanes);
                dominated.extend(lanes.iter().map(Option::is_some));
            }
            metrics
                .corner_tests
                .fetch_add(corner_tests, std::sync::atomic::Ordering::Relaxed);
            for (cell, dominated) in all.into_iter().zip(dominated) {
                if dominated {
                    metrics.add_pruned_partition(cell.rows.len() as u64);
                } else {
                    survivors.push(cell);
                }
            }
        } else {
            survivors = all;
        }

        // Pass 4: pack surviving cells onto `n` partitions, largest first
        // onto the currently lightest partition (greedy LPT balancing).
        // Rows that bypassed the grid are packed like one more cell.
        let mut out: Vec<Partition> = (0..n).map(|_| Vec::new()).collect();
        let mut batches: Vec<Vec<Row>> = survivors.into_iter().map(|c| c.rows).collect();
        if !bypass.is_empty() {
            batches.push(bypass);
        }
        batches.sort_by_key(|b| std::cmp::Reverse(b.len()));
        for batch in batches {
            let lightest = out
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| p.len())
                .map(|(i, _)| i)
                .unwrap_or(0);
            out[lightest].extend(batch);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::total_rows;
    use sparkline_common::SkylineDim;

    fn spec2() -> SkylineSpec {
        SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::min(1)])
    }

    fn row2(a: i64, b: i64) -> Row {
        Row::new(vec![Value::Int64(a), Value::Int64(b)])
    }

    #[test]
    fn even_partitioner_balances() {
        let m = ExecMetrics::new();
        let rows: Vec<Row> = (0..10).map(|i| row2(i, i)).collect();
        let parts = EvenPartitioner.repartition(vec![rows], 3, &m);
        assert_eq!(parts.len(), 3);
        assert_eq!(total_rows(&parts), 10);
        assert!(parts.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn hash_partitioner_groups_equal_dim_values() {
        let m = ExecMetrics::new();
        let rows: Vec<Row> = (0..30).map(|i| row2(i % 5, (i % 5) * 2)).collect();
        let parts = SkylineHashPartitioner::new(spec2()).repartition(vec![rows], 4, &m);
        assert_eq!(total_rows(&parts), 30);
        // Each of the five distinct dim-value combinations lives in exactly
        // one partition.
        for v in 0..5i64 {
            let holders = parts
                .iter()
                .filter(|p| p.iter().any(|r| r.get(0) == &Value::Int64(v)))
                .count();
            assert_eq!(holders, 1, "value {v}");
        }
    }

    #[test]
    fn angle_partitioner_separates_trade_offs() {
        let m = ExecMetrics::new();
        let rows: Vec<Row> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    row2(1, 100 + i)
                } else {
                    row2(100 + i, 1)
                }
            })
            .collect();
        let parts = AnglePartitioner::new(spec2()).repartition(vec![rows], 4, &m);
        assert_eq!(total_rows(&parts), 20);
        let steep: Vec<usize> = parts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.iter().any(|r| r.get(0) == &Value::Int64(1)))
            .map(|(i, _)| i)
            .collect();
        let flat: Vec<usize> = parts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.iter().any(|r| r.get(1) == &Value::Int64(1)))
            .map(|(i, _)| i)
            .collect();
        assert!(
            steep.iter().all(|s| !flat.contains(s)),
            "{steep:?} vs {flat:?}"
        );
    }

    #[test]
    fn grid_prunes_fully_dominated_cells() {
        let m = ExecMetrics::new();
        // A tight cluster near the origin (the dominating cell) and a
        // tight cluster far away (entirely dominated).
        let mut rows: Vec<Row> = (0..10).map(|i| row2(i % 3, (i * 7) % 3)).collect();
        rows.extend((0..10).map(|i| row2(90 + i % 3, 90 + (i * 3) % 3)));
        let parts = GridPartitioner::new(spec2(), 4).repartition(vec![rows], 2, &m);
        let s = m.snapshot();
        assert!(s.partitions_pruned >= 1, "{s:?}");
        assert_eq!(s.rows_pruned, 10, "{s:?}");
        assert!(s.corner_tests > 0);
        // Only the near cluster survives.
        assert_eq!(total_rows(&parts), 10);
        assert!(parts
            .iter()
            .flatten()
            .all(|r| matches!(r.get(0), Value::Int64(v) if *v < 10)));
    }

    #[test]
    fn grid_pruning_never_drops_skyline_members() {
        let m = ExecMetrics::new();
        // An anti-correlated diagonal: nothing dominates anything.
        let rows: Vec<Row> = (0..50).map(|i| row2(i, 49 - i)).collect();
        let parts = GridPartitioner::new(spec2(), 4).repartition(vec![rows], 3, &m);
        assert_eq!(total_rows(&parts), 50);
        assert_eq!(m.snapshot().rows_pruned, 0);
    }

    #[test]
    fn grid_routes_null_rows_past_pruning() {
        let m = ExecMetrics::new();
        let mut rows: Vec<Row> = (0..8).map(|i| row2(i, i)).collect();
        rows.push(Row::new(vec![Value::Null, Value::Int64(1_000)]));
        rows.push(Row::new(vec![Value::Int64(1_000), Value::Null]));
        let parts = GridPartitioner::new(spec2(), 4).repartition(vec![rows], 2, &m);
        // NULL rows are incomparable — they must survive regardless of how
        // bad their non-NULL coordinates are.
        let nulls = parts
            .iter()
            .flatten()
            .filter(|r| r.values().iter().any(Value::is_null))
            .count();
        assert_eq!(nulls, 2);
    }

    #[test]
    fn grid_disables_pruning_for_diff_specs() {
        let spec = SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::min(1),
            SkylineDim::diff(2),
        ]);
        let m = ExecMetrics::new();
        // Without the DIFF guard the (90,90) cluster would be pruned, but
        // its DIFF value differs from the near cluster's: nothing may drop.
        let mut rows: Vec<Row> = (0..6)
            .map(|i| Row::new(vec![Value::Int64(i), Value::Int64(i), Value::Int64(1)]))
            .collect();
        rows.extend((0..6).map(|i| {
            Row::new(vec![
                Value::Int64(90 + i),
                Value::Int64(90 + i),
                Value::Int64(2),
            ])
        }));
        let parts = GridPartitioner::new(spec, 4).repartition(vec![rows], 2, &m);
        assert_eq!(total_rows(&parts), 12);
        assert_eq!(m.snapshot().partitions_pruned, 0);
    }

    #[test]
    fn grid_disables_pruning_beyond_grid_dims() {
        // Five ranked dims exceed the 3-dim grid: corner dominance in the
        // 3-dim prefix no longer implies row dominance, so nothing prunes.
        let spec = SkylineSpec::new((0..5).map(SkylineDim::min).collect());
        let m = ExecMetrics::new();
        let near: Vec<Row> = (0..5)
            .map(|i| Row::new((0..5).map(|_| Value::Int64(i)).collect()))
            .collect();
        let far: Vec<Row> = (0..5)
            .map(|_| {
                // Terrible in the grid prefix, optimal in dim 4.
                Row::new(vec![
                    Value::Int64(99),
                    Value::Int64(99),
                    Value::Int64(99),
                    Value::Int64(99),
                    Value::Int64(-1),
                ])
            })
            .collect();
        let rows: Vec<Row> = near.into_iter().chain(far).collect();
        let parts = GridPartitioner::new(spec, 4).repartition(vec![rows], 2, &m);
        assert_eq!(total_rows(&parts), 10);
        assert_eq!(m.snapshot().partitions_pruned, 0);
    }

    #[test]
    fn partitioners_are_usable_as_trait_objects() {
        let m = ExecMetrics::new();
        let strategies: Vec<Box<dyn Partitioner>> = vec![
            Box::new(EvenPartitioner),
            Box::new(SkylineHashPartitioner::new(spec2())),
            Box::new(AnglePartitioner::new(spec2())),
            Box::new(GridPartitioner::new(spec2(), 4)),
        ];
        for s in &strategies {
            let rows: Vec<Row> = (0..40).map(|i| row2(i % 10, (i * 3) % 10)).collect();
            let parts = s.repartition(vec![rows], 4, &m);
            assert!(!parts.is_empty(), "{}", s.name());
            assert!(total_rows(&parts) <= 40);
            assert!(!s.describe().is_empty());
        }
    }
}
