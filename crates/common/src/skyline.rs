//! Skyline vocabulary shared between the planner and the algorithms:
//! dimension types (`MIN`/`MAX`/`DIFF`) and the resolved, physical
//! description of a skyline computation.

use std::fmt;

/// How a skyline dimension participates in dominance (paper §3, Def. 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SkylineType {
    /// Smaller values are better (`D_min`).
    Min,
    /// Larger values are better (`D_max`).
    Max,
    /// Values must be equal for dominance to apply (`D_diff`); the skyline
    /// is computed separately per distinct value of this dimension.
    Diff,
}

impl SkylineType {
    /// The SQL keyword for this dimension type.
    pub fn keyword(self) -> &'static str {
        match self {
            SkylineType::Min => "MIN",
            SkylineType::Max => "MAX",
            SkylineType::Diff => "DIFF",
        }
    }
}

impl fmt::Display for SkylineType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A resolved skyline dimension: a column index into the operator's input
/// rows plus its dimension type. This is the form the physical skyline
/// operators and the pure algorithms in `sparkline-skyline` consume; the
/// logical plan carries unresolved expressions instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SkylineDim {
    /// Column position in the input row.
    pub index: usize,
    /// MIN / MAX / DIFF.
    pub ty: SkylineType,
}

impl SkylineDim {
    /// Shorthand constructor.
    pub fn new(index: usize, ty: SkylineType) -> Self {
        SkylineDim { index, ty }
    }

    /// A `MIN` dimension on column `index`.
    pub fn min(index: usize) -> Self {
        SkylineDim::new(index, SkylineType::Min)
    }

    /// A `MAX` dimension on column `index`.
    pub fn max(index: usize) -> Self {
        SkylineDim::new(index, SkylineType::Max)
    }

    /// A `DIFF` dimension on column `index`.
    pub fn diff(index: usize) -> Self {
        SkylineDim::new(index, SkylineType::Diff)
    }
}

/// The complete, resolved description of a skyline computation over rows.
///
/// `distinct` mirrors the `SKYLINE OF DISTINCT` modifier: when set, out of
/// several tuples with identical values in *all* skyline dimensions only one
/// (arbitrary) representative is returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkylineSpec {
    /// The dimensions, in user-declared order (the order has no semantic
    /// effect but determines comparison order, paper §5.1).
    pub dims: Vec<SkylineDim>,
    /// `SKYLINE OF DISTINCT ...`
    pub distinct: bool,
}

impl SkylineSpec {
    /// Spec without `DISTINCT`.
    pub fn new(dims: Vec<SkylineDim>) -> Self {
        SkylineSpec {
            dims,
            distinct: false,
        }
    }

    /// Spec with `DISTINCT`.
    pub fn distinct(dims: Vec<SkylineDim>) -> Self {
        SkylineSpec {
            dims,
            distinct: true,
        }
    }

    /// Indices of the MIN/MAX dimensions (the ones that can make a tuple
    /// strictly better).
    pub fn ranked_dims(&self) -> impl Iterator<Item = &SkylineDim> {
        self.dims.iter().filter(|d| d.ty != SkylineType::Diff)
    }

    /// Indices of the DIFF dimensions.
    pub fn diff_dims(&self) -> impl Iterator<Item = &SkylineDim> {
        self.dims.iter().filter(|d| d.ty == SkylineType::Diff)
    }

    /// Column indices of all dimensions, in declaration order.
    pub fn columns(&self) -> Vec<usize> {
        self.dims.iter().map(|d| d.index).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords() {
        assert_eq!(SkylineType::Min.to_string(), "MIN");
        assert_eq!(SkylineType::Max.to_string(), "MAX");
        assert_eq!(SkylineType::Diff.to_string(), "DIFF");
    }

    #[test]
    fn spec_partitions_dim_kinds() {
        let spec = SkylineSpec::new(vec![
            SkylineDim::min(0),
            SkylineDim::max(2),
            SkylineDim::diff(1),
        ]);
        assert_eq!(spec.ranked_dims().count(), 2);
        assert_eq!(spec.diff_dims().count(), 1);
        assert_eq!(spec.columns(), vec![0, 2, 1]);
        assert!(!spec.distinct);
        assert!(SkylineSpec::distinct(vec![]).distinct);
    }
}
