//! Dynamically typed scalar values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::types::DataType;

/// A dynamically typed scalar value flowing through the engine.
///
/// Strings are reference-counted (`Arc<str>`) because rows are cloned when
/// they enter skyline windows, hash tables, and exchanges; cloning a `Value`
/// is therefore always cheap.
///
/// # Equality and ordering semantics
///
/// `Value` implements **total** equality and hashing, which is what grouping,
/// distinct, and join hash tables need (`NULL` equals `NULL`, `NaN` equals
/// `NaN`, `-0.0` equals `0.0`). SQL's *three-valued* comparison semantics
/// (where `NULL = NULL` is unknown) are provided separately by
/// [`Value::sql_compare`] and used by the expression evaluator and the
/// dominance checker.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL / missing value (the paper's `*` placeholder).
    Null,
    /// Boolean.
    Boolean(bool),
    /// 64-bit signed integer.
    Int64(i64),
    /// 64-bit float.
    Float64(f64),
    /// UTF-8 string.
    Utf8(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Utf8(Arc::from(s.as_ref()))
    }

    /// The logical type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Boolean(_) => DataType::Boolean,
            Value::Int64(_) => DataType::Int64,
            Value::Float64(_) => DataType::Float64,
            Value::Utf8(_) => DataType::Utf8,
        }
    }

    /// Whether this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL comparison: returns `None` if either side is NULL or the types
    /// are incomparable; otherwise the ordering after numeric promotion.
    ///
    /// Integers compare to floats without loss by promoting through `f64`
    /// only when necessary; pure integer comparisons stay exact (the paper's
    /// dominance utility "matches the data type to avoid costly casting and
    /// potential loss of accuracy").
    pub fn sql_compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (Int64(a), Int64(b)) => Some(a.cmp(b)),
            (Float64(a), Float64(b)) => a.partial_cmp(b),
            (Int64(a), Float64(b)) => compare_int_float(*a, *b),
            (Float64(a), Int64(b)) => compare_int_float(*b, *a).map(Ordering::reverse),
            (Utf8(a), Utf8(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => None,
        }
    }

    /// SQL equality under three-valued logic: `None` when either side is
    /// NULL, otherwise whether the values compare equal.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_compare(other).map(|o| o == Ordering::Equal)
    }

    /// Total ordering for `ORDER BY` and sort operators: NULLs sort first
    /// (Spark's default `NULLS FIRST` for ascending order), NaN sorts last
    /// among floats, and numeric types are promoted.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Float64(a), Float64(b)) => a.total_cmp(b),
            (Int64(a), Float64(b)) => {
                compare_int_float(*a, *b).unwrap_or_else(|| (*a as f64).total_cmp(b))
            }
            (Float64(a), Int64(b)) => compare_int_float(*b, *a)
                .map(Ordering::reverse)
                .unwrap_or_else(|| a.total_cmp(&(*b as f64))),
            _ => self
                .sql_compare(other)
                // Incompatible types should have been rejected by the
                // analyzer; fall back to a stable order by type tag.
                .unwrap_or_else(|| self.type_tag().cmp(&other.type_tag())),
        }
    }

    /// Cast this value to `target`, if a lossless or standard SQL cast
    /// exists. `Null` casts to anything.
    pub fn cast_to(&self, target: DataType) -> Option<Value> {
        use Value::*;
        match (self, target) {
            (Null, _) => Some(Null),
            (v, t) if v.data_type() == t => Some(v.clone()),
            (Int64(i), DataType::Float64) => Some(Float64(*i as f64)),
            (Float64(f), DataType::Int64) => {
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    Some(Int64(*f as i64))
                } else {
                    None
                }
            }
            (Boolean(b), DataType::Int64) => Some(Int64(i64::from(*b))),
            _ => None,
        }
    }

    /// Approximate in-memory footprint in bytes, used by the runtime's
    /// memory accounting (reproducing the paper's memory measurements).
    pub fn estimated_bytes(&self) -> usize {
        match self {
            Value::Null => 8,
            Value::Boolean(_) => 8,
            Value::Int64(_) => 8,
            Value::Float64(_) => 8,
            // Arc header + string payload.
            Value::Utf8(s) => 16 + s.len(),
        }
    }

    fn type_tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Boolean(_) => 1,
            Value::Int64(_) => 2,
            Value::Float64(_) => 3,
            Value::Utf8(_) => 4,
        }
    }

    /// Canonical bit pattern for float hashing: all NaNs collapse to one
    /// pattern and `-0.0` collapses to `0.0` so that total equality and
    /// hashing agree.
    fn canonical_f64_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            0f64.to_bits()
        } else {
            f.to_bits()
        }
    }
}

/// Exact comparison of an `i64` with an `f64` (no double-rounding for large
/// integers that are not representable as `f64`).
fn compare_int_float(a: i64, b: f64) -> Option<Ordering> {
    if b.is_nan() {
        return None;
    }
    // Any f64 >= 2^63 is greater than every i64; any f64 < -2^63 is smaller.
    if b >= 9_223_372_036_854_775_808.0 {
        return Some(Ordering::Less);
    }
    if b < -9_223_372_036_854_775_808.0 {
        return Some(Ordering::Greater);
    }
    let bt = b.trunc();
    let bi = bt as i64;
    match a.cmp(&bi) {
        Ordering::Equal => {
            let frac = b - bt;
            if frac > 0.0 {
                Some(Ordering::Less)
            } else if frac < 0.0 {
                Some(Ordering::Greater)
            } else {
                Some(Ordering::Equal)
            }
        }
        other => Some(other),
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Boolean(a), Boolean(b)) => a == b,
            (Int64(a), Int64(b)) => a == b,
            (Float64(a), Float64(b)) => {
                Value::canonical_f64_bits(*a) == Value::canonical_f64_bits(*b)
            }
            // Cross-type numeric equality so that grouping keys built from
            // coerced expressions behave consistently.
            (Int64(a), Float64(b)) | (Float64(b), Int64(a)) => {
                compare_int_float(*a, *b) == Some(Ordering::Equal)
            }
            (Utf8(a), Utf8(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Boolean(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            Value::Int64(i) => {
                state.write_u8(2);
                // Integers that are exactly representable as floats must
                // hash like the equivalent float (see PartialEq).
                state.write_u64(Value::canonical_f64_bits(*i as f64));
                state.write_i64(*i);
            }
            Value::Float64(f) => {
                state.write_u8(2);
                state.write_u64(Value::canonical_f64_bits(*f));
                // Mirror the integer arm when the float is integral so the
                // Hash/Eq contract holds across Int64/Float64.
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    state.write_i64(*f as i64);
                } else {
                    state.write_i64(0);
                }
            }
            Value::Utf8(s) => {
                state.write_u8(4);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Int64(i) => write!(f, "{i}"),
            Value::Float64(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Utf8(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int64(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Boolean(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Utf8(Arc::from(v.as_str()))
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn sql_compare_null_is_unknown() {
        assert_eq!(Value::Null.sql_compare(&Value::Int64(1)), None);
        assert_eq!(Value::Int64(1).sql_compare(&Value::Null), None);
        assert_eq!(Value::Null.sql_compare(&Value::Null), None);
    }

    #[test]
    fn sql_compare_numeric_promotion() {
        assert_eq!(
            Value::Int64(2).sql_compare(&Value::Float64(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float64(2.5).sql_compare(&Value::Int64(2)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Int64(3).sql_compare(&Value::Float64(3.0)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn sql_compare_large_integers_exact() {
        // 2^60 + 1 is not representable as f64; a naive `as f64` comparison
        // would wrongly report equality with 2^60.
        let big = (1i64 << 60) + 1;
        assert_eq!(
            Value::Int64(big).sql_compare(&Value::Float64((1i64 << 60) as f64)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn sql_compare_strings() {
        assert_eq!(
            Value::str("abc").sql_compare(&Value::str("abd")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_compare_incompatible_types() {
        assert_eq!(Value::Int64(1).sql_compare(&Value::str("1")), None);
        assert_eq!(Value::Boolean(true).sql_compare(&Value::Int64(1)), None);
    }

    #[test]
    fn total_cmp_nulls_first() {
        assert_eq!(
            Value::Null.total_cmp(&Value::Int64(i64::MIN)),
            Ordering::Less
        );
        assert_eq!(Value::Int64(0).total_cmp(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn total_cmp_nan_ordering() {
        assert_eq!(
            Value::Float64(f64::NAN).total_cmp(&Value::Float64(f64::INFINITY)),
            Ordering::Greater
        );
    }

    #[test]
    fn grouping_equality_treats_null_as_equal() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Float64(f64::NAN), Value::Float64(f64::NAN));
        assert_eq!(Value::Float64(-0.0), Value::Float64(0.0));
    }

    #[test]
    fn hash_agrees_with_eq() {
        assert_eq!(
            hash_of(&Value::Float64(-0.0)),
            hash_of(&Value::Float64(0.0))
        );
        assert_eq!(
            hash_of(&Value::Float64(f64::NAN)),
            hash_of(&Value::Float64(f64::NAN))
        );
        assert_eq!(hash_of(&Value::Int64(42)), hash_of(&Value::Float64(42.0)));
        assert_eq!(Value::Int64(42), Value::Float64(42.0));
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::Int64(3).cast_to(DataType::Float64),
            Some(Value::Float64(3.0))
        );
        assert_eq!(
            Value::Float64(3.0).cast_to(DataType::Int64),
            Some(Value::Int64(3))
        );
        assert_eq!(Value::Float64(3.5).cast_to(DataType::Int64), None);
        assert_eq!(Value::Null.cast_to(DataType::Utf8), Some(Value::Null));
        assert_eq!(Value::str("x").cast_to(DataType::Int64), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int64(5).to_string(), "5");
        assert_eq!(Value::Float64(2.5).to_string(), "2.5");
        assert_eq!(Value::Float64(2.0).to_string(), "2.0");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(1i64), Value::Int64(1));
        assert_eq!(Value::from(Some(2.0f64)), Value::Float64(2.0));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from("s"), Value::str("s"));
    }
}
