#![warn(missing_docs)]

//! # sparkline-common
//!
//! Shared foundation types for the `sparkline` query engine: scalar
//! [`Value`]s, [`Row`]s, [`Schema`]s, error types, session configuration,
//! and the skyline-specific vocabulary ([`SkylineType`], [`SkylineStrategy`])
//! used across the parser, planner, optimizer, and execution layers.
//!
//! The engine reproduces *"Integration of Skyline Queries into Spark SQL"*
//! (EDBT 2023). This crate intentionally has no dependencies so that every
//! other crate in the workspace can build on it without cycles.

pub mod config;
pub mod control;
pub mod error;
pub mod row;
pub mod schema;
pub mod skyline;
pub mod stats;
pub mod strategy;
pub mod types;
pub mod value;

pub use config::{
    DominanceKernel, MergeStrategy, SessionConfig, SkylinePartitioning, SkylineStrategy,
};
pub use control::{Deadline, QueryControl, CONTROL_CHECK_ROWS};
pub use error::{Error, Result};
pub use row::Row;
pub use schema::{Field, Schema, SchemaRef};
pub use skyline::{SkylineDim, SkylineSpec, SkylineType};
pub use stats::{reservoir_sample, DatasetStats, DimStats, Reservoir};
pub use strategy::{SkylineMeta, SkylinePlan};
pub use types::DataType;
pub use value::Value;
