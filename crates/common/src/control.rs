//! Cooperative query control: wall-clock deadlines and cancellation.
//!
//! Every operator receives a [`QueryControl`] (via the execution layer's
//! task context) and calls [`QueryControl::check`] at batch/chunk
//! granularity — per pulled batch in streaming operators, every
//! [`CONTROL_CHECK_ROWS`] rows inside the tight skyline admission and
//! merge loops — so a timeout or a `SessionContext::cancel` aborts a
//! running query with bounded staleness, unwinding through `Result` so
//! every RAII memory reservation and in-flight gauge is released.
//!
//! The types live in `sparkline-common` (not the execution crate) because
//! the skyline kernels sit *below* the execution crate in the dependency
//! order and still need to observe deadlines inside their hot loops.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{Error, Result};

/// How many rows a tight loop may process between two
/// [`QueryControl::check`] calls. Coarse enough that the `Instant::now`
/// cost vanishes against the dominance tests done per chunk, fine enough
/// that timeouts fire within a few thousand rows of the limit.
pub const CONTROL_CHECK_ROWS: usize = 1024;

/// Cap on the retry-backoff multiplier: a wait grows linearly with the
/// attempt number (`base * attempt`) but never beyond
/// `base * MAX_BACKOFF_MULTIPLIER`, so a high retry budget cannot park an
/// executor thread for unbounded stretches.
pub const MAX_BACKOFF_MULTIPLIER: u32 = 8;

/// How long [`QueryControl::backoff_wait`] sleeps between control checks.
/// Bounds how stale a cancel/deadline can go unobserved mid-backoff.
const BACKOFF_CHECK_SLICE: Duration = Duration::from_millis(5);

/// Wall-clock budget for a query (the paper uses 3600 s; the reproduction
/// harness scales this down). Cheap to clone; checked cooperatively by
/// operators.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    started: Instant,
    limit: Option<Duration>,
}

impl Deadline {
    /// A deadline starting now.
    pub fn new(limit: Option<Duration>) -> Self {
        Deadline {
            started: Instant::now(),
            limit,
        }
    }

    /// Unlimited deadline.
    pub fn unlimited() -> Self {
        Deadline::new(None)
    }

    /// Elapsed time since the query started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Error with [`Error::Timeout`] if the budget is exhausted.
    pub fn check(&self) -> Result<()> {
        if let Some(limit) = self.limit {
            let elapsed = self.started.elapsed();
            if elapsed > limit {
                return Err(Error::Timeout {
                    elapsed_ms: elapsed.as_millis() as u64,
                    limit_ms: limit.as_millis() as u64,
                });
            }
        }
        Ok(())
    }
}

/// The per-query control handle: deadline + shared cancellation flag.
///
/// Cancellation is *cooperative*: `SessionContext::cancel` flips the flag,
/// and the next [`check`](QueryControl::check) in any operator unwinds the
/// query with [`Error::Cancelled`]. Cloning shares the flag, so a control
/// captured by a stream closure observes a cancel issued on the session
/// thread.
#[derive(Debug, Clone)]
pub struct QueryControl {
    deadline: Deadline,
    cancelled: Arc<AtomicBool>,
}

impl Default for QueryControl {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl QueryControl {
    /// Control with a deadline and a fresh (un-cancelled) flag.
    pub fn new(deadline: Deadline) -> Self {
        QueryControl {
            deadline,
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Control sharing an externally owned cancellation flag (the
    /// session's), so `cancel()` on the session reaches a running query.
    pub fn with_cancel_flag(deadline: Deadline, cancelled: Arc<AtomicBool>) -> Self {
        QueryControl {
            deadline,
            cancelled,
        }
    }

    /// No deadline, fresh flag.
    pub fn unlimited() -> Self {
        QueryControl::new(Deadline::unlimited())
    }

    /// The wall-clock deadline.
    pub fn deadline(&self) -> Deadline {
        self.deadline
    }

    /// The shared cancellation flag (for rebuilding a control with a new
    /// deadline without orphaning earlier clones).
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancelled)
    }

    /// Request cancellation; observed at the next cooperative check.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Error with [`Error::Cancelled`] if cancellation was requested, else
    /// with [`Error::Timeout`] if the deadline has passed.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            return Err(Error::Cancelled);
        }
        self.deadline.check()
    }

    /// Wait out a retry backoff of `base * attempt` (multiplier capped at
    /// [`MAX_BACKOFF_MULTIPLIER`]) without going deaf: the wait is carved
    /// into [`BACKOFF_CHECK_SLICE`]-sized sleeps with a
    /// [`check`](Self::check) between them, so a cancel or deadline expiry
    /// aborts the wait within milliseconds instead of parking a shared
    /// worker thread for the whole backoff. Errors exactly like `check`.
    pub fn backoff_wait(&self, base: Duration, attempt: u32) -> Result<()> {
        self.check()?;
        if base.is_zero() || attempt == 0 {
            return Ok(());
        }
        let mut remaining = base * attempt.min(MAX_BACKOFF_MULTIPLIER);
        while !remaining.is_zero() {
            let slice = remaining.min(BACKOFF_CHECK_SLICE);
            std::thread::sleep(slice);
            remaining -= slice;
            self.check()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_checks() {
        let d = Deadline::new(Some(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(5));
        assert!(d.check().unwrap_err().is_timeout());
        assert!(Deadline::unlimited().check().is_ok());
        assert!(Deadline::new(Some(Duration::from_secs(60))).check().is_ok());
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let control = QueryControl::unlimited();
        let clone = control.clone();
        assert!(clone.check().is_ok());
        control.cancel();
        assert_eq!(clone.check().unwrap_err(), Error::Cancelled);
        assert!(control.is_cancelled());
    }

    #[test]
    fn cancellation_wins_over_timeout() {
        let control = QueryControl::new(Deadline::new(Some(Duration::from_millis(1))));
        std::thread::sleep(Duration::from_millis(5));
        control.cancel();
        assert_eq!(control.check().unwrap_err(), Error::Cancelled);
    }

    #[test]
    fn backoff_multiplier_is_capped() {
        let control = QueryControl::unlimited();
        let base = Duration::from_millis(2);
        let start = Instant::now();
        control.backoff_wait(base, 1_000_000).unwrap();
        let elapsed = start.elapsed();
        // Uncapped this would be ~33 minutes; capped it is base * 8 plus
        // scheduling noise.
        assert!(elapsed < Duration::from_millis(500), "{elapsed:?}");
        assert!(elapsed >= base * MAX_BACKOFF_MULTIPLIER, "{elapsed:?}");
        // Zero base and attempt 0 return immediately.
        control.backoff_wait(Duration::ZERO, 5).unwrap();
        control.backoff_wait(base, 0).unwrap();
    }

    #[test]
    fn backoff_wait_observes_cancel_mid_sleep() {
        let control = QueryControl::unlimited();
        let clone = control.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            clone.cancel();
        });
        let start = Instant::now();
        let err = control
            .backoff_wait(Duration::from_secs(10), 1)
            .unwrap_err();
        canceller.join().unwrap();
        assert!(err.is_cancelled());
        // The 10 s wait was abandoned shortly after the cancel landed.
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn backoff_wait_observes_deadline_mid_sleep() {
        let control = QueryControl::new(Deadline::new(Some(Duration::from_millis(10))));
        let start = Instant::now();
        let err = control
            .backoff_wait(Duration::from_secs(10), 1)
            .unwrap_err();
        assert!(err.is_timeout());
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn external_flag_reaches_the_control() {
        let flag = Arc::new(AtomicBool::new(false));
        let control = QueryControl::with_cancel_flag(Deadline::unlimited(), Arc::clone(&flag));
        assert!(control.check().is_ok());
        flag.store(true, Ordering::Relaxed);
        assert!(control.check().unwrap_err().is_cancelled());
    }
}
