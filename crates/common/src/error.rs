//! Engine-wide error type.

use std::fmt;

/// Convenient result alias used across all sparkline crates.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors raised by the different stages of query processing.
///
/// The variants mirror the pipeline of the paper's Figure 2: parsing,
/// analysis (resolution), planning/optimization, and execution, plus a
/// catch-all for internal invariant violations and the benchmark harness's
/// query timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The SQL text could not be tokenized or parsed. The `position` is a
    /// byte offset into the query string, when known.
    Parse {
        /// Human-readable description of the syntax problem.
        message: String,
        /// Byte offset into the query text, when known.
        position: Option<usize>,
    },
    /// The analyzer could not resolve an identifier, a type, or an
    /// aggregate (e.g. unknown column, ambiguous reference).
    Analysis(String),
    /// Logical or physical planning failed (e.g. unsupported plan shape).
    Plan(String),
    /// A runtime failure during execution (e.g. arithmetic on incompatible
    /// values that slipped past analysis, division by zero).
    Execution(String),
    /// The query exceeded the configured wall-clock timeout (the paper's
    /// experiments use a 3600 s timeout; the harness scales this down).
    Timeout {
        /// Wall-clock time spent before aborting, in milliseconds.
        elapsed_ms: u64,
        /// The configured limit, in milliseconds.
        limit_ms: u64,
    },
    /// A transient failure fired by the deterministic fault-injection
    /// facility (`fault_seed` / `fault_rate` session knobs). Retryable:
    /// recomputing the failed partition from its source succeeds, because
    /// each injected fault fires exactly once per (site, partition, seq)
    /// key.
    Injected {
        /// Injection site label (`"scan"`, `"exchange"`, `"merge"`,
        /// `"skyline-sink"`).
        site: &'static str,
        /// Partition (or merge-group) index the fault fired in.
        partition: usize,
        /// Per-partition sequence number of the faulting step.
        seq: u64,
    },
    /// A reservation was denied because it would push the query past its
    /// configured `memory_budget`. Not retryable as-is; the session
    /// degrades the plan (streaming sinks, no pre-filter, smaller batches)
    /// before surfacing this to the caller.
    ResourceExhausted {
        /// Bytes the denied reservation asked for.
        requested: usize,
        /// Bytes already reserved when the request was denied.
        used: usize,
        /// The per-query budget, in bytes.
        budget: usize,
    },
    /// The query was cancelled via its [`QueryControl`] handle
    /// (`SessionContext::cancel`).
    ///
    /// [`QueryControl`]: crate::control::QueryControl
    Cancelled,
    /// An internal invariant was violated; indicates a bug in the engine.
    Internal(String),
}

impl Error {
    /// Shorthand for a parse error without position information.
    pub fn parse(message: impl Into<String>) -> Self {
        Error::Parse {
            message: message.into(),
            position: None,
        }
    }

    /// Shorthand for a parse error at a byte offset.
    pub fn parse_at(message: impl Into<String>, position: usize) -> Self {
        Error::Parse {
            message: message.into(),
            position: Some(position),
        }
    }

    /// Shorthand for an analysis error.
    pub fn analysis(message: impl Into<String>) -> Self {
        Error::Analysis(message.into())
    }

    /// Shorthand for a planning error.
    pub fn plan(message: impl Into<String>) -> Self {
        Error::Plan(message.into())
    }

    /// Shorthand for an execution error.
    pub fn execution(message: impl Into<String>) -> Self {
        Error::Execution(message.into())
    }

    /// Shorthand for an internal error.
    pub fn internal(message: impl Into<String>) -> Self {
        Error::Internal(message.into())
    }

    /// Whether this error is the harness timeout marker.
    pub fn is_timeout(&self) -> bool {
        matches!(self, Error::Timeout { .. })
    }

    /// Whether recomputing the failed partition can succeed. Only injected
    /// (transient) faults qualify: timeouts, cancellation, and budget
    /// denials are deterministic — retrying would repeat the failure —
    /// and everything else signals a real planning/execution problem.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Injected { .. })
    }

    /// Whether this error is a memory-budget denial.
    pub fn is_resource_exhausted(&self) -> bool {
        matches!(self, Error::ResourceExhausted { .. })
    }

    /// Whether this error is the cancellation marker.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, Error::Cancelled)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { message, position } => match position {
                Some(p) => write!(f, "parse error at byte {p}: {message}"),
                None => write!(f, "parse error: {message}"),
            },
            Error::Analysis(m) => write!(f, "analysis error: {m}"),
            Error::Plan(m) => write!(f, "planning error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Timeout {
                elapsed_ms,
                limit_ms,
            } => write!(
                f,
                "query timed out after {elapsed_ms} ms (limit {limit_ms} ms)"
            ),
            Error::Injected {
                site,
                partition,
                seq,
            } => write!(
                f,
                "injected transient fault at {site} (partition {partition}, seq {seq})"
            ),
            Error::ResourceExhausted {
                requested,
                used,
                budget,
            } => write!(
                f,
                "memory budget exhausted: requested {requested} bytes with \
                 {used} of {budget} already reserved"
            ),
            Error::Cancelled => write!(f, "query cancelled"),
            Error::Internal(m) => write!(f, "internal error (engine bug): {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            Error::parse("bad token").to_string(),
            "parse error: bad token"
        );
        assert_eq!(
            Error::parse_at("bad token", 7).to_string(),
            "parse error at byte 7: bad token"
        );
        assert!(Error::analysis("x").to_string().contains("analysis"));
        assert!(Error::plan("x").to_string().contains("planning"));
        assert!(Error::execution("x").to_string().contains("execution"));
        assert!(Error::internal("x").to_string().contains("bug"));
    }

    #[test]
    fn retryability_split() {
        let injected = Error::Injected {
            site: "scan",
            partition: 3,
            seq: 7,
        };
        assert!(injected.is_retryable());
        assert!(injected.to_string().contains("scan"));
        let exhausted = Error::ResourceExhausted {
            requested: 100,
            used: 900,
            budget: 1000,
        };
        assert!(!exhausted.is_retryable());
        assert!(exhausted.is_resource_exhausted());
        assert!(exhausted.to_string().contains("900 of 1000"));
        assert!(Error::Cancelled.is_cancelled());
        assert!(!Error::Cancelled.is_retryable());
        for fatal in [
            Error::parse("x"),
            Error::execution("x"),
            Error::internal("x"),
            Error::Timeout {
                elapsed_ms: 1,
                limit_ms: 1,
            },
        ] {
            assert!(!fatal.is_retryable(), "{fatal}");
        }
    }

    #[test]
    fn timeout_detection() {
        let t = Error::Timeout {
            elapsed_ms: 1000,
            limit_ms: 500,
        };
        assert!(t.is_timeout());
        assert!(!Error::parse("x").is_timeout());
        assert!(t.to_string().contains("1000 ms"));
    }
}
