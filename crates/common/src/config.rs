//! Session configuration: executor count, skyline strategy, optimizer
//! toggles, and the query timeout.

use std::time::Duration;

/// Which physical skyline implementation the planner should choose.
///
/// `Auto` follows the paper's Listing 8: the complete (BNL) algorithm when
/// `COMPLETE` is declared or no skyline dimension is nullable, otherwise the
/// incomplete (null-bitmap partitioned) algorithm. The remaining variants
/// force one of the four algorithms evaluated in §6.3 — the benchmark
/// harness uses them to produce the paper's comparison series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SkylineStrategy {
    /// Paper's Listing 8 selection logic.
    #[default]
    Auto,
    /// Algorithm (1): distributed local skylines + single-executor global
    /// skyline, both block-nested-loop. Only valid on complete data.
    DistributedComplete,
    /// Algorithm (2): skip the local phase; one executor computes the
    /// global skyline directly. Only valid on complete data.
    NonDistributedComplete,
    /// Algorithm (3): null-bitmap partitioned local skylines + all-pairs
    /// flagged global skyline. Valid on any data.
    DistributedIncomplete,
    /// Extension beyond the paper (its §7 future work): distributed
    /// Sort-Filter-Skyline — presorted, insert-only windows in both the
    /// local and global phase. Only valid on complete data with numeric
    /// dimensions (non-numeric inputs fall back to BNL per partition).
    SortFilterSkyline,
    /// Extension beyond the paper: statistics-driven planning. The
    /// algorithm family still follows Listing 8 (like `Auto`), but the
    /// local-phase partitioning scheme, the global merge strategy, the
    /// grid granularity, and the representative-point pre-filter are
    /// chosen from a seeded sample of the input
    /// (`sparkline_common::stats`) instead of the static config knobs.
    /// Any fixed setting preserves the old behavior.
    Adaptive,
}

impl SkylineStrategy {
    /// Whether this strategy may be applied to data that can contain NULLs
    /// in skyline dimensions.
    pub fn handles_incomplete(self) -> bool {
        matches!(
            self,
            SkylineStrategy::Auto
                | SkylineStrategy::Adaptive
                | SkylineStrategy::DistributedIncomplete
        )
    }
}

/// How the input of a distributed (complete-data) local skyline phase is
/// partitioned across executors.
///
/// `Standard` keeps the child's distribution, "avoid[ing] unnecessary
/// communication cost" (paper §2/§5.6). The remaining variants select a
/// strategy from the pluggable partitioning subsystem in
/// `sparkline_exec::partitioner`; all of them are semantically neutral
/// (the two-phase skyline is sound under any partitioning of complete
/// data), differing only in balance and local pruning power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SkylinePartitioning {
    /// Inherit the input partitioning (the paper's choice).
    #[default]
    Standard,
    /// Contiguous even re-split across the executor count.
    Even,
    /// Hash on the skyline-dimension values: identical trade-offs share an
    /// executor, collapsing ties during the local phase.
    Hash,
    /// Angle-based repartitioning before the local phase (Vlachou et al.,
    /// the paper's §7 future work).
    AngleBased,
    /// MR-GRID-style grid partitioning with dominated-cell pruning: cells
    /// whose best corner is dominated by another cell's worst corner are
    /// dropped before any local skyline runs.
    Grid,
}

/// Which dominance-kernel implementation the skyline operators run on.
///
/// The columnar block (`sparkline_skyline::columnar`) ships three compare
/// tiers — explicit AVX2 and SSE2 intrinsic loops plus the portable
/// chunked-scalar loop — and `Scalar` bypasses the block entirely, testing
/// every pair through the row-at-a-time `DominanceChecker`. All four
/// selections produce byte-identical skylines (only the performed-test
/// counters differ); the non-`Auto` values exist for A/B benchmarking and
/// for pinning CI to the portable paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DominanceKernel {
    /// Runtime dispatch: the widest SIMD tier the CPU supports
    /// (`is_x86_feature_detected!`), falling back to the chunked loop on
    /// targets without SSE2/AVX2.
    #[default]
    Auto,
    /// Force the explicit-SIMD tier (still runtime-detected AVX2 vs SSE2;
    /// degrades to the chunked loop off x86-64).
    Simd,
    /// Force the portable chunked-scalar mask loop (the PR 2 kernel,
    /// kept verbatim as the differential oracle for the SIMD tiers).
    Chunked,
    /// Bypass the columnar block; every test runs the scalar checker.
    Scalar,
}

impl DominanceKernel {
    /// Whether this selection routes tests through the columnar block at
    /// all (everything but [`DominanceKernel::Scalar`]).
    pub fn is_vectorized(self) -> bool {
        self != DominanceKernel::Scalar
    }
}

/// How the global skyline phase combines the gathered local skylines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MergeStrategy {
    /// The paper's plan: gather everything onto one executor (`AllTuples`)
    /// and run a single BNL/SFS pass — the serial bottleneck of §6.4.
    #[default]
    Flat,
    /// Hierarchical (tree) merge: local skylines are merged in k-way
    /// rounds fanned over the executor pool until one partition remains.
    /// Always produces the same row *set* as the flat merge; with the
    /// default BNL windows the output order is identical too (SFS order
    /// can differ when its non-numeric fallback engages — see
    /// `GlobalSkylineExec`).
    Hierarchical {
        /// How many partitions one merge task combines per round (>= 2).
        fan_in: usize,
    },
}

/// Per-session engine configuration.
///
/// `num_executors` plays the role of Spark's executor count: it sizes the
/// worker-thread pool *and* the default partition count, so the local
/// skyline phase runs `num_executors` ways in parallel, exactly like the
/// paper's `--num-executors` sweeps.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Number of executors (worker threads / default partitions).
    pub num_executors: usize,
    /// Wall-clock limit for a single query; `None` disables the check.
    pub timeout: Option<Duration>,
    /// Rows per batch in the pull-based stream pipeline (>= 1).
    pub batch_size: usize,
    /// Execute through the pipelined stream model (default). Disabling it
    /// materializes a full `Vec<Partition>` at every operator boundary —
    /// the seed execution model, kept as the A/B baseline for the
    /// streaming benchmarks. Results are byte-identical either way.
    pub streaming_execution: bool,
    /// Physical skyline algorithm selection override.
    pub skyline_strategy: SkylineStrategy,
    /// Partitioning scheme for the distributed complete local phase.
    pub skyline_partitioning: SkylinePartitioning,
    /// Buckets per dimension for [`SkylinePartitioning::Grid`] (>= 2).
    pub grid_cells_per_dim: usize,
    /// Fan-in of one hierarchical merge task (>= 2).
    pub merge_fan_in: usize,
    /// Minimum partition count (== executor count) at which the planner
    /// replaces the flat single-executor global merge with the
    /// hierarchical tree merge. Below it the tree degenerates to the flat
    /// plan anyway, so the exchange-free path is not worth the plan churn.
    pub hierarchical_merge_min_partitions: usize,
    /// Allow the hierarchical (tree) merge for the **incomplete** family's
    /// global phase: per-bitmap-class partial results with deferred-
    /// deletion bookkeeping are merged in k-way rounds over the executor
    /// pool instead of gathering every candidate onto one executor for the
    /// §5.7 all-pairs pass. Byte-identical results either way (see
    /// `sparkline_skyline::incomplete` for the soundness argument);
    /// disabling it pins the incomplete family to the paper's flat
    /// single-executor plan — the A/B switch of the `ext6` benchmark.
    pub incomplete_tree_merge: bool,
    /// Route skyline dominance tests through the columnar (struct-of-
    /// arrays) batch kernel where the data admits it; rows the kernel
    /// cannot represent fall back to the scalar checker per tuple. Results
    /// are identical either way; disabling this pins every operator to the
    /// scalar path (the benchmark harness A/B switch).
    pub vectorized_dominance: bool,
    /// Which compare tier the columnar kernel runs
    /// ([`DominanceKernel::Auto`] dispatches on CPU features at runtime).
    /// Ignored when [`Self::vectorized_dominance`] is off, which pins the
    /// scalar path regardless.
    pub dominance_kernel: DominanceKernel,
    /// Enable the §5.4 rewrite of single-dimension skylines into an O(n)
    /// min/max scan + filter.
    pub enable_single_dim_rewrite: bool,
    /// Enable the §5.4 pushdown of the skyline below non-reductive joins.
    pub enable_skyline_join_pushdown: bool,
    /// Enable generic optimizations (predicate pushdown, constant folding,
    /// projection pruning). Disabled only for optimizer A/B benchmarks.
    pub enable_generic_optimizations: bool,
    /// Bytes of fixed memory overhead charged per executor in the memory
    /// accountant. Models the paper's observation that each Spark executor
    /// loads its whole JVM execution environment (§6.5 / Appendix C).
    pub executor_memory_overhead: usize,
    /// Reservoir-sample size for the adaptive planner's dataset
    /// statistics and the representative pre-filter (>= 1).
    pub sample_size: usize,
    /// Seed of the planner's reservoir sampler. Fixed per session so
    /// repeated `EXPLAIN`s of the same query report the same chosen
    /// strategy.
    pub sample_seed: u64,
    /// Cap on the representative-point pre-filter broadcast to every
    /// partition stream under [`SkylineStrategy::Adaptive`]; the filter is
    /// the sample's skyline truncated to this many points.
    pub prefilter_max_points: usize,
    /// Enable the representative-point pre-filter (adaptive plans only;
    /// the complete-data family — the incomplete relation is not
    /// transitive, so discarding dominated tuples early is unsound
    /// there). Disabling it is the A/B switch of the `ext5` benchmark and
    /// the pre-filter property tests.
    pub representative_prefilter: bool,
    /// Seed of the deterministic fault injector. With the same seed, rate,
    /// and plan, the same (site, partition, seq) steps fault on every run
    /// — the reproducibility contract of the chaos tests.
    pub fault_seed: u64,
    /// Probability in `[0, 1]` that an injection site fires a transient
    /// [`Error::Injected`](crate::Error::Injected) the first time a
    /// (site, partition, seq) step executes. `0.0` (the default) disables
    /// injection entirely.
    pub fault_rate: f64,
    /// How many times a failed partition is recomputed from its source
    /// before the error is surfaced. Only transient (injected) faults are
    /// retried; `0` disables retry.
    pub max_retries: u32,
    /// Base sleep between retry attempts; attempt `k` backs off
    /// `k * retry_backoff`, with `k` capped at
    /// `control::MAX_BACKOFF_MULTIPLIER` and the wait aborted early by a
    /// cancel or deadline expiry (a backoff must never park a shared
    /// worker thread past the query's own lifetime). Zero (the default)
    /// retries immediately — recomputation in-process has no external
    /// resource to wait out, but a service deployment would raise this.
    pub retry_backoff: Duration,
    /// Per-query cap on tracked buffer bytes (excluding the fixed
    /// per-executor overhead). `None` (the default) leaves reservations
    /// unbounded; with a budget, reservations past the cap fail with
    /// [`Error::ResourceExhausted`](crate::Error::ResourceExhausted) after
    /// the session has exhausted its graceful-degradation ladder.
    pub memory_budget: Option<usize>,
    /// Rows per block written by `COPY`-style disk-table writes (>= 1) —
    /// the skipping and decode granularity of the out-of-core scan.
    pub storage_block_rows: usize,
    /// Skip disk blocks whose per-column min/max prove no row passes a
    /// pushed-down filter conjunct. Sound on its own (the `Filter` stays
    /// in the plan); the switch exists for A/B benchmarks.
    pub disk_minmax_skipping: bool,
    /// Skip disk blocks whose best dominance corner is strictly dominated
    /// by a representative pre-filter point (complete-family skyline
    /// plans only). The `ext9` benchmark's headline A/B switch.
    pub disk_dominance_skipping: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            num_executors: 2,
            timeout: None,
            batch_size: 4096,
            streaming_execution: true,
            skyline_strategy: SkylineStrategy::Auto,
            skyline_partitioning: SkylinePartitioning::Standard,
            grid_cells_per_dim: 4,
            merge_fan_in: 4,
            hierarchical_merge_min_partitions: 4,
            incomplete_tree_merge: true,
            vectorized_dominance: true,
            dominance_kernel: DominanceKernel::Auto,
            enable_single_dim_rewrite: true,
            enable_skyline_join_pushdown: true,
            enable_generic_optimizations: true,
            // ~300 MB per executor in the paper's charts; scaled 1:1000 to
            // keep reproduction numbers readable alongside real row bytes.
            executor_memory_overhead: 300 * 1024,
            sample_size: 1024,
            sample_seed: 0x5EED_1A7E,
            prefilter_max_points: 64,
            representative_prefilter: true,
            fault_seed: 0xFA17_5EED,
            fault_rate: 0.0,
            max_retries: 3,
            retry_backoff: Duration::ZERO,
            memory_budget: None,
            storage_block_rows: 2048,
            disk_minmax_skipping: true,
            disk_dominance_skipping: true,
        }
    }
}

impl SessionConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the executor count (must be at least 1).
    pub fn with_executors(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one executor is required");
        self.num_executors = n;
        self
    }

    /// Set the query timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Set the stream batch size (>= 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch size must be at least 1");
        self.batch_size = batch_size;
        self
    }

    /// Toggle the pipelined stream model (on by default); `false` selects
    /// the materialized per-boundary model.
    pub fn with_streaming_execution(mut self, on: bool) -> Self {
        self.streaming_execution = on;
        self
    }

    /// Force a skyline strategy.
    pub fn with_skyline_strategy(mut self, strategy: SkylineStrategy) -> Self {
        self.skyline_strategy = strategy;
        self
    }

    /// Choose the local-phase partitioning scheme.
    pub fn with_skyline_partitioning(mut self, partitioning: SkylinePartitioning) -> Self {
        self.skyline_partitioning = partitioning;
        self
    }

    /// Set the grid granularity (buckets per dimension, >= 2).
    pub fn with_grid_cells_per_dim(mut self, cells: usize) -> Self {
        assert!(cells >= 2, "a grid needs at least 2 cells per dimension");
        self.grid_cells_per_dim = cells;
        self
    }

    /// Set the hierarchical-merge fan-in (>= 2).
    pub fn with_merge_fan_in(mut self, fan_in: usize) -> Self {
        assert!(fan_in >= 2, "merge fan-in must be at least 2");
        self.merge_fan_in = fan_in;
        self
    }

    /// Set the partition count at which the hierarchical merge engages.
    /// `usize::MAX` effectively forces the flat single-executor merge.
    pub fn with_hierarchical_merge_min_partitions(mut self, min: usize) -> Self {
        self.hierarchical_merge_min_partitions = min;
        self
    }

    /// Toggle the hierarchical merge for the incomplete family's global
    /// phase (on by default; engages once the executor count reaches
    /// [`Self::with_hierarchical_merge_min_partitions`]).
    pub fn with_incomplete_tree_merge(mut self, on: bool) -> Self {
        self.incomplete_tree_merge = on;
        self
    }

    /// Toggle the columnar dominance kernel (on by default).
    pub fn with_vectorized_dominance(mut self, on: bool) -> Self {
        self.vectorized_dominance = on;
        self
    }

    /// Select the dominance-kernel tier (runtime-dispatched by default).
    pub fn with_dominance_kernel(mut self, kernel: DominanceKernel) -> Self {
        self.dominance_kernel = kernel;
        self
    }

    /// Toggle the single-dimension rewrite.
    pub fn with_single_dim_rewrite(mut self, on: bool) -> Self {
        self.enable_single_dim_rewrite = on;
        self
    }

    /// Toggle the skyline-join pushdown.
    pub fn with_skyline_join_pushdown(mut self, on: bool) -> Self {
        self.enable_skyline_join_pushdown = on;
        self
    }

    /// Toggle generic (non-skyline) optimizer rules.
    pub fn with_generic_optimizations(mut self, on: bool) -> Self {
        self.enable_generic_optimizations = on;
        self
    }

    /// Set the planner's reservoir-sample size (>= 1).
    pub fn with_sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Set the planner's sampling seed.
    pub fn with_sample_seed(mut self, seed: u64) -> Self {
        self.sample_seed = seed;
        self
    }

    /// Set the representative pre-filter cap (0 disables the filter).
    pub fn with_prefilter_max_points(mut self, n: usize) -> Self {
        self.prefilter_max_points = n;
        self
    }

    /// Toggle the representative-point pre-filter (on by default; only
    /// active under [`SkylineStrategy::Adaptive`]).
    pub fn with_representative_prefilter(mut self, on: bool) -> Self {
        self.representative_prefilter = on;
        self
    }

    /// Enable deterministic fault injection with a seed and a per-step
    /// firing probability in `[0, 1]`.
    pub fn with_fault_injection(mut self, seed: u64, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate must be a probability"
        );
        self.fault_seed = seed;
        self.fault_rate = rate;
        self
    }

    /// Set the per-partition retry cap (0 disables retry).
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Set the retry backoff base (capped linear; see `retry_backoff`).
    pub fn with_retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// Cap the query's tracked buffer bytes.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Set the disk-table block granularity in rows (>= 1).
    pub fn with_storage_block_rows(mut self, rows: usize) -> Self {
        assert!(rows >= 1, "a block holds at least one row");
        self.storage_block_rows = rows;
        self
    }

    /// Toggle min/max block skipping for disk scans (on by default).
    pub fn with_disk_minmax_skipping(mut self, on: bool) -> Self {
        self.disk_minmax_skipping = on;
        self
    }

    /// Toggle dominance block skipping for disk scans (on by default).
    pub fn with_disk_dominance_skipping(mut self, on: bool) -> Self {
        self.disk_dominance_skipping = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = SessionConfig::new()
            .with_executors(5)
            .with_timeout(Duration::from_secs(30))
            .with_skyline_strategy(SkylineStrategy::DistributedIncomplete)
            .with_single_dim_rewrite(false);
        assert_eq!(c.num_executors, 5);
        assert_eq!(c.timeout, Some(Duration::from_secs(30)));
        assert_eq!(c.skyline_strategy, SkylineStrategy::DistributedIncomplete);
        assert!(!c.enable_single_dim_rewrite);
        assert!(c.enable_skyline_join_pushdown);
        assert_eq!(c.batch_size, 4096, "default batch size");
        assert!(c.streaming_execution, "streaming defaults on");
        let c = SessionConfig::new()
            .with_batch_size(64)
            .with_streaming_execution(false);
        assert_eq!(c.batch_size, 64);
        assert!(!c.streaming_execution);
        assert!(c.vectorized_dominance, "vectorized kernel defaults on");
        assert!(
            !SessionConfig::new()
                .with_vectorized_dominance(false)
                .vectorized_dominance
        );
        assert_eq!(c.dominance_kernel, DominanceKernel::Auto, "kernel default");
        assert_eq!(
            SessionConfig::new()
                .with_dominance_kernel(DominanceKernel::Chunked)
                .dominance_kernel,
            DominanceKernel::Chunked
        );
        assert!(DominanceKernel::Auto.is_vectorized());
        assert!(DominanceKernel::Simd.is_vectorized());
        assert!(DominanceKernel::Chunked.is_vectorized());
        assert!(!DominanceKernel::Scalar.is_vectorized());
    }

    #[test]
    #[should_panic(expected = "at least one executor")]
    fn zero_executors_rejected() {
        let _ = SessionConfig::new().with_executors(0);
    }

    #[test]
    fn strategy_incomplete_handling() {
        assert!(SkylineStrategy::Auto.handles_incomplete());
        assert!(SkylineStrategy::Adaptive.handles_incomplete());
        assert!(SkylineStrategy::DistributedIncomplete.handles_incomplete());
        assert!(!SkylineStrategy::DistributedComplete.handles_incomplete());
        assert!(!SkylineStrategy::NonDistributedComplete.handles_incomplete());
    }

    #[test]
    fn sampling_knobs_default_and_chain() {
        let c = SessionConfig::new();
        assert_eq!(c.sample_size, 1024);
        assert_eq!(c.prefilter_max_points, 64);
        assert!(c.representative_prefilter);
        let c = SessionConfig::new()
            .with_sample_size(32)
            .with_sample_seed(99)
            .with_prefilter_max_points(0)
            .with_representative_prefilter(false);
        assert_eq!(c.sample_size, 32);
        assert_eq!(c.sample_seed, 99);
        assert_eq!(c.prefilter_max_points, 0);
        assert!(!c.representative_prefilter);
    }

    #[test]
    fn storage_knobs_default_and_chain() {
        let c = SessionConfig::new();
        assert_eq!(c.storage_block_rows, 2048);
        assert!(c.disk_minmax_skipping);
        assert!(c.disk_dominance_skipping);
        let c = SessionConfig::new()
            .with_storage_block_rows(256)
            .with_disk_minmax_skipping(false)
            .with_disk_dominance_skipping(false);
        assert_eq!(c.storage_block_rows, 256);
        assert!(!c.disk_minmax_skipping);
        assert!(!c.disk_dominance_skipping);
    }

    #[test]
    fn incomplete_tree_merge_knob_defaults_on() {
        assert!(SessionConfig::new().incomplete_tree_merge);
        assert!(
            !SessionConfig::new()
                .with_incomplete_tree_merge(false)
                .incomplete_tree_merge
        );
    }
}
