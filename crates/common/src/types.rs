//! Logical data types supported by the engine.

use std::fmt;

/// The logical type of a column or scalar expression.
///
/// The engine supports the types the paper's evaluation needs: 64-bit
/// integers and floats (skyline dimensions), booleans (e.g. the MusicBrainz
/// `video` flag), and UTF-8 strings (identifiers / labels). `Null` is the
/// type of an untyped `NULL` literal before coercion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Untyped null; coerces to any other type.
    Null,
    /// Boolean truth value.
    Boolean,
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 floating point number.
    Float64,
    /// UTF-8 string.
    Utf8,
}

impl DataType {
    /// Whether this type is numeric (`Int64` or `Float64`).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }

    /// Whether values of this type admit a total order usable in
    /// comparisons, `ORDER BY`, and skyline dominance tests.
    pub fn is_comparable(self) -> bool {
        !matches!(self, DataType::Null)
    }

    /// The common type two operand types coerce to for comparisons and
    /// arithmetic, or `None` if they are incompatible.
    ///
    /// Matches Spark SQL's (and ANSI SQL's) simple numeric promotion:
    /// `Int64` and `Float64` combine to `Float64`; `Null` coerces to the
    /// other side; everything else must match exactly.
    pub fn common_type(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Null, t) | (t, Null) => Some(t),
            (Int64, Float64) | (Float64, Int64) => Some(Float64),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Null => "NULL",
            DataType::Boolean => "BOOLEAN",
            DataType::Int64 => "BIGINT",
            DataType::Float64 => "DOUBLE",
            DataType::Utf8 => "STRING",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Boolean.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
        assert!(!DataType::Null.is_numeric());
    }

    #[test]
    fn common_type_promotion() {
        assert_eq!(
            DataType::Int64.common_type(DataType::Float64),
            Some(DataType::Float64)
        );
        assert_eq!(
            DataType::Float64.common_type(DataType::Int64),
            Some(DataType::Float64)
        );
        assert_eq!(
            DataType::Null.common_type(DataType::Utf8),
            Some(DataType::Utf8)
        );
        assert_eq!(
            DataType::Utf8.common_type(DataType::Utf8),
            Some(DataType::Utf8)
        );
        assert_eq!(DataType::Boolean.common_type(DataType::Int64), None);
        assert_eq!(DataType::Utf8.common_type(DataType::Float64), None);
    }

    #[test]
    fn comparability() {
        assert!(DataType::Int64.is_comparable());
        assert!(!DataType::Null.is_comparable());
    }

    #[test]
    fn display_names() {
        assert_eq!(DataType::Int64.to_string(), "BIGINT");
        assert_eq!(DataType::Float64.to_string(), "DOUBLE");
        assert_eq!(DataType::Utf8.to_string(), "STRING");
        assert_eq!(DataType::Boolean.to_string(), "BOOLEAN");
    }
}
