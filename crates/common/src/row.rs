//! Tuples (rows) flowing through the engine.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// A tuple of scalar [`Value`]s.
///
/// Rows are immutable once built and cheap to clone: the payload is a
/// reference-counted slice, so a clone is a pointer copy plus a refcount
/// bump. This matters because the skyline window, hash joins, and exchanges
/// all retain rows that also live in their input partitions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Row {
    values: Arc<[Value]>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row {
            values: values.into(),
        }
    }

    /// The empty row (zero columns), used as the input of a `VALUES`-less
    /// projection such as `SELECT 1`.
    pub fn empty() -> Self {
        Row {
            values: Arc::new([]),
        }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.values.len()
    }

    /// Column accessor; panics on out-of-bounds, which indicates a planner
    /// bug (all indices are produced by the analyzer against the schema).
    pub fn get(&self, index: usize) -> &Value {
        &self.values[index]
    }

    /// All values in the row.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// A new row containing the columns at `indices`, in order.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenate two rows (used by join operators).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.width() + other.width());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row::new(values)
    }

    /// Append `extra` columns to this row.
    pub fn extend(&self, extra: impl IntoIterator<Item = Value>) -> Row {
        let mut values = Vec::with_capacity(self.width() + 4);
        values.extend_from_slice(&self.values);
        values.extend(extra);
        Row::new(values)
    }

    /// Approximate in-memory footprint, used for memory accounting.
    pub fn estimated_bytes(&self) -> usize {
        // Arc<[Value]> header (ptr + len + refcounts) plus per-value payload.
        32 + self
            .values
            .iter()
            .map(Value::estimated_bytes)
            .sum::<usize>()
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

/// Convenience macro-free builder used pervasively in tests:
/// `Row::of([1i64.into(), Value::Null])`.
impl<const N: usize> From<[Value; N]> for Row {
    fn from(values: [Value; N]) -> Self {
        Row::new(values.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|&v| Value::Int64(v)).collect())
    }

    #[test]
    fn accessors() {
        let r = row(&[1, 2, 3]);
        assert_eq!(r.width(), 3);
        assert_eq!(r.get(1), &Value::Int64(2));
        assert_eq!(r.values().len(), 3);
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let r = row(&[10, 20, 30]);
        let p = r.project(&[2, 0, 0]);
        assert_eq!(
            p.values(),
            &[Value::Int64(30), Value::Int64(10), Value::Int64(10)]
        );
    }

    #[test]
    fn concat_joins_rows() {
        let a = row(&[1]);
        let b = row(&[2, 3]);
        assert_eq!(a.concat(&b), row(&[1, 2, 3]));
    }

    #[test]
    fn extend_appends() {
        let r = row(&[1]).extend([Value::Int64(9)]);
        assert_eq!(r, row(&[1, 9]));
    }

    #[test]
    fn clone_is_shallow() {
        let r = row(&[1, 2]);
        let c = r.clone();
        assert!(Arc::ptr_eq(&r.values, &c.values));
    }

    #[test]
    fn display() {
        assert_eq!(row(&[1, 2]).to_string(), "(1, 2)");
        assert_eq!(Row::empty().to_string(), "()");
    }

    #[test]
    fn estimated_bytes_grows_with_width() {
        assert!(row(&[1, 2, 3]).estimated_bytes() > row(&[1]).estimated_bytes());
    }
}
