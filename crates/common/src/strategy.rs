//! Skyline physical-strategy selection.
//!
//! The paper's Listing 8 chooses between the complete and incomplete
//! algorithm from one bit of plan metadata (can a skyline dimension be
//! NULL?). This module generalizes that into a single, testable decision
//! point consumed by the physical planner: given the [`SessionConfig`] and
//! the [`SkylineMeta`] extracted from the plan, [`SkylinePlan::select`]
//! fixes the algorithm family, the local-phase partitioning scheme, and
//! the global merge strategy. Keeping the decision here (rather than
//! inlined in the planner) lets the optimizer, the planner, and the
//! benchmark harness agree on one notion of "what will this query run".

use crate::config::{
    DominanceKernel, MergeStrategy, SessionConfig, SkylinePartitioning, SkylineStrategy,
};
use crate::skyline::SkylineSpec;
use crate::stats::DatasetStats;

/// Plan metadata the strategy decision needs, extracted from the logical
/// skyline node and its input schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkylineMeta {
    /// Whether any skyline dimension is nullable in the input schema.
    pub nullable: bool,
    /// Whether the user asserted `COMPLETE` (or the optimizer inferred it).
    pub declared_complete: bool,
    /// Number of ranked (`MIN`/`MAX`) dimensions.
    pub ranked_dims: usize,
}

impl SkylineMeta {
    /// Metadata for a resolved spec.
    pub fn new(spec: &SkylineSpec, nullable: bool, declared_complete: bool) -> Self {
        SkylineMeta {
            nullable,
            declared_complete,
            ranked_dims: spec.ranked_dims().count(),
        }
    }
}

/// The planner-facing outcome: which physical skyline plan to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkylinePlan {
    /// Complete-data algorithm family (two-phase BNL / SFS) vs the
    /// incomplete (null-bitmap + all-pairs) family.
    pub use_complete: bool,
    /// Whether a distributed local phase runs before the global phase.
    pub distributed: bool,
    /// Sort-Filter-Skyline windows instead of BNL windows.
    pub use_sfs: bool,
    /// Effective local-phase partitioning (downgraded where the scheme
    /// cannot apply, e.g. a grid over fewer than two ranked dimensions).
    pub partitioning: SkylinePartitioning,
    /// Global merge strategy for the complete-data family.
    pub merge: MergeStrategy,
    /// Route dominance tests through the columnar batch kernel (per
    /// operator; unrepresentable rows still fall back to the scalar
    /// checker tuple-by-tuple). Always equals `kernel.is_vectorized()`.
    pub vectorized: bool,
    /// Which compare tier the columnar kernel runs (`Scalar` when the
    /// `vectorized_dominance` knob is off, otherwise the session's
    /// `dominance_kernel` selection).
    pub kernel: DominanceKernel,
    /// Buckets per dimension for the grid partitioner (adaptive plans size
    /// this from the statistics; static plans copy the config knob).
    pub grid_cells_per_dim: usize,
    /// Cap on the representative-point pre-filter broadcast before the
    /// local phase; `0` disables the filter (always `0` outside the
    /// distributed complete family — the incomplete relation is not
    /// transitive, so early discards are unsound there).
    pub prefilter_max_points: usize,
    /// Whether dataset statistics drove this plan (the `Adaptive`
    /// strategy with a usable sample).
    pub adaptive: bool,
}

impl SkylinePlan {
    /// Listing 8, extended: select the physical plan shape from the
    /// session configuration and the skyline's plan metadata.
    pub fn select(config: &SessionConfig, meta: &SkylineMeta) -> Self {
        // Listing 8, line 2: the complete algorithm may be used when the
        // user asserted COMPLETE or no skyline dimension is nullable.
        // Forced strategies (the harness's algorithm series) override.
        let use_complete = match config.skyline_strategy {
            SkylineStrategy::Auto | SkylineStrategy::Adaptive => {
                meta.declared_complete || !meta.nullable
            }
            SkylineStrategy::DistributedComplete
            | SkylineStrategy::NonDistributedComplete
            | SkylineStrategy::SortFilterSkyline => true,
            SkylineStrategy::DistributedIncomplete => false,
        };
        let distributed = !matches!(
            config.skyline_strategy,
            SkylineStrategy::NonDistributedComplete
        );
        let use_sfs = matches!(config.skyline_strategy, SkylineStrategy::SortFilterSkyline);

        // Partitioning only applies to the distributed complete local
        // phase; angle and grid need at least two ranked dimensions to
        // have any structure and degrade to an even split below that.
        let partitioning = if !use_complete || !distributed {
            SkylinePartitioning::Standard
        } else {
            match config.skyline_partitioning {
                SkylinePartitioning::AngleBased | SkylinePartitioning::Grid
                    if meta.ranked_dims < 2 =>
                {
                    SkylinePartitioning::Even
                }
                p => p,
            }
        };

        // The hierarchical merge replaces the paper's single-executor
        // `AllTuples` phase once enough partitions exist for tree rounds
        // to expose real parallelism; tiny pools keep the flat plan. The
        // incomplete family joins in via its deferred-deletion partial
        // merge (`sparkline_skyline::incomplete`) unless the
        // `incomplete_tree_merge` knob pins it to the paper's flat plan.
        let merge = if distributed
            && config.num_executors >= config.hierarchical_merge_min_partitions
            && (use_complete || config.incomplete_tree_merge)
        {
            MergeStrategy::Hierarchical {
                fan_in: config.merge_fan_in.max(2),
            }
        } else {
            MergeStrategy::Flat
        };

        // The kernel is semantics-preserving on every algorithm family
        // (it falls back per tuple where it cannot represent the data),
        // so the knob passes through unconditionally. Turning the legacy
        // `vectorized_dominance` toggle off pins the scalar path
        // regardless of the tier selection.
        let kernel = if config.vectorized_dominance {
            config.dominance_kernel
        } else {
            DominanceKernel::Scalar
        };

        SkylinePlan {
            use_complete,
            distributed,
            use_sfs,
            partitioning,
            merge,
            vectorized: kernel.is_vectorized(),
            kernel,
            grid_cells_per_dim: config.grid_cells_per_dim,
            prefilter_max_points: 0,
            adaptive: false,
        }
    }

    /// Statistics-driven selection for [`SkylineStrategy::Adaptive`]: the
    /// algorithm family still follows Listing 8 (via [`Self::select`]),
    /// but the partitioning scheme, merge strategy, grid granularity, and
    /// pre-filter budget are derived from the sampled [`DatasetStats`]
    /// instead of the static config knobs.
    ///
    /// The heuristics encode the shape of the paper's §6 results and the
    /// partitioning experiments (`ext1`), keyed on the sample's skyline
    /// fraction (the direct dominance-selectivity predictor) with the
    /// Spearman estimate as a secondary trade-off signal:
    ///
    /// * **dominance-heavy** data (small skyline fraction, non-negative
    ///   correlation, ≤ 3 ranked dims) → **grid** partitioning: most
    ///   cells are provably dominated and pruned before any local phase;
    /// * **trade-off-heavy** data (large skyline fraction or clearly
    ///   negative correlation, ≤ 3 ranked dims) → **angle-based**
    ///   partitioning: rows on the same trade-off must compete in one
    ///   partition for the local phase to prune anything;
    /// * everything else (independent data, > 3 ranked dims where neither
    ///   grid corners nor 2-d angles capture the structure) → **even**
    ///   split for balance;
    /// * the **hierarchical merge** engages only when enough executors
    ///   exist *and* the skyline fraction is large — a dominance-heavy
    ///   dataset's global phase is too small to amortize tree rounds;
    /// * the **grid granularity** targets a bounded cell count per
    ///   executor instead of the fixed `grid_cells_per_dim`.
    ///
    /// Every choice is semantically neutral (any partitioning of complete
    /// data is sound, the merge strategies agree, the pre-filter only
    /// discards provably dominated tuples); the statistics steer cost
    /// only. The decision is a pure function of config + meta + stats, so
    /// repeated `EXPLAIN`s of one query agree.
    pub fn select_adaptive(
        config: &SessionConfig,
        meta: &SkylineMeta,
        stats: &DatasetStats,
    ) -> Self {
        let mut plan = SkylinePlan::select(config, meta);
        if !plan.use_complete || !plan.distributed {
            // Incomplete family (or no local phase): partitioning is fixed
            // by the null-bitmap exchange and the pre-filter is unsound
            // under the non-transitive relation — but the per-dimension
            // NULL fractions still steer the *global merge*. A sample
            // without NULLs means a single bitmap class: the local phase
            // degenerates to one partition, the global phase receives one
            // already-merged skyline, and tree rounds would only add plan
            // churn — the merge is refused (flat). NULL-bearing samples
            // spread candidates over several classes and partitions, where
            // the deferred-deletion tree merge parallelizes the §5.7
            // all-pairs phase.
            if !plan.use_complete && plan.distributed {
                plan.adaptive = true;
                let null_frac = stats.max_null_fraction();
                plan.merge = if config.incomplete_tree_merge
                    && config.num_executors >= config.hierarchical_merge_min_partitions
                    && null_frac > 0.0
                {
                    MergeStrategy::Hierarchical {
                        fan_in: (config.num_executors / 2).clamp(2, config.merge_fan_in.max(2)),
                    }
                } else {
                    MergeStrategy::Flat
                };
            }
            return plan;
        }
        plan.adaptive = true;
        let corr = stats.correlation;
        let frac = stats.skyline_fraction;
        plan.partitioning = if meta.ranked_dims < 2 || meta.ranked_dims > 3 {
            SkylinePartitioning::Even
        } else if frac >= 0.35 || corr <= -0.25 {
            SkylinePartitioning::AngleBased
        } else if frac <= 0.15 && corr >= 0.0 {
            SkylinePartitioning::Grid
        } else {
            SkylinePartitioning::Even
        };
        // Grid granularity: aim for ~8 cells per executor (enough for the
        // LPT packing to balance) but never a finer grid than the sample
        // can populate.
        if plan.partitioning == SkylinePartitioning::Grid {
            let g = meta.ranked_dims.min(3) as f64;
            let target = (config.num_executors * 8).max(16) as f64;
            let by_executors = target.powf(1.0 / g).round() as usize;
            let by_sample = (stats.sample_rows.max(1) as f64).powf(1.0 / g) as usize;
            plan.grid_cells_per_dim = by_executors.min(by_sample.max(2)).clamp(2, 16);
        }
        // Merge: tree rounds pay off when the local skylines gathered into
        // the global phase are large (trade-off-heavy data); tiny
        // skylines keep the flat single-executor pass.
        plan.merge =
            if config.num_executors >= config.hierarchical_merge_min_partitions && frac >= 0.15 {
                MergeStrategy::Hierarchical {
                    fan_in: (config.num_executors / 2).clamp(2, config.merge_fan_in.max(2)),
                }
            } else {
                MergeStrategy::Flat
            };
        if config.representative_prefilter && config.prefilter_max_points > 0 {
            // Budget the filter by expected selectivity: on trade-off-heavy
            // data most tuples survive, so every tuple pays a scan over the
            // whole point set — a quarter of the budget keeps most of the
            // pruning at a quarter of the per-tuple cost.
            plan.prefilter_max_points = if frac >= 0.35 {
                (config.prefilter_max_points / 4).max(1)
            } else {
                config.prefilter_max_points
            };
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline::SkylineDim;

    fn meta(ranked: usize, nullable: bool, complete: bool) -> SkylineMeta {
        let spec = SkylineSpec::new((0..ranked).map(SkylineDim::min).collect());
        SkylineMeta::new(&spec, nullable, complete)
    }

    #[test]
    fn listing_8_auto_selection() {
        let config = SessionConfig::default();
        assert!(SkylinePlan::select(&config, &meta(2, false, false)).use_complete);
        assert!(SkylinePlan::select(&config, &meta(2, true, true)).use_complete);
        assert!(!SkylinePlan::select(&config, &meta(2, true, false)).use_complete);
    }

    #[test]
    fn forced_strategies_override_metadata() {
        let inc =
            SessionConfig::default().with_skyline_strategy(SkylineStrategy::DistributedIncomplete);
        assert!(!SkylinePlan::select(&inc, &meta(2, false, true)).use_complete);
        let non_dist =
            SessionConfig::default().with_skyline_strategy(SkylineStrategy::NonDistributedComplete);
        let plan = SkylinePlan::select(&non_dist, &meta(2, true, false));
        assert!(plan.use_complete);
        assert!(!plan.distributed);
        assert_eq!(plan.merge, MergeStrategy::Flat);
    }

    #[test]
    fn grid_and_angle_degrade_below_two_ranked_dims() {
        let config = SessionConfig::default().with_skyline_partitioning(SkylinePartitioning::Grid);
        assert_eq!(
            SkylinePlan::select(&config, &meta(1, false, false)).partitioning,
            SkylinePartitioning::Even
        );
        assert_eq!(
            SkylinePlan::select(&config, &meta(3, false, false)).partitioning,
            SkylinePartitioning::Grid
        );
    }

    #[test]
    fn partitioning_is_standard_outside_the_distributed_complete_path() {
        let config = SessionConfig::default()
            .with_skyline_partitioning(SkylinePartitioning::Grid)
            .with_skyline_strategy(SkylineStrategy::DistributedIncomplete);
        assert_eq!(
            SkylinePlan::select(&config, &meta(3, true, false)).partitioning,
            SkylinePartitioning::Standard
        );
    }

    #[test]
    fn merge_strategy_tracks_executor_count() {
        let small = SessionConfig::default().with_executors(2);
        assert_eq!(
            SkylinePlan::select(&small, &meta(2, false, false)).merge,
            MergeStrategy::Flat
        );
        let big = SessionConfig::default().with_executors(8);
        assert_eq!(
            SkylinePlan::select(&big, &meta(2, false, false)).merge,
            MergeStrategy::Hierarchical { fan_in: 4 }
        );
        let forced_flat = SessionConfig::default()
            .with_executors(8)
            .with_hierarchical_merge_min_partitions(usize::MAX);
        assert_eq!(
            SkylinePlan::select(&forced_flat, &meta(2, false, false)).merge,
            MergeStrategy::Flat
        );
    }

    #[test]
    fn vectorized_knob_passes_through() {
        let config = SessionConfig::default();
        let plan = SkylinePlan::select(&config, &meta(2, false, false));
        assert!(plan.vectorized);
        assert_eq!(plan.kernel, DominanceKernel::Auto);
        let off = SessionConfig::default().with_vectorized_dominance(false);
        let plan = SkylinePlan::select(&off, &meta(2, false, false));
        assert!(!plan.vectorized);
        assert_eq!(plan.kernel, DominanceKernel::Scalar);
        assert!(!SkylinePlan::select(&off, &meta(2, true, false)).vectorized);
    }

    #[test]
    fn kernel_knob_passes_through() {
        for kernel in [
            DominanceKernel::Auto,
            DominanceKernel::Simd,
            DominanceKernel::Chunked,
            DominanceKernel::Scalar,
        ] {
            let config = SessionConfig::default().with_dominance_kernel(kernel);
            let plan = SkylinePlan::select(&config, &meta(2, false, false));
            assert_eq!(plan.kernel, kernel);
            assert_eq!(plan.vectorized, kernel.is_vectorized());
        }
        // `vectorized_dominance = false` wins over any tier selection.
        let off = SessionConfig::default()
            .with_dominance_kernel(DominanceKernel::Simd)
            .with_vectorized_dominance(false);
        assert_eq!(
            SkylinePlan::select(&off, &meta(2, false, false)).kernel,
            DominanceKernel::Scalar
        );
    }

    #[test]
    fn incomplete_family_tree_merges_with_enough_executors() {
        // The §5.7 global phase is no longer pinned to one executor: with
        // a big enough pool the deferred-deletion tree merge engages.
        let config = SessionConfig::default().with_executors(16);
        assert_eq!(
            SkylinePlan::select(&config, &meta(2, true, false)).merge,
            MergeStrategy::Hierarchical { fan_in: 4 }
        );
        // The knob restores the paper's flat single-executor plan.
        let pinned = SessionConfig::default()
            .with_executors(16)
            .with_incomplete_tree_merge(false);
        assert_eq!(
            SkylinePlan::select(&pinned, &meta(2, true, false)).merge,
            MergeStrategy::Flat
        );
        // Tiny pools keep the flat plan, exactly like the complete family.
        let small = SessionConfig::default().with_executors(2);
        assert_eq!(
            SkylinePlan::select(&small, &meta(2, true, false)).merge,
            MergeStrategy::Flat
        );
    }

    fn stats_with(correlation: f64, skyline_fraction: f64, sample_rows: usize) -> DatasetStats {
        DatasetStats {
            sample_rows,
            total_rows: sample_rows * 10,
            dims: 2,
            per_dim: Vec::new(),
            correlation,
            skyline_fraction,
        }
    }

    fn with_null_fraction(mut stats: DatasetStats, null_fraction: f64) -> DatasetStats {
        stats.per_dim = vec![
            crate::stats::DimStats {
                min: Some(0.0),
                max: Some(1.0),
                null_fraction,
            };
            stats.dims
        ];
        stats
    }

    #[test]
    fn adaptive_picks_grid_on_dominance_heavy_angle_on_trade_off_heavy() {
        let config = SessionConfig::default()
            .with_executors(5)
            .with_skyline_strategy(SkylineStrategy::Adaptive);
        let m = meta(2, false, false);
        let grid = SkylinePlan::select_adaptive(&config, &m, &stats_with(0.8, 0.02, 500));
        assert_eq!(grid.partitioning, SkylinePartitioning::Grid);
        assert!(grid.adaptive);
        assert!(grid.grid_cells_per_dim >= 2);
        assert_eq!(grid.merge, MergeStrategy::Flat, "tiny skyline: flat merge");
        let angle = SkylinePlan::select_adaptive(&config, &m, &stats_with(0.3, 0.6, 500));
        assert_eq!(angle.partitioning, SkylinePartitioning::AngleBased);
        let angle2 = SkylinePlan::select_adaptive(&config, &m, &stats_with(-0.8, 0.2, 500));
        assert_eq!(
            angle2.partitioning,
            SkylinePartitioning::AngleBased,
            "negative correlation alone also selects angles"
        );
        let even = SkylinePlan::select_adaptive(&config, &m, &stats_with(0.0, 0.25, 500));
        assert_eq!(even.partitioning, SkylinePartitioning::Even);
    }

    #[test]
    fn adaptive_high_dims_fall_back_to_even() {
        let config = SessionConfig::default()
            .with_executors(5)
            .with_skyline_strategy(SkylineStrategy::Adaptive);
        let plan = SkylinePlan::select_adaptive(
            &config,
            &meta(8, false, false),
            &stats_with(0.9, 0.02, 500),
        );
        assert_eq!(plan.partitioning, SkylinePartitioning::Even);
    }

    #[test]
    fn adaptive_merge_tracks_skyline_size_and_executors() {
        let config = SessionConfig::default()
            .with_executors(8)
            .with_skyline_strategy(SkylineStrategy::Adaptive);
        let m = meta(2, false, false);
        let big = SkylinePlan::select_adaptive(&config, &m, &stats_with(-0.5, 0.5, 500));
        assert!(matches!(big.merge, MergeStrategy::Hierarchical { .. }));
        let tiny = SkylinePlan::select_adaptive(&config, &m, &stats_with(0.9, 0.01, 500));
        assert_eq!(tiny.merge, MergeStrategy::Flat);
        let small_pool = SessionConfig::default()
            .with_executors(2)
            .with_skyline_strategy(SkylineStrategy::Adaptive);
        let plan = SkylinePlan::select_adaptive(&small_pool, &m, &stats_with(-0.5, 0.5, 500));
        assert_eq!(plan.merge, MergeStrategy::Flat, "tiny pool keeps flat");
    }

    #[test]
    fn adaptive_prefilter_budget_follows_config() {
        let m = meta(2, false, false);
        let stats = stats_with(0.0, 0.1, 500);
        let on = SessionConfig::default().with_skyline_strategy(SkylineStrategy::Adaptive);
        assert_eq!(
            SkylinePlan::select_adaptive(&on, &m, &stats).prefilter_max_points,
            on.prefilter_max_points
        );
        let off = on.clone().with_representative_prefilter(false);
        assert_eq!(
            SkylinePlan::select_adaptive(&off, &m, &stats).prefilter_max_points,
            0
        );
        // Static plans never carry a pre-filter budget.
        assert_eq!(SkylinePlan::select(&on, &m).prefilter_max_points, 0);
    }

    #[test]
    fn adaptive_incomplete_keeps_partitioning_and_prefilter_fixed() {
        let config = SessionConfig::default()
            .with_executors(8)
            .with_skyline_strategy(SkylineStrategy::Adaptive);
        // Nullable, not declared complete: Listing 8 selects the
        // incomplete family; partitioning stays Standard and the
        // pre-filter must stay off (non-transitive relation) — only the
        // global merge is steered by the statistics.
        let plan = SkylinePlan::select_adaptive(
            &config,
            &meta(2, true, false),
            &with_null_fraction(stats_with(-0.9, 0.5, 500), 0.3),
        );
        assert!(!plan.use_complete);
        assert_eq!(plan.partitioning, SkylinePartitioning::Standard);
        assert_eq!(plan.prefilter_max_points, 0);
        assert!(plan.adaptive, "the merge choice is statistics-driven");
    }

    #[test]
    fn adaptive_incomplete_merge_follows_null_fractions() {
        let config = SessionConfig::default()
            .with_executors(8)
            .with_skyline_strategy(SkylineStrategy::Adaptive);
        let m = meta(2, true, false);
        // NULL-bearing sample: several bitmap classes → tree merge.
        let tree = SkylinePlan::select_adaptive(
            &config,
            &m,
            &with_null_fraction(stats_with(0.0, 0.3, 500), 0.4),
        );
        assert!(
            matches!(tree.merge, MergeStrategy::Hierarchical { .. }),
            "{tree:?}"
        );
        // A sample without NULLs predicts a single bitmap class: the
        // global phase receives one already-merged local skyline, so the
        // tree merge is refused even though the static knobs allow it.
        let flat = SkylinePlan::select_adaptive(
            &config,
            &m,
            &with_null_fraction(stats_with(0.0, 0.3, 500), 0.0),
        );
        assert_eq!(flat.merge, MergeStrategy::Flat);
        assert!(flat.adaptive);
        // The knob and the executor floor still gate the tree.
        let pinned = SkylinePlan::select_adaptive(
            &config.clone().with_incomplete_tree_merge(false),
            &m,
            &with_null_fraction(stats_with(0.0, 0.3, 500), 0.4),
        );
        assert_eq!(pinned.merge, MergeStrategy::Flat);
        let small = SkylinePlan::select_adaptive(
            &SessionConfig::default()
                .with_executors(2)
                .with_skyline_strategy(SkylineStrategy::Adaptive),
            &m,
            &with_null_fraction(stats_with(0.0, 0.3, 500), 0.4),
        );
        assert_eq!(small.merge, MergeStrategy::Flat);
    }
}
