//! Skyline physical-strategy selection.
//!
//! The paper's Listing 8 chooses between the complete and incomplete
//! algorithm from one bit of plan metadata (can a skyline dimension be
//! NULL?). This module generalizes that into a single, testable decision
//! point consumed by the physical planner: given the [`SessionConfig`] and
//! the [`SkylineMeta`] extracted from the plan, [`SkylinePlan::select`]
//! fixes the algorithm family, the local-phase partitioning scheme, and
//! the global merge strategy. Keeping the decision here (rather than
//! inlined in the planner) lets the optimizer, the planner, and the
//! benchmark harness agree on one notion of "what will this query run".

use crate::config::{MergeStrategy, SessionConfig, SkylinePartitioning, SkylineStrategy};
use crate::skyline::SkylineSpec;

/// Plan metadata the strategy decision needs, extracted from the logical
/// skyline node and its input schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkylineMeta {
    /// Whether any skyline dimension is nullable in the input schema.
    pub nullable: bool,
    /// Whether the user asserted `COMPLETE` (or the optimizer inferred it).
    pub declared_complete: bool,
    /// Number of ranked (`MIN`/`MAX`) dimensions.
    pub ranked_dims: usize,
}

impl SkylineMeta {
    /// Metadata for a resolved spec.
    pub fn new(spec: &SkylineSpec, nullable: bool, declared_complete: bool) -> Self {
        SkylineMeta {
            nullable,
            declared_complete,
            ranked_dims: spec.ranked_dims().count(),
        }
    }
}

/// The planner-facing outcome: which physical skyline plan to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkylinePlan {
    /// Complete-data algorithm family (two-phase BNL / SFS) vs the
    /// incomplete (null-bitmap + all-pairs) family.
    pub use_complete: bool,
    /// Whether a distributed local phase runs before the global phase.
    pub distributed: bool,
    /// Sort-Filter-Skyline windows instead of BNL windows.
    pub use_sfs: bool,
    /// Effective local-phase partitioning (downgraded where the scheme
    /// cannot apply, e.g. a grid over fewer than two ranked dimensions).
    pub partitioning: SkylinePartitioning,
    /// Global merge strategy for the complete-data family.
    pub merge: MergeStrategy,
    /// Route dominance tests through the columnar batch kernel (per
    /// operator; unrepresentable rows still fall back to the scalar
    /// checker tuple-by-tuple).
    pub vectorized: bool,
}

impl SkylinePlan {
    /// Listing 8, extended: select the physical plan shape from the
    /// session configuration and the skyline's plan metadata.
    pub fn select(config: &SessionConfig, meta: &SkylineMeta) -> Self {
        // Listing 8, line 2: the complete algorithm may be used when the
        // user asserted COMPLETE or no skyline dimension is nullable.
        // Forced strategies (the harness's algorithm series) override.
        let use_complete = match config.skyline_strategy {
            SkylineStrategy::Auto => meta.declared_complete || !meta.nullable,
            SkylineStrategy::DistributedComplete
            | SkylineStrategy::NonDistributedComplete
            | SkylineStrategy::SortFilterSkyline => true,
            SkylineStrategy::DistributedIncomplete => false,
        };
        let distributed = !matches!(
            config.skyline_strategy,
            SkylineStrategy::NonDistributedComplete
        );
        let use_sfs = matches!(config.skyline_strategy, SkylineStrategy::SortFilterSkyline);

        // Partitioning only applies to the distributed complete local
        // phase; angle and grid need at least two ranked dimensions to
        // have any structure and degrade to an even split below that.
        let partitioning = if !use_complete || !distributed {
            SkylinePartitioning::Standard
        } else {
            match config.skyline_partitioning {
                SkylinePartitioning::AngleBased | SkylinePartitioning::Grid
                    if meta.ranked_dims < 2 =>
                {
                    SkylinePartitioning::Even
                }
                p => p,
            }
        };

        // The hierarchical merge replaces the paper's single-executor
        // `AllTuples` phase once enough partitions exist for tree rounds
        // to expose real parallelism; tiny pools keep the flat plan.
        let merge = if use_complete
            && distributed
            && config.num_executors >= config.hierarchical_merge_min_partitions
        {
            MergeStrategy::Hierarchical {
                fan_in: config.merge_fan_in.max(2),
            }
        } else {
            MergeStrategy::Flat
        };

        SkylinePlan {
            use_complete,
            distributed,
            use_sfs,
            partitioning,
            merge,
            // The kernel is semantics-preserving on every algorithm family
            // (it falls back per tuple where it cannot represent the
            // data), so the knob passes through unconditionally.
            vectorized: config.vectorized_dominance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline::SkylineDim;

    fn meta(ranked: usize, nullable: bool, complete: bool) -> SkylineMeta {
        let spec = SkylineSpec::new((0..ranked).map(SkylineDim::min).collect());
        SkylineMeta::new(&spec, nullable, complete)
    }

    #[test]
    fn listing_8_auto_selection() {
        let config = SessionConfig::default();
        assert!(SkylinePlan::select(&config, &meta(2, false, false)).use_complete);
        assert!(SkylinePlan::select(&config, &meta(2, true, true)).use_complete);
        assert!(!SkylinePlan::select(&config, &meta(2, true, false)).use_complete);
    }

    #[test]
    fn forced_strategies_override_metadata() {
        let inc =
            SessionConfig::default().with_skyline_strategy(SkylineStrategy::DistributedIncomplete);
        assert!(!SkylinePlan::select(&inc, &meta(2, false, true)).use_complete);
        let non_dist =
            SessionConfig::default().with_skyline_strategy(SkylineStrategy::NonDistributedComplete);
        let plan = SkylinePlan::select(&non_dist, &meta(2, true, false));
        assert!(plan.use_complete);
        assert!(!plan.distributed);
        assert_eq!(plan.merge, MergeStrategy::Flat);
    }

    #[test]
    fn grid_and_angle_degrade_below_two_ranked_dims() {
        let config = SessionConfig::default().with_skyline_partitioning(SkylinePartitioning::Grid);
        assert_eq!(
            SkylinePlan::select(&config, &meta(1, false, false)).partitioning,
            SkylinePartitioning::Even
        );
        assert_eq!(
            SkylinePlan::select(&config, &meta(3, false, false)).partitioning,
            SkylinePartitioning::Grid
        );
    }

    #[test]
    fn partitioning_is_standard_outside_the_distributed_complete_path() {
        let config = SessionConfig::default()
            .with_skyline_partitioning(SkylinePartitioning::Grid)
            .with_skyline_strategy(SkylineStrategy::DistributedIncomplete);
        assert_eq!(
            SkylinePlan::select(&config, &meta(3, true, false)).partitioning,
            SkylinePartitioning::Standard
        );
    }

    #[test]
    fn merge_strategy_tracks_executor_count() {
        let small = SessionConfig::default().with_executors(2);
        assert_eq!(
            SkylinePlan::select(&small, &meta(2, false, false)).merge,
            MergeStrategy::Flat
        );
        let big = SessionConfig::default().with_executors(8);
        assert_eq!(
            SkylinePlan::select(&big, &meta(2, false, false)).merge,
            MergeStrategy::Hierarchical { fan_in: 4 }
        );
        let forced_flat = SessionConfig::default()
            .with_executors(8)
            .with_hierarchical_merge_min_partitions(usize::MAX);
        assert_eq!(
            SkylinePlan::select(&forced_flat, &meta(2, false, false)).merge,
            MergeStrategy::Flat
        );
    }

    #[test]
    fn vectorized_knob_passes_through() {
        let config = SessionConfig::default();
        assert!(SkylinePlan::select(&config, &meta(2, false, false)).vectorized);
        let off = SessionConfig::default().with_vectorized_dominance(false);
        assert!(!SkylinePlan::select(&off, &meta(2, false, false)).vectorized);
        assert!(!SkylinePlan::select(&off, &meta(2, true, false)).vectorized);
    }

    #[test]
    fn incomplete_family_always_merges_flat() {
        let config = SessionConfig::default().with_executors(16);
        assert_eq!(
            SkylinePlan::select(&config, &meta(2, true, false)).merge,
            MergeStrategy::Flat
        );
    }
}
