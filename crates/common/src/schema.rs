//! Relational schemas: fields, qualifiers, and name resolution.

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::types::DataType;

/// Shared reference to a [`Schema`]; plans and operators store schemas by
/// reference because they are copied throughout the plan tree.
pub type SchemaRef = Arc<Schema>;

/// A named, typed column in a schema.
///
/// `qualifier` is the relation name or alias the column originates from
/// (`hotels.price` has qualifier `hotels`); it is used by the analyzer to
/// resolve qualified references and detect ambiguity. `nullable` drives the
/// skyline algorithm selection of the paper's Listing 8: if all skyline
/// dimensions are non-nullable, the faster complete algorithm is chosen even
/// without the `COMPLETE` keyword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    name: String,
    data_type: DataType,
    nullable: bool,
    qualifier: Option<String>,
}

impl Field {
    /// An unqualified field.
    pub fn new(name: impl Into<String>, data_type: DataType, nullable: bool) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable,
            qualifier: None,
        }
    }

    /// A field qualified by a relation name/alias.
    pub fn qualified(
        qualifier: impl Into<String>,
        name: impl Into<String>,
        data_type: DataType,
        nullable: bool,
    ) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable,
            qualifier: Some(qualifier.into()),
        }
    }

    /// Column name (without qualifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    /// Whether the column may contain NULL.
    pub fn nullable(&self) -> bool {
        self.nullable
    }

    /// The originating relation name/alias, if any.
    pub fn qualifier(&self) -> Option<&str> {
        self.qualifier.as_deref()
    }

    /// This field with a different qualifier.
    pub fn with_qualifier(&self, qualifier: impl Into<String>) -> Field {
        let mut f = self.clone();
        f.qualifier = Some(qualifier.into());
        f
    }

    /// This field with the qualifier removed.
    pub fn unqualified(&self) -> Field {
        let mut f = self.clone();
        f.qualifier = None;
        f
    }

    /// This field with a different nullability.
    pub fn with_nullable(&self, nullable: bool) -> Field {
        let mut f = self.clone();
        f.nullable = nullable;
        f
    }

    /// This field renamed.
    pub fn with_name(&self, name: impl Into<String>) -> Field {
        let mut f = self.clone();
        f.name = name.into();
        f
    }

    /// `qualifier.name` or just `name`.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether a reference `[qualifier.]name` matches this field.
    /// Matching is case-insensitive, like Spark SQL's default resolver.
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|fq| fq.eq_ignore_ascii_case(q)),
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.qualified_name(), self.data_type)?;
        if self.nullable {
            f.write_str("?")?;
        }
        Ok(())
    }
}

/// An ordered list of [`Field`]s describing the output of a plan node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The empty schema (e.g. input of a table-less `SELECT`).
    pub fn empty() -> SchemaRef {
        Arc::new(Schema::new(vec![]))
    }

    /// Wrap in an [`Arc`].
    pub fn into_ref(self) -> SchemaRef {
        Arc::new(self)
    }

    /// The fields, in output order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Resolve `[qualifier.]name` to a column index.
    ///
    /// Errors on unknown columns and on ambiguous unqualified references —
    /// the same failure modes Spark's analyzer reports. As in Spark (and
    /// ANSI SQL), an unqualified reference that matches several fields *of
    /// the same qualifier* is ambiguous too.
    pub fn index_of(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.matches(qualifier, name))
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => {
                let display = match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.to_string(),
                };
                Err(Error::analysis(format!(
                    "column '{display}' not found; available: [{}]",
                    self.fields
                        .iter()
                        .map(Field::qualified_name)
                        .collect::<Vec<_>>()
                        .join(", ")
                )))
            }
            1 => Ok(matches[0]),
            _ => {
                let display = match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.to_string(),
                };
                Err(Error::analysis(format!(
                    "reference '{display}' is ambiguous; candidates: [{}]",
                    matches
                        .iter()
                        .map(|&i| self.fields[i].qualified_name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )))
            }
        }
    }

    /// Like [`Schema::index_of`] but returns `None` instead of an
    /// unknown-column error (still errors on ambiguity).
    pub fn find(&self, qualifier: Option<&str>, name: &str) -> Result<Option<usize>> {
        match self.index_of(qualifier, name) {
            Ok(i) => Ok(Some(i)),
            Err(Error::Analysis(m)) if m.contains("not found") => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// Schema with every field re-qualified to `qualifier` (subquery alias
    /// `FROM (...) AS t` or table alias `hotels AS h`).
    pub fn with_qualifier(&self, qualifier: &str) -> Schema {
        Schema::new(
            self.fields
                .iter()
                .map(|f| f.with_qualifier(qualifier))
                .collect(),
        )
    }

    /// Schema with all qualifiers stripped.
    pub fn unqualified(&self) -> Schema {
        Schema::new(self.fields.iter().map(Field::unqualified).collect())
    }

    /// A projection of this schema onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{field}")?;
        }
        f.write_str("]")
    }
}

impl From<Vec<Field>> for Schema {
    fn from(fields: Vec<Field>) -> Self {
        Schema::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_schema() -> Schema {
        Schema::new(vec![
            Field::qualified("hotels", "price", DataType::Float64, false),
            Field::qualified("hotels", "rating", DataType::Int64, true),
            Field::qualified("rooms", "price", DataType::Float64, false),
        ])
    }

    #[test]
    fn qualified_lookup() {
        let s = test_schema();
        assert_eq!(s.index_of(Some("hotels"), "price").unwrap(), 0);
        assert_eq!(s.index_of(Some("rooms"), "price").unwrap(), 2);
    }

    #[test]
    fn unqualified_lookup_unique() {
        let s = test_schema();
        assert_eq!(s.index_of(None, "rating").unwrap(), 1);
    }

    #[test]
    fn unqualified_lookup_ambiguous() {
        let s = test_schema();
        let err = s.index_of(None, "price").unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = test_schema();
        assert_eq!(s.index_of(Some("HOTELS"), "PRICE").unwrap(), 0);
    }

    #[test]
    fn unknown_column_error_lists_candidates() {
        let s = test_schema();
        let err = s.index_of(None, "stars").unwrap_err();
        assert!(err.to_string().contains("hotels.price"), "{err}");
    }

    #[test]
    fn find_returns_none_for_unknown() {
        let s = test_schema();
        assert_eq!(s.find(None, "stars").unwrap(), None);
        assert_eq!(s.find(Some("hotels"), "rating").unwrap(), Some(1));
        assert!(s.find(None, "price").is_err());
    }

    #[test]
    fn join_concatenates() {
        let a = Schema::new(vec![Field::new("x", DataType::Int64, false)]);
        let b = Schema::new(vec![Field::new("y", DataType::Int64, false)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        assert_eq!(j.field(1).name(), "y");
    }

    #[test]
    fn requalify() {
        let s = test_schema().with_qualifier("t");
        assert!(s.fields().iter().all(|f| f.qualifier() == Some("t")));
        assert_eq!(s.index_of(Some("t"), "rating").unwrap(), 1);
        assert!(s.index_of(Some("hotels"), "rating").is_err());
    }

    #[test]
    fn project_subset() {
        let s = test_schema().project(&[1]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.field(0).name(), "rating");
    }

    #[test]
    fn display() {
        let s = Schema::new(vec![Field::qualified("t", "a", DataType::Int64, true)]);
        assert_eq!(s.to_string(), "[t.a: BIGINT?]");
    }
}
