//! Sampling-based dataset statistics for adaptive skyline planning.
//!
//! The paper fixes the partitioning scheme and algorithm per query via
//! configuration, but its own experiments (§6) show the best choice flips
//! with dimensionality and correlation. This module computes the
//! statistics that decision needs from a small, **seeded** reservoir
//! sample of the input: row counts, per-dimension min/max/NULL fraction,
//! and a Spearman-style rank-correlation estimate over the ranked skyline
//! dimensions (negative ≙ anti-correlated trade-offs, positive ≙
//! correlated). `SkylinePlan::select_adaptive` consumes a
//! [`DatasetStats`] to pick the partitioning scheme, merge strategy, and
//! grid granularity; the same sample seeds the representative-point
//! pre-filter (see `sparkline_skyline::prefilter`).
//!
//! Everything here is deterministic: the reservoir is driven by a
//! SplitMix64 generator seeded from `SessionConfig::sample_seed`, so
//! repeated `EXPLAIN`s of the same query report the same chosen strategy.

use crate::row::Row;
use crate::skyline::{SkylineSpec, SkylineType};
use crate::value::Value;

/// Minimal deterministic generator (SplitMix64) for reservoir sampling.
/// Local so `sparkline-common` keeps its no-dependency guarantee.
#[derive(Debug, Clone)]
pub struct SampleRng(u64);

impl SampleRng {
    /// Generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SampleRng(seed)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n` (`n > 0`).
    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Incremental Algorithm-R reservoir: push rows one at a time (e.g. rows
/// of a stream, or base-table rows surviving a plan-time filter chain)
/// and take a uniform `cap`-row sample at the end, deterministic per
/// seed.
#[derive(Debug, Clone)]
pub struct Reservoir {
    cap: usize,
    rng: SampleRng,
    seen: usize,
    rows: Vec<Row>,
}

impl Reservoir {
    /// Empty reservoir of `cap` rows driven by `seed`.
    pub fn new(cap: usize, seed: u64) -> Self {
        Reservoir {
            cap,
            rng: SampleRng::new(seed),
            seen: 0,
            rows: Vec::with_capacity(cap.min(64)),
        }
    }

    /// Offer one row to the sample.
    pub fn push(&mut self, row: Row) {
        if self.cap == 0 {
            self.seen += 1;
            return;
        }
        if self.seen < self.cap {
            self.rows.push(row);
        } else {
            let j = self.rng.index(self.seen + 1);
            if j < self.cap {
                self.rows[j] = row;
            }
        }
        self.seen += 1;
    }

    /// Rows offered so far (the population size of the sample).
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// The sampled rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }
}

/// Algorithm-R reservoir sample of `cap` rows, deterministic per seed.
/// Returns all rows (cloned) when the input fits the reservoir.
pub fn reservoir_sample(rows: &[Row], cap: usize, seed: u64) -> Vec<Row> {
    let mut reservoir = Reservoir::new(cap, seed);
    for row in rows {
        reservoir.push(row.clone());
    }
    reservoir.into_rows()
}

/// Numeric view of a value; `None` for NULL / NaN / non-numeric values
/// (the same values the partitioners route past their numeric machinery).
pub fn numeric_value(v: &Value) -> Option<f64> {
    match v {
        Value::Int64(i) => Some(*i as f64),
        Value::Float64(f) if !f.is_nan() => Some(*f),
        Value::Boolean(b) => Some(f64::from(*b)),
        _ => None,
    }
}

/// Per-dimension statistics over the sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimStats {
    /// Smallest numeric value seen (raw space, before MIN/MAX folding);
    /// `None` when no sampled row had a numeric value in this dimension.
    pub min: Option<f64>,
    /// Largest numeric value seen.
    pub max: Option<f64>,
    /// Fraction of sampled rows that are NULL-like (NULL, NaN, or
    /// non-numeric) in this dimension.
    pub null_fraction: f64,
}

/// Dataset statistics the adaptive planner consumes, computed from a
/// (reservoir) sample of the skyline operator's input.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Rows in the sample the statistics were computed from.
    pub sample_rows: usize,
    /// Rows in the population the sample was drawn from (for the
    /// planner's samples: the rows actually surviving the filter chain
    /// above the base relation).
    pub total_rows: usize,
    /// Skyline dimensions (all kinds, in spec order).
    pub dims: usize,
    /// Per-dimension statistics, aligned with the spec's dimensions.
    pub per_dim: Vec<DimStats>,
    /// Mean pairwise Spearman rank correlation over the leading ranked
    /// dimensions, in **folded** space (MIN/MAX collapsed to
    /// smaller-is-better): `< 0` means anti-correlated trade-offs (large
    /// skylines), `> 0` correlated data (small skylines). `0.0` when the
    /// sample admits no estimate (too few rows, non-numeric dims).
    pub correlation: f64,
    /// Fraction of (a capped prefix of) the sample that is
    /// Pareto-optimal — the direct selectivity predictor the
    /// partitioning heuristics key on. Near 0 for correlated data (a few
    /// rows dominate everything), large for anti-correlated trade-offs.
    pub skyline_fraction: f64,
}

/// How many leading ranked dimensions feed the correlation estimate; the
/// pairwise average over more dims adds cost without changing the sign,
/// which is what the planning heuristics consume.
const CORRELATION_DIMS: usize = 3;

/// Cap on the rows entering the O(n²) skyline-fraction estimate, keeping
/// plan-time cost bounded independently of the configured sample size.
const SKYLINE_ESTIMATE_CAP: usize = 256;

/// Fixed seed of the estimate's sub-sample. A positional prefix would be
/// biased when the sample preserves input order (inputs at or below the
/// reservoir size come back verbatim, so a table sorted on a dimension
/// would hand the estimator only its best rows); re-sampling keeps the
/// slice uniform and the whole computation deterministic.
const SKYLINE_ESTIMATE_SEED: u64 = 0xE571_AA7E;

impl DatasetStats {
    /// Compute statistics from a sample of the skyline input.
    ///
    /// `sample` should come from [`reservoir_sample`] (or be the full
    /// input); `total_rows` is the size of the population it was drawn
    /// from.
    pub fn from_sample(sample: &[Row], total_rows: usize, spec: &SkylineSpec) -> Self {
        let n = sample.len();
        let per_dim: Vec<DimStats> = spec
            .dims
            .iter()
            .map(|dim| {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                let mut nulls = 0usize;
                let mut seen = false;
                for row in sample {
                    match numeric_value(row.get(dim.index)) {
                        Some(v) => {
                            min = min.min(v);
                            max = max.max(v);
                            seen = true;
                        }
                        None => nulls += 1,
                    }
                }
                DimStats {
                    min: seen.then_some(min),
                    max: seen.then_some(max),
                    null_fraction: if n == 0 { 0.0 } else { nulls as f64 / n as f64 },
                }
            })
            .collect();

        // Folded columns of the leading ranked dimensions: rows missing a
        // numeric value in one dimension are skipped per pair.
        let ranked: Vec<_> = spec.ranked_dims().take(CORRELATION_DIMS).collect();
        let columns: Vec<Vec<Option<f64>>> = ranked
            .iter()
            .map(|dim| {
                sample
                    .iter()
                    .map(|row| {
                        numeric_value(row.get(dim.index)).map(|v| {
                            if dim.ty == SkylineType::Max {
                                -v
                            } else {
                                v
                            }
                        })
                    })
                    .collect()
            })
            .collect();
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for a in 0..columns.len() {
            for b in (a + 1)..columns.len() {
                let (xs, ys): (Vec<f64>, Vec<f64>) = columns[a]
                    .iter()
                    .zip(&columns[b])
                    .filter_map(|(x, y)| x.zip(*y))
                    .unzip();
                if let Some(rho) = spearman(&xs, &ys) {
                    sum += rho;
                    pairs += 1;
                }
            }
        }
        DatasetStats {
            sample_rows: n,
            total_rows,
            dims: spec.dims.len(),
            per_dim,
            correlation: if pairs == 0 { 0.0 } else { sum / pairs as f64 },
            skyline_fraction: if n > SKYLINE_ESTIMATE_CAP {
                estimate_skyline_fraction(
                    &reservoir_sample(sample, SKYLINE_ESTIMATE_CAP, SKYLINE_ESTIMATE_SEED),
                    spec,
                )
            } else {
                estimate_skyline_fraction(sample, spec)
            },
        }
    }

    /// Largest per-dimension NULL fraction — the signal that the
    /// complete-data family would inflate the skyline with incomparable
    /// tuples.
    pub fn max_null_fraction(&self) -> f64 {
        self.per_dim
            .iter()
            .map(|d| d.null_fraction)
            .fold(0.0, f64::max)
    }
}

/// Whether `a` strictly dominates `b` under the complete relation,
/// evaluated in folded numeric space. Conservative: any NULL-like value
/// in a ranked dimension makes the pair incomparable (matching the
/// complete checker), and `DIFF` dimensions require exact value equality.
fn estimate_dominates(a: &Row, b: &Row, spec: &SkylineSpec) -> bool {
    let mut strictly = false;
    for dim in &spec.dims {
        let (va, vb) = (a.get(dim.index), b.get(dim.index));
        if dim.ty == SkylineType::Diff {
            if va != vb {
                return false;
            }
            continue;
        }
        let (Some(x), Some(y)) = (numeric_value(va), numeric_value(vb)) else {
            return false;
        };
        let (x, y) = if dim.ty == SkylineType::Max {
            (-x, -y)
        } else {
            (x, y)
        };
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Fraction of `rows` no other row strictly dominates — the sample's
/// skyline proportion under the (estimated) complete relation.
fn estimate_skyline_fraction(rows: &[Row], spec: &SkylineSpec) -> f64 {
    if rows.is_empty() || spec.ranked_dims().count() == 0 {
        return 0.0;
    }
    let optimal = rows
        .iter()
        .filter(|row| {
            !rows
                .iter()
                .any(|other| estimate_dominates(other, row, spec))
        })
        .count();
    optimal as f64 / rows.len() as f64
}

/// Average ranks (ties share the mean of their positions), 1-based.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("no NaN in ranks"));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = mean_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson over average ranks); `None` when
/// fewer than 3 pairs or a column is constant.
fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let n = xs.len();
    if n < 3 || n != ys.len() {
        return None;
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    let mean = (n as f64 + 1.0) / 2.0;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in rx.iter().zip(&ry) {
        cov += (x - mean) * (y - mean);
        var_x += (x - mean) * (x - mean);
        var_y += (y - mean) * (y - mean);
    }
    if var_x == 0.0 || var_y == 0.0 {
        return None;
    }
    Some(cov / (var_x * var_y).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline::SkylineDim;

    fn rows2(data: &[(f64, f64)]) -> Vec<Row> {
        data.iter()
            .map(|&(a, b)| Row::new(vec![Value::Float64(a), Value::Float64(b)]))
            .collect()
    }

    fn spec2() -> SkylineSpec {
        SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::min(1)])
    }

    #[test]
    fn reservoir_is_deterministic_and_sized() {
        let rows = rows2(&(0..100).map(|i| (i as f64, i as f64)).collect::<Vec<_>>());
        let a = reservoir_sample(&rows, 16, 7);
        let b = reservoir_sample(&rows, 16, 7);
        assert_eq!(a, b, "same seed, same sample");
        assert_eq!(a.len(), 16);
        let c = reservoir_sample(&rows, 16, 8);
        assert_ne!(a, c, "different seed, different sample");
        assert_eq!(reservoir_sample(&rows, 200, 7).len(), 100, "cap > input");
        assert!(reservoir_sample(&rows, 0, 7).is_empty());
    }

    #[test]
    fn incremental_reservoir_matches_slice_sampling() {
        let rows = rows2(&(0..300).map(|i| (i as f64, i as f64)).collect::<Vec<_>>());
        let mut r = Reservoir::new(16, 7);
        for row in &rows {
            r.push(row.clone());
        }
        assert_eq!(r.seen(), 300);
        assert_eq!(r.into_rows(), reservoir_sample(&rows, 16, 7));
        let mut zero = Reservoir::new(0, 7);
        zero.push(rows[0].clone());
        assert_eq!(zero.seen(), 1);
        assert!(zero.into_rows().is_empty());
    }

    #[test]
    fn correlated_data_scores_positive_anti_negative() {
        let corr: Vec<(f64, f64)> = (0..200).map(|i| (i as f64, i as f64 + 0.5)).collect();
        let anti: Vec<(f64, f64)> = (0..200).map(|i| (i as f64, 200.0 - i as f64)).collect();
        let s_corr = DatasetStats::from_sample(&rows2(&corr), 200, &spec2());
        let s_anti = DatasetStats::from_sample(&rows2(&anti), 200, &spec2());
        assert!(s_corr.correlation > 0.9, "{}", s_corr.correlation);
        assert!(s_anti.correlation < -0.9, "{}", s_anti.correlation);
    }

    #[test]
    fn max_dims_fold_into_goodness_space() {
        // d0 MIN, d1 MAX with d1 = d0: good in one means bad in the other,
        // so folded correlation is negative.
        let spec = SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::max(1)]);
        let rows = rows2(&(0..100).map(|i| (i as f64, i as f64)).collect::<Vec<_>>());
        let s = DatasetStats::from_sample(&rows, 100, &spec);
        assert!(s.correlation < -0.9, "{}", s.correlation);
    }

    #[test]
    fn per_dim_stats_track_nulls_and_bounds() {
        let rows = vec![
            Row::new(vec![Value::Int64(4), Value::Null]),
            Row::new(vec![Value::Int64(-1), Value::Float64(2.5)]),
            Row::new(vec![Value::Int64(9), Value::Null]),
            Row::new(vec![Value::Null, Value::Float64(7.0)]),
        ];
        let s = DatasetStats::from_sample(&rows, 4, &spec2());
        assert_eq!(s.per_dim[0].min, Some(-1.0));
        assert_eq!(s.per_dim[0].max, Some(9.0));
        assert_eq!(s.per_dim[0].null_fraction, 0.25);
        assert_eq!(s.per_dim[1].null_fraction, 0.5);
        assert_eq!(s.max_null_fraction(), 0.5);
    }

    #[test]
    fn degenerate_samples_yield_neutral_correlation() {
        assert_eq!(
            DatasetStats::from_sample(&[], 0, &spec2()).correlation,
            0.0,
            "empty sample"
        );
        let constant = rows2(&[(1.0, 2.0), (1.0, 3.0), (1.0, 4.0)]);
        assert_eq!(
            DatasetStats::from_sample(&constant, 3, &spec2()).correlation,
            0.0,
            "constant column"
        );
        let strings: Vec<Row> = (0..5)
            .map(|i| Row::new(vec![Value::str(format!("s{i}")), Value::Int64(i)]))
            .collect();
        assert_eq!(
            DatasetStats::from_sample(&strings, 5, &spec2()).correlation,
            0.0,
            "non-numeric column"
        );
    }

    #[test]
    fn skyline_fraction_separates_distributions() {
        // Correlated diagonal: one point dominates everything.
        let corr: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64)).collect();
        let s = DatasetStats::from_sample(&rows2(&corr), 100, &spec2());
        assert!(s.skyline_fraction <= 0.02, "{}", s.skyline_fraction);
        // Anti-correlated diagonal: everything is Pareto-optimal.
        let anti: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 100.0 - i as f64)).collect();
        let s = DatasetStats::from_sample(&rows2(&anti), 100, &spec2());
        assert_eq!(s.skyline_fraction, 1.0);
    }

    #[test]
    fn skyline_fraction_respects_diff_and_nulls() {
        // Two DIFF groups: the dominated-looking row of group 2 is
        // incomparable to group 1 and stays optimal.
        let spec = SkylineSpec::new(vec![SkylineDim::diff(0), SkylineDim::min(1)]);
        let rows = vec![
            Row::new(vec![Value::Int64(1), Value::Int64(0)]),
            Row::new(vec![Value::Int64(2), Value::Int64(9)]),
        ];
        let s = DatasetStats::from_sample(&rows, 2, &spec);
        assert_eq!(s.skyline_fraction, 1.0);
        // A NULL makes the pair incomparable: both rows optimal.
        let rows = vec![
            Row::new(vec![Value::Int64(0), Value::Int64(0)]),
            Row::new(vec![Value::Null, Value::Int64(9)]),
        ];
        let s = DatasetStats::from_sample(&rows, 2, &spec2());
        assert_eq!(s.skyline_fraction, 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 1.0, 2.0, 3.0, 3.0, 4.0];
        let ys = [2.0, 2.0, 3.0, 5.0, 5.0, 9.0];
        let rho = spearman(&xs, &ys).unwrap();
        assert!(rho > 0.99, "{rho}");
    }
}
