//! Node-level resolution rules: the analogue of the Catalyst analyzer
//! rules the paper extends, including the skyline-specific ones:
//!
//! * [`resolve_exprs_against_aggregate`] — aggregate propagation into
//!   skyline/sort/having expressions (paper Listings 7 and 10). Aggregate
//!   calls appearing above an `Aggregate` node are matched against the
//!   aggregate's result expressions; missing aggregates are *added* to the
//!   `Aggregate` and the plan is later re-projected to its original shape.
//! * [`add_missing_columns`] — the `ResolveMissingReferences` extension
//!   (paper Listing 6): skyline (and sort) expressions may reference
//!   columns that the final projection drops; the projection is widened,
//!   the operator resolved, and a restoring projection added on top.

use std::sync::Arc;

use sparkline_common::{Result, Schema};
use sparkline_plan::{BoundColumn, Expr, LogicalPlan};

use crate::resolver::{resolve_expr, Scope};

/// Strip `AS` aliases for structural comparison.
fn strip_alias(e: &Expr) -> &Expr {
    match e {
        Expr::Alias { expr, .. } => strip_alias(expr),
        other => other,
    }
}

/// Outcome of resolving expressions against an `Aggregate` node.
pub struct AggregateResolution {
    /// The rewritten expressions, bound against the (possibly extended)
    /// aggregate output.
    pub exprs: Vec<Expr>,
    /// The aggregate's result expressions, possibly extended with newly
    /// introduced aggregates or group columns.
    pub new_result_exprs: Vec<Expr>,
    /// Whether result expressions were added (a restoring projection is
    /// then required, as in Listing 6 lines 10–12).
    pub grew: bool,
}

/// Resolve `exprs` (sort keys, skyline dimensions, or a HAVING predicate)
/// against an `Aggregate` node (paper Listings 7/10).
///
/// * Named columns bind against the aggregate *output* (group columns and
///   aliases like `total` for `sum(v) AS total`).
/// * Aggregate calls have their arguments bound against the aggregate
///   *input* and are then matched structurally against existing result
///   expressions; unmatched calls are appended as new result expressions.
/// * Named columns not in the output but equal to a group expression are
///   appended likewise (e.g. `ORDER BY k` when `k` is grouped but not
///   selected).
pub fn resolve_exprs_against_aggregate(
    exprs: Vec<Expr>,
    group_exprs: &[Expr],
    result_exprs: &[Expr],
    input_schema: &Schema,
    output_schema: &Schema,
    outer: Option<&Schema>,
) -> Result<AggregateResolution> {
    let mut extras: Vec<Expr> = Vec::new();
    let base_len = result_exprs.len();

    let bind_to_output = |candidate: Expr, extras: &mut Vec<Expr>| -> Expr {
        // Match against existing result expressions first.
        for (i, r) in result_exprs.iter().enumerate() {
            if strip_alias(r) == &candidate {
                return Expr::BoundColumn(BoundColumn {
                    index: i,
                    field: output_schema.field(i).clone(),
                });
            }
        }
        // Then against already-added extras.
        for (j, r) in extras.iter().enumerate() {
            if r == &candidate {
                let field = candidate
                    .to_field(input_schema)
                    .unwrap_or_else(|_| output_schema.field(0).clone());
                return Expr::BoundColumn(BoundColumn {
                    index: base_len + j,
                    field,
                });
            }
        }
        // Introduce a new result expression (the "missing aggregate" path
        // of Listing 7).
        let field = match candidate.to_field(input_schema) {
            Ok(f) => f,
            Err(_) => return candidate,
        };
        extras.push(candidate);
        Expr::BoundColumn(BoundColumn {
            index: base_len + extras.len() - 1,
            field,
        })
    };

    let rewritten: Vec<Expr> = exprs
        .into_iter()
        .map(|e| {
            e.transform_up(&mut |node| {
                match node {
                    Expr::Column(c) => {
                        // Bind against the aggregate output (group columns,
                        // aliases).
                        if let Some(i) = output_schema.find(c.qualifier.as_deref(), &c.name)? {
                            return Ok(Expr::BoundColumn(BoundColumn {
                                index: i,
                                field: output_schema.field(i).clone(),
                            }));
                        }
                        // Otherwise: maybe a grouped input column that was
                        // not selected.
                        if let Some(i) = input_schema.find(c.qualifier.as_deref(), &c.name)? {
                            let bound = Expr::BoundColumn(BoundColumn {
                                index: i,
                                field: input_schema.field(i).clone(),
                            });
                            if group_exprs.iter().any(|g| strip_alias(g) == &bound) {
                                return Ok(bind_to_output(bound, &mut extras));
                            }
                        }
                        Ok(Expr::Column(c))
                    }
                    Expr::Aggregate { func, arg } => {
                        // Bind the argument against the aggregate *input*.
                        let arg = match arg {
                            Some(a) => {
                                let scope = Scope::with_outer(input_schema, outer);
                                Some(Box::new(resolve_expr(*a, &scope)?))
                            }
                            None => None,
                        };
                        let candidate = Expr::Aggregate { func, arg };
                        if !candidate.resolved() {
                            return Ok(candidate);
                        }
                        Ok(bind_to_output(candidate, &mut extras))
                    }
                    other => Ok(other),
                }
            })
        })
        .collect::<Result<_>>()?;

    let mut new_result_exprs = result_exprs.to_vec();
    let grew = !extras.is_empty();
    new_result_exprs.extend(extras);
    Ok(AggregateResolution {
        exprs: rewritten,
        new_result_exprs,
        grew,
    })
}

/// The `ResolveMissingReferences` extension of paper Listing 6: resolve
/// `exprs` against a `Projection` child, widening the projection with
/// columns from *its* input when the expressions reference columns the
/// projection dropped.
///
/// Returns the rewritten expressions plus the widened projection
/// expressions, or `None` if nothing could be improved.
pub fn add_missing_columns(
    exprs: Vec<Expr>,
    proj_exprs: &[Expr],
    proj_input_schema: &Schema,
    proj_output_schema: &Schema,
) -> Result<Option<(Vec<Expr>, Vec<Expr>)>> {
    let mut new_proj = proj_exprs.to_vec();
    // Fields of the (growing) projection output, for binding.
    let mut out_fields: Vec<sparkline_common::Field> = proj_output_schema.fields().to_vec();
    let mut changed = false;

    let rewritten: Vec<Expr> = exprs
        .into_iter()
        .map(|e| {
            e.transform_up(&mut |node| {
                let Expr::Column(c) = node else {
                    return Ok(node);
                };
                // Already available in the projection output?
                let current = Schema::new(out_fields.clone());
                if let Some(i) = current.find(c.qualifier.as_deref(), &c.name)? {
                    return Ok(Expr::BoundColumn(BoundColumn {
                        index: i,
                        field: current.field(i).clone(),
                    }));
                }
                // Available below the projection? Widen it (Listing 6,
                // resolveExprsAndAddMissingAttrs).
                if let Some(i) = proj_input_schema.find(c.qualifier.as_deref(), &c.name)? {
                    let field = proj_input_schema.field(i).clone();
                    new_proj.push(Expr::BoundColumn(BoundColumn {
                        index: i,
                        field: field.clone(),
                    }));
                    out_fields.push(field.clone());
                    changed = true;
                    return Ok(Expr::BoundColumn(BoundColumn {
                        index: out_fields.len() - 1,
                        field,
                    }));
                }
                Ok(Expr::Column(c))
            })
        })
        .collect::<Result<_>>()?;

    if changed {
        Ok(Some((rewritten, new_proj)))
    } else {
        Ok(None)
    }
}

/// Build a projection restoring the first `original.len()` columns — used
/// after an operator's child was widened (Listing 6 line 12).
pub fn restore_projection(plan: LogicalPlan, original: &Schema) -> LogicalPlan {
    LogicalPlan::Projection {
        exprs: (0..original.len())
            .map(|i| {
                Expr::BoundColumn(BoundColumn {
                    index: i,
                    field: original.field(i).clone(),
                })
            })
            .collect(),
        input: Arc::new(plan),
    }
}
