//! Post-resolution validation: every expression must be bound and
//! well-typed, aggregates must be fully propagated, and skyline dimensions
//! must be comparable.

use sparkline_common::{DataType, Error, Result};
use sparkline_plan::{Expr, JoinCondition, LogicalPlan};

/// Validate a fully analyzed plan. Returns the first problem found.
pub fn validate(plan: &LogicalPlan) -> Result<()> {
    if !plan.resolved() {
        return Err(Error::analysis(
            first_unresolved(plan).unwrap_or_else(|| "plan did not fully resolve".to_string()),
        ));
    }
    validate_node(plan)
}

/// Describe the first unresolved item for a useful error message.
fn first_unresolved(plan: &LogicalPlan) -> Option<String> {
    let mut found = None;
    plan.visit_expressions(&mut |e| {
        if found.is_none() {
            match e {
                Expr::Column(c) => {
                    found = Some(format!("cannot resolve column '{c}'"));
                }
                Expr::Wildcard { .. } => {
                    found = Some("'*' could not be expanded".to_string());
                }
                _ => {}
            }
        }
    });
    if found.is_none() {
        // No unresolved expression: an unresolved relation remains.
        fn find_relation(plan: &LogicalPlan) -> Option<String> {
            if let LogicalPlan::UnresolvedRelation { name } = plan {
                return Some(format!("table '{name}' not found in the catalog"));
            }
            plan.children().iter().find_map(|c| find_relation(c))
        }
        found = find_relation(plan);
    }
    found
}

fn validate_node(plan: &LogicalPlan) -> Result<()> {
    for child in plan.children() {
        validate_node(child)?;
    }
    match plan {
        LogicalPlan::Projection { exprs, input } => {
            let schema = input.schema()?;
            for e in exprs {
                if e.contains_aggregate() {
                    return Err(Error::analysis(format!(
                        "aggregate expression '{e}' is not allowed in a plain projection"
                    )));
                }
                e.to_field(&schema)?;
            }
        }
        LogicalPlan::Filter { predicate, input } => {
            if predicate.contains_aggregate() {
                return Err(Error::analysis(format!(
                    "aggregate in filter predicate '{predicate}' could not be resolved \
                     against an Aggregate node"
                )));
            }
            let schema = input.schema()?;
            let (ty, _) = predicate.data_type_and_nullable(&schema)?;
            if !matches!(ty, DataType::Boolean | DataType::Null) {
                return Err(Error::analysis(format!(
                    "filter predicate '{predicate}' must be boolean, got {ty}"
                )));
            }
            // Validate correlated subqueries recursively.
            let mut sub_result = Ok(());
            let mut visit = |e: &Expr| {
                if let Expr::Exists { subquery, .. } = e {
                    if sub_result.is_ok() {
                        sub_result = validate_node(subquery);
                    }
                }
            };
            fn walk(e: &Expr, f: &mut dyn FnMut(&Expr)) {
                f(e);
                for c in e.children() {
                    walk(c, f);
                }
            }
            walk(predicate, &mut visit);
            sub_result?;
        }
        LogicalPlan::Aggregate {
            group_exprs,
            aggr_exprs,
            input,
        } => {
            let schema = input.schema()?;
            for g in group_exprs {
                if g.contains_aggregate() {
                    return Err(Error::analysis(format!(
                        "aggregate function in GROUP BY expression '{g}'"
                    )));
                }
                g.to_field(&schema)?;
            }
            for e in aggr_exprs {
                check_result_expr(e, group_exprs)?;
                e.to_field(&schema)?;
            }
        }
        LogicalPlan::Sort { exprs, input } => {
            let schema = input.schema()?;
            for s in exprs {
                if s.expr.contains_aggregate() {
                    return Err(Error::analysis(format!(
                        "aggregate in ORDER BY key '{}' could not be resolved",
                        s.expr
                    )));
                }
                s.expr.to_field(&schema)?;
            }
        }
        LogicalPlan::Join {
            left,
            right,
            condition,
            ..
        } => match condition {
            JoinCondition::On(e) => {
                let combined = left.schema()?.join(right.schema()?.as_ref());
                let (ty, _) = e.data_type_and_nullable(&combined)?;
                if !matches!(ty, DataType::Boolean | DataType::Null) {
                    return Err(Error::analysis(format!(
                        "join condition '{e}' must be boolean, got {ty}"
                    )));
                }
            }
            JoinCondition::Using(cols) => {
                return Err(Error::internal(format!(
                    "USING ({}) should have been desugared by the analyzer",
                    cols.join(", ")
                )));
            }
            JoinCondition::None => {}
        },
        LogicalPlan::Skyline { dims, input, .. } => {
            if dims.is_empty() {
                return Err(Error::analysis(
                    "SKYLINE OF requires at least one dimension",
                ));
            }
            // The incomplete pipeline encodes NULL patterns in a u64 bitmap
            // (§5.7); 64 dimensions is far beyond any practical skyline.
            if dims.len() > 64 {
                return Err(Error::analysis(format!(
                    "SKYLINE OF supports at most 64 dimensions, got {}",
                    dims.len()
                )));
            }
            let schema = input.schema()?;
            for d in dims {
                if d.child.contains_aggregate() {
                    return Err(Error::analysis(format!(
                        "aggregate in skyline dimension '{}' could not be resolved",
                        d.child
                    )));
                }
                let (ty, _) = d.child.data_type_and_nullable(&schema)?;
                if !ty.is_comparable() {
                    return Err(Error::analysis(format!(
                        "skyline dimension '{}' has no comparable type ({ty})",
                        d.child
                    )));
                }
            }
        }
        LogicalPlan::MinMaxFilter { expr, input, .. } => {
            let schema = input.schema()?;
            let (ty, _) = expr.data_type_and_nullable(&schema)?;
            if !ty.is_comparable() {
                return Err(Error::analysis(format!(
                    "min/max dimension '{expr}' has no comparable type ({ty})"
                )));
            }
        }
        _ => {}
    }
    Ok(())
}

/// An aggregate result expression must be built from group expressions,
/// aggregate calls, and literals (ANSI SQL / Spark rule).
fn check_result_expr(e: &Expr, group_exprs: &[Expr]) -> Result<()> {
    fn strip(e: &Expr) -> &Expr {
        match e {
            Expr::Alias { expr, .. } => strip(expr),
            other => other,
        }
    }
    let stripped = strip(e);
    if group_exprs.iter().any(|g| strip(g) == stripped) {
        return Ok(());
    }
    match stripped {
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                if a.contains_aggregate() {
                    return Err(Error::analysis(format!("nested aggregate in '{stripped}'")));
                }
            }
            Ok(())
        }
        Expr::BoundColumn(c) => Err(Error::analysis(format!(
            "column '{}' must appear in GROUP BY or inside an aggregate function",
            c.field.qualified_name()
        ))),
        Expr::Literal(_) => Ok(()),
        other => {
            for child in other.children() {
                check_result_expr(child, group_exprs)?;
            }
            Ok(())
        }
    }
}
