//! Expression-level name resolution: binding named columns to input
//! positions, expanding wildcards, and recursing into correlated `EXISTS`
//! subqueries with an outer scope.

use sparkline_common::{Result, Schema};
use sparkline_plan::{BoundColumn, Expr};

/// The schemas visible while resolving one node's expressions.
#[derive(Clone, Copy)]
pub struct Scope<'a> {
    /// The node's input schema.
    pub schema: &'a Schema,
    /// The enclosing query's input schema, for correlated subqueries.
    /// Only one level of correlation is supported (sufficient for the
    /// paper's reference rewrites, Listing 4/13).
    pub outer: Option<&'a Schema>,
}

impl<'a> Scope<'a> {
    /// Scope without an outer query.
    pub fn new(schema: &'a Schema) -> Self {
        Scope {
            schema,
            outer: None,
        }
    }

    /// Scope inside a subquery correlated with `outer`.
    pub fn with_outer(schema: &'a Schema, outer: Option<&'a Schema>) -> Self {
        Scope { schema, outer }
    }
}

/// Bind named columns in `expr` against the scope.
///
/// Unresolvable columns are left untouched (later rules — missing
/// references, aggregate propagation — may still handle them; validation
/// reports any that remain). Ambiguous references are an immediate error.
pub fn resolve_expr(expr: Expr, scope: &Scope<'_>) -> Result<Expr> {
    expr.transform_up(&mut |node| {
        let Expr::Column(column) = node else {
            return Ok(node);
        };
        // Try the local schema first.
        if let Some(index) = scope
            .schema
            .find(column.qualifier.as_deref(), &column.name)?
        {
            return Ok(Expr::BoundColumn(BoundColumn {
                index,
                field: scope.schema.field(index).clone(),
            }));
        }
        // Fall back to the outer query (correlated reference).
        if let Some(outer) = scope.outer {
            if let Some(index) = outer.find(column.qualifier.as_deref(), &column.name)? {
                return Ok(Expr::OuterColumn(BoundColumn {
                    index,
                    field: outer.field(index).clone(),
                }));
            }
        }
        Ok(Expr::Column(column))
    })
}

/// Expand `*` / `qualifier.*` items into bound columns of `schema`.
/// Non-wildcard items pass through unchanged.
pub fn expand_wildcards(exprs: Vec<Expr>, schema: &Schema) -> Result<Vec<Expr>> {
    let mut out = Vec::with_capacity(exprs.len());
    for e in exprs {
        match e {
            Expr::Wildcard { qualifier } => {
                let before = out.len();
                for (i, field) in schema.fields().iter().enumerate() {
                    let matches = match &qualifier {
                        None => true,
                        Some(q) => field
                            .qualifier()
                            .is_some_and(|fq| fq.eq_ignore_ascii_case(q)),
                    };
                    if matches {
                        out.push(Expr::BoundColumn(BoundColumn {
                            index: i,
                            field: field.clone(),
                        }));
                    }
                }
                if out.len() == before {
                    return Err(sparkline_common::Error::analysis(match &qualifier {
                        Some(q) => format!("'{q}.*' does not match any input columns"),
                        None => "'*' with no input columns".to_string(),
                    }));
                }
            }
            other => out.push(other),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{DataType, Field};
    use sparkline_plan::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::qualified("t", "a", DataType::Int64, false),
            Field::qualified("t", "b", DataType::Float64, true),
        ])
    }

    #[test]
    fn binds_local_columns() {
        let s = schema();
        let scope = Scope::new(&s);
        let e = resolve_expr(Expr::col("a").lt(Expr::col("b")), &scope).unwrap();
        assert!(e.resolved());
        assert_eq!(e.to_string(), "(t.a#0 < t.b#1)");
    }

    #[test]
    fn unresolved_stays_unresolved() {
        let s = schema();
        let scope = Scope::new(&s);
        let e = resolve_expr(Expr::col("missing"), &scope).unwrap();
        assert_eq!(e, Expr::col("missing"));
    }

    #[test]
    fn outer_fallback_produces_outer_column() {
        let inner = schema().with_qualifier("i");
        let outer = schema().with_qualifier("o");
        let scope = Scope::with_outer(&inner, Some(&outer));
        let e = resolve_expr(Expr::qcol("i", "a").lt_eq(Expr::qcol("o", "a")), &scope).unwrap();
        assert_eq!(e.to_string(), "(i.a#0 <= outer(o.a#0))");
    }

    #[test]
    fn ambiguity_is_an_error() {
        let s = Schema::new(vec![
            Field::qualified("x", "a", DataType::Int64, false),
            Field::qualified("y", "a", DataType::Int64, false),
        ]);
        let scope = Scope::new(&s);
        assert!(resolve_expr(Expr::Column(Column::new("a")), &scope).is_err());
    }

    #[test]
    fn wildcard_expansion() {
        let s = schema();
        let exprs = expand_wildcards(vec![Expr::Wildcard { qualifier: None }], &s).unwrap();
        assert_eq!(exprs.len(), 2);
        assert!(exprs.iter().all(|e| e.resolved()));
    }

    #[test]
    fn qualified_wildcard_expansion() {
        let joined = schema().join(&schema().with_qualifier("u"));
        let exprs = expand_wildcards(
            vec![Expr::Wildcard {
                qualifier: Some("u".into()),
            }],
            &joined,
        )
        .unwrap();
        assert_eq!(exprs.len(), 2);
        assert_eq!(exprs[0].to_string(), "u.a#2");
    }

    #[test]
    fn unknown_qualifier_wildcard_errors() {
        let s = schema();
        assert!(expand_wildcards(
            vec![Expr::Wildcard {
                qualifier: Some("nope".into())
            }],
            &s
        )
        .is_err());
    }
}
