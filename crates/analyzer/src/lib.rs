#![warn(missing_docs)]

//! # sparkline-analyzer
//!
//! The analyzer resolves unresolved logical plans against a catalog: table
//! names become scans, named columns become bound positions, wildcards are
//! expanded, `USING` joins are desugared, and — the paper's extensions —
//! skyline dimensions are resolved even when they reference columns missing
//! from the projection (Listing 6) or aggregates of an `Aggregate` node
//! below (Listing 7), including through a `HAVING` filter and through
//! premature projections (Appendix B, Listings 9/10).
//!
//! Rules run to fixpoint like Catalyst's `resolveOperatorsUp` batches; the
//! final plan is validated (all names bound, expressions well-typed,
//! aggregate placement legal).

pub mod resolver;
pub mod rules;
pub mod validate;

use std::sync::Arc;

use sparkline_common::{Error, Result, Schema};
use sparkline_plan::{
    BoundColumn, CatalogProvider, Expr, JoinCondition, LogicalPlan, SkylineDimension, SortExpr,
};

use resolver::{expand_wildcards, resolve_expr, Scope};
use rules::{
    add_missing_columns, resolve_exprs_against_aggregate, restore_projection, AggregateResolution,
};

/// Maximum fixpoint iterations before giving up (Catalyst uses 100).
const MAX_ITERATIONS: usize = 50;

/// The plan analyzer. Cheap to construct; borrows the catalog.
pub struct Analyzer<'a> {
    catalog: &'a dyn CatalogProvider,
}

impl<'a> Analyzer<'a> {
    /// Create an analyzer over a catalog.
    pub fn new(catalog: &'a dyn CatalogProvider) -> Self {
        Analyzer { catalog }
    }

    /// Resolve and validate a plan.
    pub fn analyze(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        let mut current = plan.clone();
        for _ in 0..MAX_ITERATIONS {
            let next = self.resolve(&current, None)?;
            if next == current {
                break;
            }
            current = next;
        }
        validate::validate(&current)?;
        Ok(current)
    }

    /// One bottom-up resolution pass. `outer` is the enclosing query's
    /// input schema when resolving a correlated subquery.
    fn resolve(&self, plan: &LogicalPlan, outer: Option<&Schema>) -> Result<LogicalPlan> {
        let children: Vec<Arc<LogicalPlan>> = plan
            .children()
            .iter()
            .map(|c| self.resolve(c, outer).map(Arc::new))
            .collect::<Result<_>>()?;
        let node = plan.with_new_children(children);
        self.resolve_node(node, outer)
    }

    fn resolve_node(&self, plan: LogicalPlan, outer: Option<&Schema>) -> Result<LogicalPlan> {
        match plan {
            LogicalPlan::UnresolvedRelation { name } => {
                let schema = self.catalog.table_schema(&name).ok_or_else(|| {
                    Error::analysis(format!("table '{name}' not found in the catalog"))
                })?;
                // Qualify the table's columns with the name as written so
                // `name.column` references resolve.
                Ok(LogicalPlan::TableScan {
                    schema: schema.with_qualifier(&name).into_ref(),
                    name,
                })
            }

            LogicalPlan::Projection { exprs, input } => {
                if !input.resolved() || exprs.iter().all(|e| e.resolved()) {
                    return Ok(LogicalPlan::Projection { exprs, input });
                }
                let input_schema = input.schema()?;
                let exprs = expand_wildcards(exprs, &input_schema)?;
                let scope = Scope::with_outer(&input_schema, outer);
                let exprs = exprs
                    .into_iter()
                    .map(|e| resolve_expr(e, &scope))
                    .collect::<Result<_>>()?;
                Ok(LogicalPlan::Projection { exprs, input })
            }

            LogicalPlan::Filter { predicate, input } => {
                if !input.resolved() {
                    return Ok(LogicalPlan::Filter { predicate, input });
                }
                let input_schema = input.schema()?;
                // Resolve correlated EXISTS subqueries: the subquery sees
                // this filter's input as its outer scope.
                let predicate = predicate.transform_up(&mut |e| match e {
                    Expr::Exists { subquery, negated } if !subquery.resolved() => {
                        let resolved = self.resolve(&subquery, Some(&input_schema))?;
                        Ok(Expr::Exists {
                            subquery: Arc::new(resolved),
                            negated,
                        })
                    }
                    other => Ok(other),
                })?;
                let scope = Scope::with_outer(&input_schema, outer);
                let predicate = resolve_expr(predicate, &scope)?;

                // HAVING over an Aggregate: propagate aggregate calls into
                // the Aggregate node (Listing 7 machinery).
                if predicate.contains_aggregate() {
                    if let LogicalPlan::Aggregate {
                        group_exprs,
                        aggr_exprs,
                        input: agg_input,
                    } = input.as_ref()
                    {
                        let original_schema = input.schema()?;
                        let AggregateResolution {
                            mut exprs,
                            new_result_exprs,
                            grew,
                        } = resolve_exprs_against_aggregate(
                            vec![predicate],
                            group_exprs,
                            aggr_exprs,
                            agg_input.schema()?.as_ref(),
                            &original_schema,
                            outer,
                        )?;
                        let new_agg = LogicalPlan::Aggregate {
                            group_exprs: group_exprs.clone(),
                            aggr_exprs: new_result_exprs,
                            input: Arc::clone(agg_input),
                        };
                        let filtered = LogicalPlan::Filter {
                            predicate: exprs.remove(0),
                            input: Arc::new(new_agg),
                        };
                        return Ok(if grew {
                            restore_projection(filtered, &original_schema)
                        } else {
                            filtered
                        });
                    }
                }
                Ok(LogicalPlan::Filter { predicate, input })
            }

            LogicalPlan::Aggregate {
                group_exprs,
                aggr_exprs,
                input,
            } => {
                if !input.resolved() {
                    return Ok(LogicalPlan::Aggregate {
                        group_exprs,
                        aggr_exprs,
                        input,
                    });
                }
                let input_schema = input.schema()?;
                let scope = Scope::with_outer(&input_schema, outer);
                let group_exprs = group_exprs
                    .into_iter()
                    .map(|e| resolve_expr(e, &scope))
                    .collect::<Result<_>>()?;
                let aggr_exprs = aggr_exprs
                    .into_iter()
                    .map(|e| resolve_expr(e, &scope))
                    .collect::<Result<_>>()?;
                Ok(LogicalPlan::Aggregate {
                    group_exprs,
                    aggr_exprs,
                    input,
                })
            }

            LogicalPlan::Sort { exprs, input } => {
                if !input.resolved() {
                    return Ok(LogicalPlan::Sort { exprs, input });
                }
                let input_schema = input.schema()?;
                let scope = Scope::with_outer(&input_schema, outer);
                let exprs: Vec<SortExpr> = exprs
                    .into_iter()
                    .map(|s| {
                        Ok(SortExpr {
                            expr: resolve_expr(s.expr, &scope)?,
                            asc: s.asc,
                            nulls_first: s.nulls_first,
                        })
                    })
                    .collect::<Result<_>>()?;
                let needs_help = exprs
                    .iter()
                    .any(|s| !s.expr.resolved() || s.expr.contains_aggregate());
                if !needs_help {
                    return Ok(LogicalPlan::Sort { exprs, input });
                }
                let keys: Vec<Expr> = exprs.iter().map(|s| s.expr.clone()).collect();
                let spec: Vec<(bool, bool)> =
                    exprs.iter().map(|s| (s.asc, s.nulls_first)).collect();
                let rebuild =
                    move |new_keys: Vec<Expr>, new_input: LogicalPlan| LogicalPlan::Sort {
                        exprs: new_keys
                            .into_iter()
                            .zip(spec.iter())
                            .map(|(expr, &(asc, nulls_first))| SortExpr {
                                expr,
                                asc,
                                nulls_first,
                            })
                            .collect(),
                        input: Arc::new(new_input),
                    };
                self.resolve_operator_exprs(keys, &input, outer, rebuild)
                    .map(|resolved| resolved.unwrap_or(LogicalPlan::Sort { exprs, input }))
            }

            LogicalPlan::Skyline {
                distinct,
                complete,
                dims,
                input,
            } => {
                if !input.resolved() {
                    return Ok(LogicalPlan::Skyline {
                        distinct,
                        complete,
                        dims,
                        input,
                    });
                }
                let input_schema = input.schema()?;
                let scope = Scope::with_outer(&input_schema, outer);
                let dims: Vec<SkylineDimension> = dims
                    .into_iter()
                    .map(|d| {
                        Ok(SkylineDimension {
                            child: resolve_expr(d.child, &scope)?,
                            ty: d.ty,
                        })
                    })
                    .collect::<Result<_>>()?;
                let needs_help = dims
                    .iter()
                    .any(|d| !d.child.resolved() || d.child.contains_aggregate());
                if !needs_help {
                    return Ok(LogicalPlan::Skyline {
                        distinct,
                        complete,
                        dims,
                        input,
                    });
                }
                let children: Vec<Expr> = dims.iter().map(|d| d.child.clone()).collect();
                let types: Vec<sparkline_common::SkylineType> = dims.iter().map(|d| d.ty).collect();
                let rebuild =
                    move |new_children: Vec<Expr>, new_input: LogicalPlan| LogicalPlan::Skyline {
                        distinct,
                        complete,
                        dims: new_children
                            .into_iter()
                            .zip(types.iter())
                            .map(|(child, &ty)| SkylineDimension { child, ty })
                            .collect(),
                        input: Arc::new(new_input),
                    };
                self.resolve_operator_exprs(children, &input, outer, rebuild)
                    .map(|resolved| {
                        resolved.unwrap_or(LogicalPlan::Skyline {
                            distinct,
                            complete,
                            dims,
                            input,
                        })
                    })
            }

            LogicalPlan::Join {
                left,
                right,
                join_type,
                condition,
            } => {
                if !left.resolved() || !right.resolved() {
                    return Ok(LogicalPlan::Join {
                        left,
                        right,
                        join_type,
                        condition,
                    });
                }
                match condition {
                    JoinCondition::Using(cols) => self.desugar_using(left, right, join_type, cols),
                    JoinCondition::On(e) => {
                        let combined = left.schema()?.join(right.schema()?.as_ref());
                        let scope = Scope::with_outer(&combined, outer);
                        let e = resolve_expr(e, &scope)?;
                        Ok(LogicalPlan::Join {
                            left,
                            right,
                            join_type,
                            condition: JoinCondition::On(e),
                        })
                    }
                    JoinCondition::None => Ok(LogicalPlan::Join {
                        left,
                        right,
                        join_type,
                        condition: JoinCondition::None,
                    }),
                }
            }

            LogicalPlan::MinMaxFilter {
                expr,
                direction,
                distinct,
                input,
            } => {
                if !input.resolved() {
                    return Ok(LogicalPlan::MinMaxFilter {
                        expr,
                        direction,
                        distinct,
                        input,
                    });
                }
                let input_schema = input.schema()?;
                let scope = Scope::with_outer(&input_schema, outer);
                Ok(LogicalPlan::MinMaxFilter {
                    expr: resolve_expr(expr, &scope)?,
                    direction,
                    distinct,
                    input,
                })
            }

            other => Ok(other),
        }
    }

    /// Shared machinery for `Sort` and `Skyline` whose expressions did not
    /// resolve against the child schema: aggregate propagation (Listings
    /// 7/9/10) and missing-reference injection (Listing 6). Returns
    /// `Ok(None)` when no strategy applies (the caller keeps the operator
    /// unchanged and validation reports the problem).
    fn resolve_operator_exprs(
        &self,
        exprs: Vec<Expr>,
        input: &Arc<LogicalPlan>,
        outer: Option<&Schema>,
        rebuild: impl FnOnce(Vec<Expr>, LogicalPlan) -> LogicalPlan,
    ) -> Result<Option<LogicalPlan>> {
        // Case 1: an Aggregate at or below the child — reachable through a
        // HAVING Filter and/or a premature Projection (Appendix B). Shapes:
        //   Aggregate | Filter(Aggregate) | Projection(Aggregate)
        //   | Projection(Filter(Aggregate))
        if let Some(shape) = AggregateShape::locate(input) {
            let agg_input_schema = shape.agg_input.schema()?;
            let agg_output_schema = LogicalPlan::Aggregate {
                group_exprs: shape.group_exprs.clone(),
                aggr_exprs: shape.result_exprs.clone(),
                input: Arc::clone(&shape.agg_input),
            }
            .schema()?;
            let AggregateResolution {
                exprs: new_exprs,
                new_result_exprs,
                grew,
            } = resolve_exprs_against_aggregate(
                exprs,
                &shape.group_exprs,
                &shape.result_exprs,
                &agg_input_schema,
                &agg_output_schema,
                outer,
            )?;
            if new_exprs
                .iter()
                .any(|e| !e.resolved() || e.contains_aggregate())
            {
                return Ok(None);
            }
            let mut inner = LogicalPlan::Aggregate {
                group_exprs: shape.group_exprs,
                aggr_exprs: new_result_exprs,
                input: shape.agg_input,
            };
            if let Some(pred) = shape.filter_predicate {
                inner = LogicalPlan::Filter {
                    predicate: pred,
                    input: Arc::new(inner),
                };
            }
            let op = rebuild(new_exprs, inner);
            // Restore the original output: either re-attach the premature
            // projection above the operator (Listing 9's restructuring) or
            // project the original aggregate columns back out.
            let result = if let Some(proj) = shape.projection_exprs {
                LogicalPlan::Projection {
                    exprs: proj,
                    input: Arc::new(op),
                }
            } else if grew {
                restore_projection(op, &agg_output_schema)
            } else {
                op
            };
            return Ok(Some(result));
        }

        // Case 2: child is a Projection — widen it (Listing 6).
        if let LogicalPlan::Projection {
            exprs: proj_exprs,
            input: proj_input,
        } = input.as_ref()
        {
            let proj_input_schema = proj_input.schema()?;
            let proj_output_schema = input.schema()?;
            if let Some((new_exprs, new_proj)) =
                add_missing_columns(exprs, proj_exprs, &proj_input_schema, &proj_output_schema)?
            {
                if new_exprs.iter().any(|e| !e.resolved()) {
                    return Ok(None);
                }
                let widened = LogicalPlan::Projection {
                    exprs: new_proj,
                    input: Arc::clone(proj_input),
                };
                let op = rebuild(new_exprs, widened);
                return Ok(Some(restore_projection(op, &proj_output_schema)));
            }
        }
        Ok(None)
    }

    /// Desugar `USING (cols)` into an equi-`ON` join plus a projection that
    /// keeps the left copy of each using column (so references qualified by
    /// the left relation keep working).
    fn desugar_using(
        &self,
        left: Arc<LogicalPlan>,
        right: Arc<LogicalPlan>,
        join_type: sparkline_plan::JoinType,
        cols: Vec<String>,
    ) -> Result<LogicalPlan> {
        let ls = left.schema()?;
        let rs = right.schema()?;
        let mut condition: Option<Expr> = None;
        let mut drop_right = vec![false; rs.len()];
        for col in &cols {
            let li = ls.index_of(None, col)?;
            let ri = rs.index_of(None, col)?;
            drop_right[ri] = true;
            let eq = Expr::BoundColumn(BoundColumn {
                index: li,
                field: ls.field(li).clone(),
            })
            .eq(Expr::BoundColumn(BoundColumn {
                index: ls.len() + ri,
                field: rs.field(ri).clone(),
            }));
            condition = Some(match condition {
                Some(c) => c.and(eq),
                None => eq,
            });
        }
        let join = LogicalPlan::Join {
            left,
            right,
            join_type,
            condition: JoinCondition::On(
                condition.ok_or_else(|| Error::analysis("USING requires at least one column"))?,
            ),
        };
        if !join_type.emits_right() {
            return Ok(join);
        }
        // Keep all left columns plus the right columns that are not merged.
        let join_schema = join.schema()?;
        let exprs: Vec<Expr> = (0..join_schema.len())
            .filter(|&i| i < ls.len() || !drop_right[i - ls.len()])
            .map(|i| {
                Expr::BoundColumn(BoundColumn {
                    index: i,
                    field: join_schema.field(i).clone(),
                })
            })
            .collect();
        Ok(LogicalPlan::Projection {
            exprs,
            input: Arc::new(join),
        })
    }
}

/// The `Aggregate` reachable below a `Sort`/`Skyline`, together with the
/// intervening nodes that must be rebuilt (paper Listings 7/9/10).
struct AggregateShape {
    group_exprs: Vec<Expr>,
    result_exprs: Vec<Expr>,
    agg_input: Arc<LogicalPlan>,
    /// Predicate of a `HAVING` filter between the operator and the
    /// aggregate, if any.
    filter_predicate: Option<Expr>,
    /// A premature projection above the aggregate (Appendix B); re-attached
    /// *above* the operator after resolution.
    projection_exprs: Option<Vec<Expr>>,
}

impl AggregateShape {
    fn locate(input: &Arc<LogicalPlan>) -> Option<AggregateShape> {
        // Direct aggregate.
        if let Some(shape) = Self::direct(input) {
            return Some(shape);
        }
        // Through a HAVING filter.
        if let LogicalPlan::Filter {
            predicate,
            input: f_input,
        } = input.as_ref()
        {
            if let Some(mut shape) = Self::direct(f_input) {
                shape.filter_predicate = Some(predicate.clone());
                return Some(shape);
            }
            return None;
        }
        // Through a premature projection (possibly over a filter) —
        // Appendix B's problematic shape.
        if let LogicalPlan::Projection {
            exprs,
            input: p_input,
        } = input.as_ref()
        {
            let inner = if let LogicalPlan::Filter {
                predicate,
                input: f_input,
            } = p_input.as_ref()
            {
                Self::direct(f_input).map(|mut s| {
                    s.filter_predicate = Some(predicate.clone());
                    s
                })
            } else {
                Self::direct(p_input)
            };
            if let Some(mut shape) = inner {
                shape.projection_exprs = Some(exprs.clone());
                return Some(shape);
            }
        }
        None
    }

    fn direct(input: &Arc<LogicalPlan>) -> Option<AggregateShape> {
        if let LogicalPlan::Aggregate {
            group_exprs,
            aggr_exprs,
            input: agg_input,
        } = input.as_ref()
        {
            Some(AggregateShape {
                group_exprs: group_exprs.clone(),
                result_exprs: aggr_exprs.clone(),
                agg_input: Arc::clone(agg_input),
                filter_predicate: None,
                projection_exprs: None,
            })
        } else {
            None
        }
    }
}
