//! End-to-end analyzer tests: parse SQL, resolve against a static catalog,
//! and inspect the resolved plans — including the paper's skyline-specific
//! analyzer extensions (Listings 6, 7, 9, 10).

use sparkline_analyzer::Analyzer;
use sparkline_common::{DataType, Field, Schema};
use sparkline_parser::parse_query;
use sparkline_plan::{Expr, LogicalPlan, StaticCatalog};

fn catalog() -> StaticCatalog {
    let mut c = StaticCatalog::new();
    c.register_table(
        "hotels",
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("price", DataType::Float64, false),
            Field::new("user_rating", DataType::Int64, true),
            Field::new("beach_distance", DataType::Float64, true),
        ])
        .into_ref(),
    );
    c.register_table(
        "sales",
        Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new("v", DataType::Int64, false),
            Field::new("w", DataType::Float64, true),
        ])
        .into_ref(),
    );
    c.register_table(
        "track",
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("recording", DataType::Int64, false),
            Field::new("position", DataType::Int64, true),
        ])
        .into_ref(),
    );
    c
}

fn analyze(sql: &str) -> LogicalPlan {
    let cat = catalog();
    let analyzer = Analyzer::new(&cat);
    let plan = parse_query(sql).unwrap_or_else(|e| panic!("parse error for {sql:?}: {e}"));
    analyzer
        .analyze(&plan)
        .unwrap_or_else(|e| panic!("analysis error for {sql:?}: {e}\nplan:\n{plan}"))
}

fn analyze_err(sql: &str) -> String {
    let cat = catalog();
    let analyzer = Analyzer::new(&cat);
    let plan = parse_query(sql).expect("should parse");
    analyzer
        .analyze(&plan)
        .expect_err("analysis should fail")
        .to_string()
}

#[test]
fn resolves_simple_projection() {
    let plan = analyze("SELECT price, user_rating FROM hotels");
    assert!(plan.resolved());
    let schema = plan.schema().unwrap();
    assert_eq!(schema.len(), 2);
    assert_eq!(schema.field(0).name(), "price");
    assert_eq!(schema.field(0).data_type(), DataType::Float64);
}

#[test]
fn expands_wildcard() {
    let plan = analyze("SELECT * FROM hotels");
    assert_eq!(plan.schema().unwrap().len(), 4);
}

#[test]
fn resolves_table_alias() {
    let plan = analyze("SELECT h.price FROM hotels AS h WHERE h.user_rating > 3");
    assert!(plan.resolved());
    assert_eq!(plan.schema().unwrap().field(0).qualifier(), Some("h"));
}

#[test]
fn unknown_table_reported() {
    let err = analyze_err("SELECT x FROM nonexistent");
    assert!(err.contains("not found in the catalog"), "{err}");
}

#[test]
fn unknown_column_reported() {
    let err = analyze_err("SELECT wrong_col FROM hotels");
    assert!(err.contains("cannot resolve column 'wrong_col'"), "{err}");
}

#[test]
fn ambiguous_column_reported() {
    let err = analyze_err("SELECT id FROM hotels, track");
    assert!(err.contains("ambiguous"), "{err}");
}

#[test]
fn type_mismatch_reported() {
    let err = analyze_err("SELECT price + 'text' FROM hotels");
    assert!(err.contains("incompatible operand types"), "{err}");
}

#[test]
fn non_boolean_filter_reported() {
    let err = analyze_err("SELECT price FROM hotels WHERE price + 1");
    assert!(err.contains("must be boolean"), "{err}");
}

#[test]
fn resolves_skyline_dimensions_listing_2() {
    let plan =
        analyze("SELECT price, user_rating FROM hotels SKYLINE OF price MIN, user_rating MAX");
    assert!(plan.resolved());
    match &plan {
        LogicalPlan::Skyline { dims, .. } => {
            assert!(dims.iter().all(|d| d.child.resolved()));
            assert_eq!(dims[0].child.to_string(), "hotels.price#0");
        }
        other => panic!("expected Skyline on top, got:\n{other}"),
    }
}

/// Paper Listing 6: skyline dimensions not present in the projection. The
/// projection is widened, the skyline resolved, and a restoring projection
/// added on top — final schema unchanged.
#[test]
fn skyline_dimension_missing_from_projection() {
    let plan = analyze("SELECT price FROM hotels SKYLINE OF price MIN, user_rating MAX");
    assert!(plan.resolved(), "plan:\n{plan}");
    let schema = plan.schema().unwrap();
    assert_eq!(schema.len(), 1, "restoring projection keeps 1 column");
    assert_eq!(schema.field(0).name(), "price");
    // Shape: Projection(price) > Skyline > Projection(price, user_rating).
    match &plan {
        LogicalPlan::Projection { input, .. } => match input.as_ref() {
            LogicalPlan::Skyline { dims, input, .. } => {
                assert!(dims.iter().all(|d| d.child.resolved()));
                let widened = input.schema().unwrap();
                assert_eq!(widened.len(), 2, "projection widened:\n{plan}");
            }
            other => panic!("expected Skyline under projection, got:\n{other}"),
        },
        other => panic!("expected restoring Projection on top, got:\n{other}"),
    }
}

/// Paper Listing 7: the skyline is based on an aggregate that the query
/// output does not contain — the aggregate is added to the Aggregate node.
#[test]
fn skyline_on_missing_aggregate() {
    let plan = analyze(
        "SELECT k, sum(v) AS total FROM sales GROUP BY k \
         SKYLINE OF count(v) MAX, k MIN",
    );
    assert!(plan.resolved(), "plan:\n{plan}");
    let schema = plan.schema().unwrap();
    assert_eq!(schema.len(), 2, "output restored to (k, total):\n{plan}");
    assert_eq!(schema.field(1).name(), "total");
    // The aggregate below must now compute count(v) as well.
    let mut agg_result_count = None;
    fn find_agg(plan: &LogicalPlan, out: &mut Option<usize>) {
        if let LogicalPlan::Aggregate { aggr_exprs, .. } = plan {
            *out = Some(aggr_exprs.len());
        }
        for c in plan.children() {
            find_agg(c, out);
        }
    }
    find_agg(&plan, &mut agg_result_count);
    assert_eq!(agg_result_count, Some(3), "count(v) appended:\n{plan}");
}

/// HAVING with an aggregate that is not in the select list.
#[test]
fn having_on_missing_aggregate() {
    let plan = analyze("SELECT k FROM sales GROUP BY k HAVING count(*) > 1");
    assert!(plan.resolved(), "plan:\n{plan}");
    assert_eq!(plan.schema().unwrap().len(), 1);
    let d = plan.display_indent();
    assert!(d.contains("count(*)"), "{d}");
    assert!(d.lines().next().unwrap().starts_with("Projection"), "{d}");
}

/// HAVING reusing an aggregate from the select list must not extend the
/// aggregate (no restoring projection needed).
#[test]
fn having_reuses_existing_aggregate() {
    let plan = analyze("SELECT k, sum(v) FROM sales GROUP BY k HAVING sum(v) > 10");
    assert!(plan.resolved());
    // Top node stays the Filter (no projection wrap).
    assert!(
        matches!(plan, LogicalPlan::Filter { .. }),
        "no restore projection expected:\n{plan}"
    );
}

/// Paper Listing 10 / Appendix B: ORDER BY an aggregate while a HAVING
/// filter sits between Sort and Aggregate.
#[test]
fn sort_on_aggregate_through_having_filter() {
    let plan =
        analyze("SELECT k, sum(v) FROM sales GROUP BY k HAVING sum(v) > 0 ORDER BY count(*) DESC");
    assert!(plan.resolved(), "plan:\n{plan}");
    let schema = plan.schema().unwrap();
    assert_eq!(schema.len(), 2, "output restored:\n{plan}");
    let d = plan.display_indent();
    // Sort resolved against the extended aggregate output.
    assert!(d.contains("Sort"), "{d}");
    assert!(d.contains("count(*)"), "{d}");
}

/// ORDER BY a grouped column that is not selected.
#[test]
fn sort_on_unselected_group_column() {
    let plan = analyze("SELECT sum(v) FROM sales GROUP BY k ORDER BY k");
    assert!(plan.resolved(), "plan:\n{plan}");
    assert_eq!(plan.schema().unwrap().len(), 1);
}

/// ORDER BY a column the projection dropped (generic missing-references).
#[test]
fn sort_on_unprojected_column() {
    let plan = analyze("SELECT price FROM hotels ORDER BY user_rating");
    assert!(plan.resolved(), "plan:\n{plan}");
    assert_eq!(plan.schema().unwrap().len(), 1);
}

#[test]
fn aggregate_column_must_be_grouped() {
    let err = analyze_err("SELECT k, v FROM sales GROUP BY k");
    assert!(err.contains("must appear in GROUP BY"), "{err}");
}

#[test]
fn using_join_is_desugared() {
    let plan = analyze("SELECT hotels.price FROM hotels JOIN track USING (id)");
    assert!(plan.resolved(), "plan:\n{plan}");
    let d = plan.display_indent();
    assert!(
        d.contains("Join [Inner, on: (hotels.id#0 = track.id#4)]"),
        "{d}"
    );
    // The merged column keeps a single copy: 4 hotel columns + 2 track
    // columns (id dropped).
    fn find_using_projection(plan: &LogicalPlan) -> Option<usize> {
        if let LogicalPlan::Projection { exprs, input } = plan {
            if matches!(input.as_ref(), LogicalPlan::Join { .. }) {
                return Some(exprs.len());
            }
        }
        plan.children()
            .iter()
            .find_map(|c| find_using_projection(c))
    }
    assert_eq!(find_using_projection(&plan), Some(6), "{d}");
}

#[test]
fn exists_subquery_resolves_with_outer_references() {
    // Listing 1 of the paper (reference skyline query).
    let plan = analyze(
        "SELECT price, user_rating FROM hotels AS o WHERE NOT EXISTS( \
           SELECT * FROM hotels AS i WHERE \
             i.price <= o.price AND i.user_rating >= o.user_rating \
             AND (i.price < o.price OR i.user_rating > o.user_rating))",
    );
    assert!(plan.resolved(), "plan:\n{plan}");
    // Outer references must appear inside the subquery.
    let mut outer_refs = 0;
    plan.visit_expressions(&mut |e| {
        if matches!(e, Expr::OuterColumn(_)) {
            outer_refs += 1;
        }
    });
    assert_eq!(outer_refs, 4, "four correlated comparisons:\n{plan}");
}

#[test]
fn skyline_with_diff_dimension_resolves() {
    let plan = analyze("SELECT * FROM sales SKYLINE OF k DIFF, v MIN");
    assert!(plan.resolved());
}

#[test]
fn skyline_over_derived_table() {
    let plan = analyze(
        "SELECT * FROM (SELECT k AS key, v AS val FROM sales) t \
         SKYLINE OF key MIN, val MAX",
    );
    assert!(plan.resolved(), "plan:\n{plan}");
    let schema = plan.schema().unwrap();
    assert_eq!(schema.field(0).qualifier(), Some("t"));
}

#[test]
fn skyline_dimension_expression() {
    let plan = analyze("SELECT * FROM hotels SKYLINE OF price / user_rating MIN");
    assert!(plan.resolved());
}

#[test]
fn analysis_is_idempotent() {
    let cat = catalog();
    let analyzer = Analyzer::new(&cat);
    let plan = parse_query(
        "SELECT price FROM hotels SKYLINE OF price MIN, user_rating MAX ORDER BY price",
    )
    .unwrap();
    let once = analyzer.analyze(&plan).unwrap();
    let twice = analyzer.analyze(&once).unwrap();
    assert_eq!(once, twice);
}

#[test]
fn left_outer_join_right_side_nullable() {
    let plan = analyze(
        "SELECT hotels.id, track.position FROM hotels \
         LEFT OUTER JOIN track ON hotels.id = track.recording",
    );
    let schema = plan.schema().unwrap();
    assert!(schema.field(1).nullable(), "right side nullable: {schema}");
}

#[test]
fn aggregate_in_where_rejected() {
    let err = analyze_err("SELECT k FROM sales WHERE sum(v) > 1 GROUP BY k");
    assert!(
        err.contains("aggregate") || err.contains("resolve"),
        "{err}"
    );
}

#[test]
fn musicbrainz_like_query_resolves() {
    let cat = {
        let mut c = catalog();
        c.register_table(
            "recording_complete",
            Schema::new(vec![
                Field::new("id", DataType::Int64, false),
                Field::new("length", DataType::Int64, true),
                Field::new("video", DataType::Boolean, false),
            ])
            .into_ref(),
        );
        c.register_table(
            "recording_meta",
            Schema::new(vec![
                Field::new("id", DataType::Int64, false),
                Field::new("rating", DataType::Float64, true),
                Field::new("rating_count", DataType::Int64, true),
            ])
            .into_ref(),
        );
        c
    };
    let analyzer = Analyzer::new(&cat);
    let sql = "SELECT r.id, ifnull(r.length, 0) AS length, \
               ifnull(rm.rating, 0) AS rating, \
               recording_tracks.num_tracks, recording_tracks.min_position \
               FROM recording_complete r LEFT OUTER JOIN ( \
                 SELECT ri.id AS id, count(ti.recording) AS num_tracks, \
                        min(ti.position) AS min_position \
                 FROM recording_complete ri \
                 JOIN track ti ON ti.recording = ri.id \
                 GROUP BY ri.id \
               ) recording_tracks USING (id) \
               JOIN recording_meta rm USING (id) \
               SKYLINE OF COMPLETE rating MAX, length MIN, num_tracks MAX";
    let plan = parse_query(sql).unwrap();
    let analyzed = analyzer
        .analyze(&plan)
        .unwrap_or_else(|e| panic!("{e}\n{plan}"));
    assert!(analyzed.resolved());
    let schema = analyzed.schema().unwrap();
    assert_eq!(schema.len(), 5);
}
