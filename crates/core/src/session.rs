//! The session: configuration + catalog + the full query pipeline
//! (parse → analyze → optimize → physical planning → execution), mirroring
//! the paper's Figure 2.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;
use sparkline_analyzer::Analyzer;
use sparkline_common::{Result, Row, Schema, SessionConfig, SkylineStrategy};
use sparkline_exec::{Deadline, FaultInjector, QueryControl, TaskContext};
use sparkline_optimizer::Optimizer;
use sparkline_parser::parse_query;
use sparkline_physical::{display_physical, PhysicalPlanner};
use sparkline_plan::{Expr, LogicalPlan, LogicalPlanBuilder};

use crate::catalog::SessionCatalog;
use crate::dataframe::DataFrame;
use crate::reference::rewrite_to_reference;
use crate::result::QueryResult;

/// Which of the paper's four evaluated algorithms executes the skyline
/// operators of a query (§6.3). `Auto` applies Listing 8's selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// Listing 8 selection (complete when safe, else incomplete).
    #[default]
    Auto,
    /// Algorithm (1): "distributed complete".
    DistributedComplete,
    /// Algorithm (2): "non-distributed complete".
    NonDistributedComplete,
    /// Algorithm (3): "distributed incomplete".
    DistributedIncomplete,
    /// Algorithm (4): the plain-SQL rewrite of Listing 4 ("reference").
    Reference,
    /// Extension beyond the paper (§7 future work): distributed
    /// Sort-Filter-Skyline with presorted, insert-only windows. Complete
    /// data only.
    SortFilterSkyline,
}

impl Algorithm {
    /// The paper's chart label.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Auto => "auto",
            Algorithm::DistributedComplete => "distributed complete",
            Algorithm::NonDistributedComplete => "non-distributed complete",
            Algorithm::DistributedIncomplete => "distributed incomplete",
            Algorithm::Reference => "reference",
            Algorithm::SortFilterSkyline => "sort-filter-skyline",
        }
    }

    /// The physical strategy override. `None` for the reference rewrite
    /// (handled before optimization) and for `Auto` (which defers to the
    /// session configuration's `skyline_strategy`).
    fn strategy(self) -> Option<SkylineStrategy> {
        match self {
            Algorithm::Auto | Algorithm::Reference => None,
            Algorithm::DistributedComplete => Some(SkylineStrategy::DistributedComplete),
            Algorithm::NonDistributedComplete => Some(SkylineStrategy::NonDistributedComplete),
            Algorithm::DistributedIncomplete => Some(SkylineStrategy::DistributedIncomplete),
            Algorithm::SortFilterSkyline => Some(SkylineStrategy::SortFilterSkyline),
        }
    }

    /// All four evaluated algorithms, in the paper's chart order.
    pub fn paper_algorithms() -> [Algorithm; 4] {
        [
            Algorithm::DistributedComplete,
            Algorithm::NonDistributedComplete,
            Algorithm::DistributedIncomplete,
            Algorithm::Reference,
        ]
    }

    /// The algorithms applicable to incomplete datasets (§6.3: "for
    /// incomplete datasets, the complete algorithms are not applicable").
    pub fn incomplete_algorithms() -> [Algorithm; 2] {
        [Algorithm::DistributedIncomplete, Algorithm::Reference]
    }
}

/// The entry point of the engine: holds the configuration and (shared)
/// catalog, creates [`DataFrame`]s from SQL or tables, and runs queries.
#[derive(Clone)]
pub struct SessionContext {
    config: SessionConfig,
    catalog: Arc<RwLock<SessionCatalog>>,
    /// Cooperative cancellation flag shared with every running query's
    /// [`QueryControl`]; clones of the session share it.
    cancel: Arc<AtomicBool>,
}

impl Default for SessionContext {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionContext {
    /// Session with the default configuration.
    pub fn new() -> Self {
        Self::with_config(SessionConfig::default())
    }

    /// Session with a custom configuration.
    pub fn with_config(config: SessionConfig) -> Self {
        SessionContext {
            config,
            catalog: Arc::new(RwLock::new(SessionCatalog::new())),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A session with different configuration **sharing this session's
    /// catalog** — the harness uses this to sweep executor counts and
    /// algorithms without re-registering datasets. The new session gets
    /// its own cancellation flag.
    pub fn with_shared_catalog(&self, config: SessionConfig) -> SessionContext {
        SessionContext {
            config,
            catalog: Arc::clone(&self.catalog),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Request cancellation of the queries running on this session (or
    /// any clone of it). Cooperative: each query aborts with
    /// `Error::Cancelled` at its next control check, unwinding through
    /// `Result` so every memory reservation is released. The flag is
    /// sticky — new queries fail immediately until [`reset_cancel`]
    /// (`SessionContext::reset_cancel`) is called.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Clear a previous [`cancel`](SessionContext::cancel), re-enabling
    /// query execution on this session.
    pub fn reset_cancel(&self) {
        self.cancel.store(false, Ordering::Relaxed);
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Read access to the catalog (crate-internal).
    pub(crate) fn catalog_read(&self) -> parking_lot::RwLockReadGuard<'_, SessionCatalog> {
        self.catalog.read()
    }

    /// Register an in-memory table.
    pub fn register_table(
        &self,
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Row>,
    ) -> Result<()> {
        self.catalog.write().register_table(name, schema, rows)
    }

    /// `COPY ... TO`: write a registered table to `path` in the sparkline
    /// block format, using the session's storage knobs
    /// (`storage_block_rows` for the block granularity, `sample_size` /
    /// `sample_seed` for the footer's reservoir sample).
    pub fn copy_table_to_disk(
        &self,
        name: &str,
        path: impl AsRef<std::path::Path>,
    ) -> Result<sparkline_storage::DiskTableSummary> {
        let (schema, rows) = {
            let catalog = self.catalog.read();
            let schema = sparkline_plan::CatalogProvider::table_schema(&*catalog, name)
                .ok_or_else(|| {
                    sparkline_common::Error::plan(format!("no table named '{name}' to copy"))
                })?;
            let rows = sparkline_physical::ExecTableSource::table_rows(&*catalog, name)
                .ok_or_else(|| {
                    sparkline_common::Error::plan(format!(
                        "table '{name}' has no in-memory rows to copy"
                    ))
                })?;
            (schema, rows)
        };
        sparkline_storage::write_table(
            path,
            schema,
            &rows,
            sparkline_storage::WriterOptions {
                block_rows: self.config.storage_block_rows,
                sample_cap: self.config.sample_size,
                sample_seed: self.config.sample_seed,
            },
        )
    }

    /// Open a block file written by
    /// [`copy_table_to_disk`](Self::copy_table_to_disk) (or any
    /// `sparkline_storage` writer) and register it as a disk-resident
    /// table: queries stream its blocks out-of-core, skipping whole
    /// blocks from footer metadata instead of reading them.
    pub fn register_disk_table(
        &self,
        name: impl Into<String>,
        path: impl AsRef<std::path::Path>,
    ) -> Result<()> {
        let table = Arc::new(sparkline_storage::DiskTable::open(path)?);
        self.catalog.write().register_disk_table(name, table);
        Ok(())
    }

    /// Declare a foreign key enabling the §5.4 skyline-join pushdown for
    /// inner joins. Both endpoints must name a registered table and
    /// column (see [`SessionCatalog::register_foreign_key`]); an invalid
    /// declaration is a plan error and leaves the catalog untouched.
    pub fn register_foreign_key(
        &self,
        from_table: impl Into<String>,
        from_column: impl Into<String>,
        to_table: impl Into<String>,
        to_column: impl Into<String>,
    ) -> Result<()> {
        self.catalog
            .write()
            .register_foreign_key(from_table, from_column, to_table, to_column)
    }

    /// Drop a table; returns whether it existed.
    pub fn deregister_table(&self, name: &str) -> bool {
        self.catalog.write().drop_table(name)
    }

    /// Append rows to a registered in-memory table (validated against its
    /// schema); returns the table's new row count. Running queries keep
    /// the snapshot they started with.
    pub fn insert_rows(&self, name: &str, rows: Vec<Row>) -> Result<usize> {
        self.catalog.write().insert_rows(name, rows)
    }

    /// `DELETE FROM name WHERE predicate`: remove the rows of a
    /// registered in-memory table matching `predicate` (all rows when
    /// `None`), returning the ascending positions of the removed rows in
    /// the table's pre-delete order. The predicate is resolved by the
    /// analyzer against the table's schema and evaluated row by row
    /// under the catalog write lock, so there is no window between
    /// matching and removal in which a concurrent mutation could shift
    /// positions. Rows where the predicate is NULL (or false) are kept,
    /// per SQL semantics. A delete matching nothing does not bump the
    /// catalog version (caches stay warm).
    pub fn delete_where(&self, name: &str, predicate: Option<&Expr>) -> Result<Vec<usize>> {
        let mut catalog = self.catalog.write();
        let bound = match predicate {
            Some(pred) => {
                let plan = LogicalPlanBuilder::relation(name)
                    .filter(pred.clone())
                    .build()?;
                let analyzed = Analyzer::new(&*catalog).analyze(&plan)?;
                Some(extract_filter_predicate(&analyzed).ok_or_else(|| {
                    sparkline_common::Error::internal(
                        "analyzed DELETE plan lost its filter predicate",
                    )
                })?)
            }
            None => {
                // Still validate the table name (and reject disk tables)
                // through the same path a predicate delete would take.
                Analyzer::new(&*catalog).analyze(&LogicalPlanBuilder::relation(name).build()?)?;
                None
            }
        };
        let rows =
            sparkline_physical::ExecTableSource::table_rows(&*catalog, name).ok_or_else(|| {
                sparkline_common::Error::plan(format!(
                    "table '{name}' is disk-resident; DELETE is only supported \
                     for in-memory tables"
                ))
            })?;
        let mut positions = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let matches = match &bound {
                Some(pred) => matches!(pred.evaluate(row)?, sparkline_common::Value::Boolean(true)),
                None => true,
            };
            if matches {
                positions.push(i);
            }
        }
        catalog.delete_rows(name, &positions)?;
        Ok(positions)
    }

    /// A copy-on-write snapshot of a registered in-memory table's rows
    /// (`None` for unknown or disk-resident tables). The `Arc` is the
    /// same one scans clone: the snapshot is immutable and cheap, and a
    /// concurrent insert/delete replaces the catalog's vector without
    /// touching it.
    pub fn table_rows_snapshot(&self, name: &str) -> Option<Arc<Vec<Row>>> {
        sparkline_physical::ExecTableSource::table_rows(&*self.catalog.read(), name)
    }

    /// The catalog's mutation version (see [`SessionCatalog::version`]):
    /// bumped by every registration, drop, insert, and FK declaration.
    /// Plan/result caches key on it for implicit invalidation.
    pub fn catalog_version(&self) -> u64 {
        self.catalog.read().version()
    }

    /// Names of registered tables.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog.read().table_names()
    }

    /// Row count of a registered table.
    pub fn table_row_count(&self, name: &str) -> Option<usize> {
        self.catalog.read().table_row_count(name)
    }

    /// Parse and eagerly analyze a SQL query (errors surface here, like
    /// Spark's eager analysis), returning a lazy [`DataFrame`].
    pub fn sql(&self, query: &str) -> Result<DataFrame> {
        let plan = parse_query(query)?;
        let analyzed = {
            let catalog = self.catalog.read();
            Analyzer::new(&*catalog).analyze(&plan)?
        };
        Ok(DataFrame::new(self.clone(), analyzed))
    }

    /// A [`DataFrame`] scanning a registered table.
    pub fn table(&self, name: &str) -> Result<DataFrame> {
        let plan = {
            let catalog = self.catalog.read();
            Analyzer::new(&*catalog).analyze(&LogicalPlanBuilder::relation(name).build()?)?
        };
        Ok(DataFrame::new(self.clone(), plan))
    }

    /// Run the full pipeline on a logical plan with the session's default
    /// (Listing 8 `Auto`) algorithm selection.
    pub fn execute_plan(&self, plan: &LogicalPlan) -> Result<QueryResult> {
        self.execute_plan_with(plan, Algorithm::Auto)
    }

    /// Run the full pipeline forcing one of the paper's four algorithms.
    pub fn execute_plan_with(
        &self,
        plan: &LogicalPlan,
        algorithm: Algorithm,
    ) -> Result<QueryResult> {
        self.execute_pipeline(plan, algorithm)
            .map(|(_, result)| result)
    }

    /// The shared pipeline: analyze → optimize → plan → execute via the
    /// stream model (or the materialized adapter when
    /// `streaming_execution` is off), returning the physical plan display
    /// alongside the result.
    fn execute_pipeline(
        &self,
        plan: &LogicalPlan,
        algorithm: Algorithm,
    ) -> Result<(String, QueryResult)> {
        let catalog = self.catalog.read();
        let analyzer = Analyzer::new(&*catalog);
        let analyzed = analyzer.analyze(plan)?;
        // The output schema is fixed before optimization (rewrites may
        // rename intermediate fields).
        let schema = analyzed.schema()?;

        let mut config = self.config.clone();
        if let Some(strategy) = algorithm.strategy() {
            config.skyline_strategy = strategy;
        }
        let to_optimize = if algorithm == Algorithm::Reference {
            rewrite_to_reference(&analyzed)?
        } else {
            analyzed
        };
        let optimized = Optimizer::new(&config)
            .with_catalog(&*catalog)
            .optimize(&to_optimize)?;

        let start = Instant::now();
        // Graceful degradation: when the enforced memory budget denies a
        // reservation, re-plan with a cheaper configuration instead of
        // failing the query — (1) streaming instead of materialized
        // operator boundaries, (2) no representative pre-filter, (3) a
        // smaller batch size — recording each downgrade in
        // `degraded_paths`. Resilience counters accumulate across
        // attempts, so the final snapshot tells the whole story.
        let mut carried: Option<sparkline_exec::MetricsSnapshot> = None;
        loop {
            let planner = PhysicalPlanner::new(&config, &*catalog);
            let physical = planner.create(&optimized)?;
            let display = display_physical(&physical);
            let ctx = self.task_context(&config);
            if let Some(prior) = carried.take() {
                ctx.metrics.absorb_resilience(&prior);
                ctx.metrics.add_degraded_path();
            }
            match sparkline_physical::planner::collect(&physical, &ctx) {
                Ok(rows) => {
                    let result = QueryResult {
                        schema: schema.clone(),
                        rows,
                        metrics: ctx.metrics.snapshot(),
                        elapsed: start.elapsed(),
                        peak_memory_bytes: ctx.memory.peak_with_overhead(
                            config.num_executors,
                            config.executor_memory_overhead,
                        ),
                    };
                    return Ok((display, result));
                }
                Err(e) if e.is_resource_exhausted() && downgrade(&mut config) => {
                    carried = Some(ctx.metrics.snapshot());
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The per-query execution context: the session's cancellation flag
    /// behind a fresh deadline, the seeded fault injector, the retry
    /// policy, and the enforced memory budget — all from `config`.
    fn task_context(&self, config: &SessionConfig) -> TaskContext {
        let faults = if config.fault_rate > 0.0 {
            Arc::new(FaultInjector::new(config.fault_seed, config.fault_rate))
        } else {
            FaultInjector::disabled()
        };
        TaskContext::new(config.num_executors)
            .with_control(QueryControl::with_cancel_flag(
                Deadline::new(config.timeout),
                Arc::clone(&self.cancel),
            ))
            .with_fault_injector(faults)
            .with_retry_policy(config.max_retries, config.retry_backoff)
            .with_memory_budget(config.memory_budget)
            .with_batch_size(config.batch_size)
            .with_materialized(!config.streaming_execution)
    }

    /// `EXPLAIN ANALYZE`: execute the plan and render the physical
    /// operators together with the measured execution metrics — including
    /// the stream gauges (`batches_emitted`, `peak_rows_in_flight`) that
    /// tell the pipelining story.
    pub fn explain_analyze(&self, plan: &LogicalPlan, algorithm: Algorithm) -> Result<String> {
        let (display, result) = self.execute_pipeline(plan, algorithm)?;
        let m = &result.metrics;
        let mut out = String::new();
        out.push_str("== Physical Plan ==\n");
        out.push_str(&display);
        out.push_str("== Execution Metrics ==\n");
        out.push_str(&format!("rows scanned: {}\n", m.rows_scanned));
        out.push_str(&format!("rows output: {}\n", m.rows_output));
        out.push_str(&format!("batches emitted: {}\n", m.batches_emitted));
        out.push_str(&format!("peak rows in flight: {}\n", m.peak_rows_in_flight));
        out.push_str(&format!(
            "dominance tests: {} ({} batched, {} scalar)\n",
            m.dominance_tests, m.batched_tests, m.scalar_tests
        ));
        out.push_str(&format!(
            "simd tests: {} ({} multi-candidate passes)\n",
            m.simd_tests, m.multi_candidate_passes
        ));
        out.push_str(&format!(
            "chosen partitioning: {}\n",
            m.chosen_partitioning_label()
        ));
        out.push_str(&format!("sample rows: {}\n", m.sample_rows));
        out.push_str(&format!(
            "prefilter rows dropped: {}\n",
            m.prefilter_rows_dropped
        ));
        out.push_str(&format!("deferred deletions: {}\n", m.deferred_deletions));
        out.push_str(&format!("classes merged: {}\n", m.classes_merged));
        out.push_str(&format!("rows exchanged: {}\n", m.rows_exchanged));
        out.push_str(&format!("max window: {}\n", m.max_window));
        out.push_str(&format!("faults injected: {}\n", m.faults_injected));
        out.push_str(&format!("retries attempted: {}\n", m.retries_attempted));
        out.push_str(&format!("budget denials: {}\n", m.budget_denials));
        out.push_str(&format!("degraded paths: {}\n", m.degraded_paths));
        out.push_str(&format!(
            "disk blocks read: {} ({} skipped min/max, {} skipped dominance)\n",
            m.blocks_read, m.blocks_skipped_minmax, m.blocks_skipped_dominance
        ));
        out.push_str(&format!("disk bytes decoded: {}\n", m.bytes_decoded));
        out.push_str(&format!(
            "peak memory: {} bytes\n",
            result.peak_memory_bytes
        ));
        out.push_str(&format!(
            "elapsed: {:.3} ms\n",
            result.elapsed.as_secs_f64() * 1e3
        ));
        Ok(out)
    }

    /// Render all pipeline stages of a plan, like `EXPLAIN EXTENDED`.
    pub fn explain_plan(&self, plan: &LogicalPlan, algorithm: Algorithm) -> Result<String> {
        let catalog = self.catalog.read();
        let analyzed = Analyzer::new(&*catalog).analyze(plan)?;
        let mut config = self.config.clone();
        if let Some(strategy) = algorithm.strategy() {
            config.skyline_strategy = strategy;
        }
        let to_optimize = if algorithm == Algorithm::Reference {
            rewrite_to_reference(&analyzed)?
        } else {
            analyzed.clone()
        };
        let optimized = Optimizer::new(&config)
            .with_catalog(&*catalog)
            .optimize(&to_optimize)?;
        let physical = PhysicalPlanner::new(&config, &*catalog).create(&optimized)?;
        Ok(format!(
            "== Analyzed Logical Plan ==\n{}\n== Optimized Logical Plan ==\n{}\n\
             == Physical Plan ==\n{}",
            analyzed.display_indent(),
            optimized.display_indent(),
            display_physical(&physical),
        ))
    }
}

/// The analyzer-bound filter predicate of an analyzed
/// `relation.filter(pred)` plan, used by
/// [`SessionContext::delete_where`] to evaluate a DELETE's WHERE clause
/// row by row. Walks the plan top-down and returns the first `Filter`
/// node's predicate.
fn extract_filter_predicate(plan: &LogicalPlan) -> Option<Expr> {
    match plan {
        LogicalPlan::Filter { predicate, .. } => Some(predicate.clone()),
        LogicalPlan::Projection { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. }
        | LogicalPlan::SubqueryAlias { input, .. }
        | LogicalPlan::Skyline { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::MinMaxFilter { input, .. } => extract_filter_predicate(input),
        LogicalPlan::Join { left, right, .. } => {
            extract_filter_predicate(left).or_else(|| extract_filter_predicate(right))
        }
        LogicalPlan::UnresolvedRelation { .. }
        | LogicalPlan::TableScan { .. }
        | LogicalPlan::Values { .. } => None,
    }
}

/// Apply the next rung of the degradation ladder to `config`; `false`
/// when nothing cheaper is left and the budget error must surface. The
/// order moves from the biggest memory lever to the smallest: the
/// materialized execution model buffers every operator boundary, the
/// representative pre-filter holds a broadcast point set (and its
/// sample) per partition stream, and the batch size bounds the rows in
/// flight per pipeline step.
fn downgrade(config: &mut SessionConfig) -> bool {
    if !config.streaming_execution {
        config.streaming_execution = true;
        return true;
    }
    if config.representative_prefilter {
        config.representative_prefilter = false;
        return true;
    }
    if config.batch_size > 64 {
        config.batch_size = (config.batch_size / 4).max(64);
        return true;
    }
    false
}
