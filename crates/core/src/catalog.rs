//! The session catalog: table schemas, table data, and constraint
//! metadata. Implements both the analyzer/optimizer-facing
//! [`CatalogProvider`] and the physical planner's [`ExecTableSource`].

use std::collections::HashMap;
use std::sync::Arc;

use sparkline_common::{Error, Result, Row, Schema, SchemaRef};
use sparkline_physical::ExecTableSource;
use sparkline_plan::{CatalogProvider, StaticCatalog};
use sparkline_storage::DiskTable;

/// In-memory catalog with data.
#[derive(Debug, Default)]
pub struct SessionCatalog {
    schemas: StaticCatalog,
    data: HashMap<String, Arc<Vec<Row>>>,
    disk: HashMap<String, Arc<DiskTable>>,
}

impl SessionCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table with its rows, validating every row against the
    /// schema (width, types, nullability).
    pub fn register_table(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Row>,
    ) -> Result<()> {
        let name = name.into();
        validate_rows(&name, &schema, &rows)?;
        self.schemas.register_table(name.clone(), schema.into_ref());
        self.data.insert(name.to_ascii_lowercase(), Arc::new(rows));
        Ok(())
    }

    /// Register a disk-resident table (an opened block file): its schema
    /// enters the catalog like any table's, but scans stream the file's
    /// blocks through `DiskScanExec` instead of copying rows into memory.
    /// Replaces any same-named in-memory registration.
    pub fn register_disk_table(&mut self, name: impl Into<String>, table: Arc<DiskTable>) {
        let name = name.into();
        self.schemas.register_table(name.clone(), table.schema());
        let key = name.to_ascii_lowercase();
        self.data.remove(&key);
        self.disk.insert(key, table);
    }

    /// The disk table registered under `name`, if any.
    pub fn disk_table_named(&self, name: &str) -> Option<Arc<DiskTable>> {
        self.disk.get(&name.to_ascii_lowercase()).cloned()
    }

    /// Declare a foreign key (used by the §5.4 skyline-join pushdown; see
    /// [`StaticCatalog::register_foreign_key`]).
    pub fn register_foreign_key(
        &mut self,
        from_table: impl Into<String>,
        from_column: impl Into<String>,
        to_table: impl Into<String>,
        to_column: impl Into<String>,
    ) {
        self.schemas
            .register_foreign_key(from_table, from_column, to_table, to_column);
    }

    /// Remove a table.
    pub fn drop_table(&mut self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        let had_data = self.data.remove(&key).is_some();
        self.disk.remove(&key).is_some() || had_data
    }

    /// Registered table names (lowercased, sorted).
    pub fn table_names(&self) -> Vec<String> {
        self.schemas.table_names()
    }

    /// Number of rows in a table.
    pub fn table_row_count(&self, name: &str) -> Option<usize> {
        let key = name.to_ascii_lowercase();
        if let Some(table) = self.disk.get(&key) {
            return Some(table.total_rows() as usize);
        }
        self.data.get(&key).map(|r| r.len())
    }
}

/// Check rows against a schema: width, value types, NOT NULL constraints.
fn validate_rows(table: &str, schema: &Schema, rows: &[Row]) -> Result<()> {
    for (row_idx, row) in rows.iter().enumerate() {
        if row.width() != schema.len() {
            return Err(Error::plan(format!(
                "table '{table}': row {row_idx} has {} values, schema has {} columns",
                row.width(),
                schema.len()
            )));
        }
        for (col, field) in schema.fields().iter().enumerate() {
            let value = row.get(col);
            if value.is_null() {
                if !field.nullable() {
                    return Err(Error::plan(format!(
                        "table '{table}': NULL in non-nullable column '{}' (row {row_idx})",
                        field.name()
                    )));
                }
                continue;
            }
            if value.data_type() != field.data_type() {
                return Err(Error::plan(format!(
                    "table '{table}': column '{}' expects {}, got {} (row {row_idx})",
                    field.name(),
                    field.data_type(),
                    value.data_type()
                )));
            }
        }
    }
    Ok(())
}

impl CatalogProvider for SessionCatalog {
    fn table_schema(&self, name: &str) -> Option<SchemaRef> {
        self.schemas.table_schema(name)
    }

    fn guarantees_partner(
        &self,
        left_table: &str,
        left_col: &str,
        right_table: &str,
        right_col: &str,
    ) -> bool {
        self.schemas
            .guarantees_partner(left_table, left_col, right_table, right_col)
    }
}

impl ExecTableSource for SessionCatalog {
    fn table_rows(&self, name: &str) -> Option<Arc<Vec<Row>>> {
        self.data.get(&name.to_ascii_lowercase()).cloned()
    }

    fn disk_table(&self, name: &str) -> Option<Arc<DiskTable>> {
        self.disk_table_named(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{DataType, Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("price", DataType::Float64, true),
        ])
    }

    #[test]
    fn register_and_lookup() {
        let mut cat = SessionCatalog::new();
        cat.register_table(
            "T",
            schema(),
            vec![Row::new(vec![Value::Int64(1), Value::Float64(9.5)])],
        )
        .unwrap();
        assert!(cat.table_schema("t").is_some());
        assert_eq!(cat.table_rows("t").unwrap().len(), 1);
        assert_eq!(cat.table_row_count("T"), Some(1));
        assert_eq!(cat.table_names(), vec!["t"]);
    }

    #[test]
    fn rejects_wrong_width() {
        let mut cat = SessionCatalog::new();
        let err = cat
            .register_table("t", schema(), vec![Row::new(vec![Value::Int64(1)])])
            .unwrap_err();
        assert!(err.to_string().contains("has 1 values"), "{err}");
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut cat = SessionCatalog::new();
        let err = cat
            .register_table(
                "t",
                schema(),
                vec![Row::new(vec![Value::str("x"), Value::Null])],
            )
            .unwrap_err();
        assert!(err.to_string().contains("expects BIGINT"), "{err}");
    }

    #[test]
    fn rejects_null_in_non_nullable() {
        let mut cat = SessionCatalog::new();
        let err = cat
            .register_table(
                "t",
                schema(),
                vec![Row::new(vec![Value::Null, Value::Null])],
            )
            .unwrap_err();
        assert!(err.to_string().contains("non-nullable"), "{err}");
    }

    #[test]
    fn drop_table_works() {
        let mut cat = SessionCatalog::new();
        cat.register_table("t", schema(), vec![]).unwrap();
        assert!(cat.drop_table("T"));
        assert!(!cat.drop_table("t"));
        assert!(cat.table_rows("t").is_none());
    }
}
