//! The session catalog: table schemas, table data, and constraint
//! metadata. Implements both the analyzer/optimizer-facing
//! [`CatalogProvider`] and the physical planner's [`ExecTableSource`].

use std::collections::HashMap;
use std::sync::Arc;

use sparkline_common::{Error, Result, Row, Schema, SchemaRef};
use sparkline_physical::ExecTableSource;
use sparkline_plan::{CatalogProvider, StaticCatalog};
use sparkline_storage::DiskTable;

/// In-memory catalog with data.
#[derive(Debug, Default)]
pub struct SessionCatalog {
    schemas: StaticCatalog,
    data: HashMap<String, Arc<Vec<Row>>>,
    disk: HashMap<String, Arc<DiskTable>>,
    /// Monotone mutation counter: bumped by every registration, drop,
    /// insert, and foreign-key declaration. Cached plans and results
    /// keyed on `(query, version)` are implicitly invalidated by any
    /// catalog change — the invalidation hook the multi-tenant query
    /// service's plan/result caches sit on.
    version: u64,
}

impl SessionCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The catalog's mutation version. Two reads returning the same value
    /// bracket a span with no registration/drop/insert/FK change, so any
    /// plan or result derived in between is still valid.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Register a table with its rows, validating every row against the
    /// schema (width, types, nullability). Replaces any same-named
    /// registration, in-memory *or* disk-resident — one name maps to
    /// exactly one table representation.
    pub fn register_table(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Row>,
    ) -> Result<()> {
        let name = name.into();
        validate_rows(&name, &schema, &rows)?;
        self.schemas.register_table(name.clone(), schema.into_ref());
        let key = name.to_ascii_lowercase();
        self.disk.remove(&key);
        self.data.insert(key, Arc::new(rows));
        self.version += 1;
        Ok(())
    }

    /// Register a disk-resident table (an opened block file): its schema
    /// enters the catalog like any table's, but scans stream the file's
    /// blocks through `DiskScanExec` instead of copying rows into memory.
    /// Replaces any same-named registration, in-memory or disk-resident.
    pub fn register_disk_table(&mut self, name: impl Into<String>, table: Arc<DiskTable>) {
        let name = name.into();
        self.schemas.register_table(name.clone(), table.schema());
        let key = name.to_ascii_lowercase();
        self.data.remove(&key);
        self.disk.insert(key, table);
        self.version += 1;
    }

    /// Append rows to a registered in-memory table, validating them
    /// against its schema. Disk-resident tables are immutable — inserting
    /// into one is a plan error. Returns the table's new row count.
    ///
    /// Queries already executing keep the snapshot they started with (the
    /// row vector is copy-on-write behind an `Arc`), so a concurrent
    /// insert never mutates a scan mid-flight.
    pub fn insert_rows(&mut self, name: &str, rows: Vec<Row>) -> Result<usize> {
        let key = name.to_ascii_lowercase();
        let schema = self
            .schemas
            .table_schema(&key)
            .ok_or_else(|| Error::plan(format!("no table named '{name}' to insert into")))?;
        if self.disk.contains_key(&key) {
            return Err(Error::plan(format!(
                "table '{name}' is disk-resident; INSERT is only supported \
                 for in-memory tables"
            )));
        }
        validate_rows(&key, &schema, &rows)?;
        let entry = self
            .data
            .get_mut(&key)
            .ok_or_else(|| Error::internal(format!("table '{name}' has a schema but no rows")))?;
        let table = Arc::make_mut(entry);
        table.extend(rows);
        self.version += 1;
        Ok(table.len())
    }

    /// Remove rows from a registered in-memory table by position
    /// (`positions` must be ascending and in bounds — the shape produced
    /// by a predicate scan). Copy-on-write like
    /// [`insert_rows`](Self::insert_rows): queries already executing keep
    /// the snapshot they started with. Bumps the catalog version only
    /// when rows were actually removed, so a `DELETE` matching nothing
    /// retires no cached plan/result generation. Returns the number of
    /// removed rows.
    pub fn delete_rows(&mut self, name: &str, positions: &[usize]) -> Result<usize> {
        let key = name.to_ascii_lowercase();
        if self.schemas.table_schema(&key).is_none() {
            return Err(Error::plan(format!(
                "no table named '{name}' to delete from"
            )));
        }
        if self.disk.contains_key(&key) {
            return Err(Error::plan(format!(
                "table '{name}' is disk-resident; DELETE is only supported \
                 for in-memory tables"
            )));
        }
        let entry = self
            .data
            .get_mut(&key)
            .ok_or_else(|| Error::internal(format!("table '{name}' has a schema but no rows")))?;
        let len = entry.len();
        for pair in positions.windows(2) {
            if pair[0] >= pair[1] {
                return Err(Error::internal(
                    "delete positions must be ascending and distinct",
                ));
            }
        }
        if positions.last().is_some_and(|&p| p >= len) {
            return Err(Error::internal(format!(
                "delete position out of bounds for table '{name}' ({len} rows)"
            )));
        }
        if positions.is_empty() {
            return Ok(0);
        }
        let table = Arc::make_mut(entry);
        let mut cursor = 0;
        let mut idx = 0;
        table.retain(|_| {
            let drop = cursor < positions.len() && positions[cursor] == idx;
            if drop {
                cursor += 1;
            }
            idx += 1;
            !drop
        });
        self.version += 1;
        Ok(positions.len())
    }

    /// The disk table registered under `name`, if any.
    pub fn disk_table_named(&self, name: &str) -> Option<Arc<DiskTable>> {
        self.disk.get(&name.to_ascii_lowercase()).cloned()
    }

    /// Declare a foreign key (used by the §5.4 skyline-join pushdown; see
    /// [`StaticCatalog::register_foreign_key`]). Both endpoints are
    /// validated against registered schemas before anything is recorded:
    /// an FK on a nonexistent table or column is a plan error and leaves
    /// the catalog version untouched, so no cached plan/result
    /// generation is retired by a declaration that changed nothing.
    pub fn register_foreign_key(
        &mut self,
        from_table: impl Into<String>,
        from_column: impl Into<String>,
        to_table: impl Into<String>,
        to_column: impl Into<String>,
    ) -> Result<()> {
        let (from_table, from_column) = (from_table.into(), from_column.into());
        let (to_table, to_column) = (to_table.into(), to_column.into());
        for (table, column) in [(&from_table, &from_column), (&to_table, &to_column)] {
            let schema = self.schemas.table_schema(table).ok_or_else(|| {
                Error::plan(format!("foreign key references unknown table '{table}'"))
            })?;
            if schema.index_of(None, column).is_err() {
                return Err(Error::plan(format!(
                    "foreign key references unknown column '{table}.{column}'"
                )));
            }
        }
        self.schemas
            .register_foreign_key(from_table, from_column, to_table, to_column);
        self.version += 1;
        Ok(())
    }

    /// Remove a table: its data (in-memory rows or the disk handle), its
    /// schema, and every foreign key involving it — a dropped table must
    /// not linger in `table_names()` or be re-plannable.
    pub fn drop_table(&mut self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        let had_data = self.data.remove(&key).is_some();
        let had_disk = self.disk.remove(&key).is_some();
        let had_schema = self.schemas.drop_table(&key);
        let existed = had_data || had_disk || had_schema;
        if existed {
            self.version += 1;
        }
        existed
    }

    /// Registered table names (lowercased, sorted).
    pub fn table_names(&self) -> Vec<String> {
        self.schemas.table_names()
    }

    /// Number of rows in a table.
    pub fn table_row_count(&self, name: &str) -> Option<usize> {
        let key = name.to_ascii_lowercase();
        if let Some(table) = self.disk.get(&key) {
            return Some(table.total_rows() as usize);
        }
        self.data.get(&key).map(|r| r.len())
    }
}

/// Check rows against a schema: width, value types, NOT NULL constraints.
fn validate_rows(table: &str, schema: &Schema, rows: &[Row]) -> Result<()> {
    for (row_idx, row) in rows.iter().enumerate() {
        if row.width() != schema.len() {
            return Err(Error::plan(format!(
                "table '{table}': row {row_idx} has {} values, schema has {} columns",
                row.width(),
                schema.len()
            )));
        }
        for (col, field) in schema.fields().iter().enumerate() {
            let value = row.get(col);
            if value.is_null() {
                if !field.nullable() {
                    return Err(Error::plan(format!(
                        "table '{table}': NULL in non-nullable column '{}' (row {row_idx})",
                        field.name()
                    )));
                }
                continue;
            }
            if value.data_type() != field.data_type() {
                return Err(Error::plan(format!(
                    "table '{table}': column '{}' expects {}, got {} (row {row_idx})",
                    field.name(),
                    field.data_type(),
                    value.data_type()
                )));
            }
        }
    }
    Ok(())
}

impl CatalogProvider for SessionCatalog {
    fn table_schema(&self, name: &str) -> Option<SchemaRef> {
        self.schemas.table_schema(name)
    }

    fn guarantees_partner(
        &self,
        left_table: &str,
        left_col: &str,
        right_table: &str,
        right_col: &str,
    ) -> bool {
        self.schemas
            .guarantees_partner(left_table, left_col, right_table, right_col)
    }
}

impl ExecTableSource for SessionCatalog {
    fn table_rows(&self, name: &str) -> Option<Arc<Vec<Row>>> {
        self.data.get(&name.to_ascii_lowercase()).cloned()
    }

    fn disk_table(&self, name: &str) -> Option<Arc<DiskTable>> {
        self.disk_table_named(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{DataType, Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("price", DataType::Float64, true),
        ])
    }

    #[test]
    fn register_and_lookup() {
        let mut cat = SessionCatalog::new();
        cat.register_table(
            "T",
            schema(),
            vec![Row::new(vec![Value::Int64(1), Value::Float64(9.5)])],
        )
        .unwrap();
        assert!(cat.table_schema("t").is_some());
        assert_eq!(cat.table_rows("t").unwrap().len(), 1);
        assert_eq!(cat.table_row_count("T"), Some(1));
        assert_eq!(cat.table_names(), vec!["t"]);
    }

    #[test]
    fn rejects_wrong_width() {
        let mut cat = SessionCatalog::new();
        let err = cat
            .register_table("t", schema(), vec![Row::new(vec![Value::Int64(1)])])
            .unwrap_err();
        assert!(err.to_string().contains("has 1 values"), "{err}");
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut cat = SessionCatalog::new();
        let err = cat
            .register_table(
                "t",
                schema(),
                vec![Row::new(vec![Value::str("x"), Value::Null])],
            )
            .unwrap_err();
        assert!(err.to_string().contains("expects BIGINT"), "{err}");
    }

    #[test]
    fn rejects_null_in_non_nullable() {
        let mut cat = SessionCatalog::new();
        let err = cat
            .register_table(
                "t",
                schema(),
                vec![Row::new(vec![Value::Null, Value::Null])],
            )
            .unwrap_err();
        assert!(err.to_string().contains("non-nullable"), "{err}");
    }

    #[test]
    fn drop_table_works() {
        let mut cat = SessionCatalog::new();
        cat.register_table("t", schema(), vec![]).unwrap();
        assert!(cat.drop_table("T"));
        assert!(!cat.drop_table("t"));
        assert!(cat.table_rows("t").is_none());
    }

    #[test]
    fn drop_table_removes_schema_and_foreign_keys() {
        let mut cat = SessionCatalog::new();
        cat.register_table("t", schema(), vec![]).unwrap();
        cat.register_table("u", schema(), vec![]).unwrap();
        cat.register_foreign_key("t", "id", "u", "id").unwrap();
        assert!(cat.drop_table("t"));
        // Regression: the schema used to survive the drop, so the table
        // still appeared in table_names() and could be re-planned against.
        assert!(cat.table_schema("t").is_none());
        assert_eq!(cat.table_names(), vec!["u"]);
        assert!(!cat.guarantees_partner("t", "id", "u", "id"));
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let mut cat = SessionCatalog::new();
        let v0 = cat.version();
        cat.register_table("t", schema(), vec![]).unwrap();
        let v1 = cat.version();
        assert!(v1 > v0);
        cat.insert_rows("t", vec![Row::new(vec![Value::Int64(1), Value::Null])])
            .unwrap();
        let v2 = cat.version();
        assert!(v2 > v1);
        cat.register_foreign_key("t", "id", "t", "id").unwrap();
        let v3 = cat.version();
        assert!(v3 > v2);
        assert!(cat.drop_table("t"));
        assert!(cat.version() > v3);
        // A failed mutation leaves the version untouched.
        let v = cat.version();
        assert!(cat.insert_rows("t", vec![]).is_err());
        assert!(!cat.drop_table("t"));
        assert_eq!(cat.version(), v);
    }

    #[test]
    fn insert_rows_appends_and_validates() {
        let mut cat = SessionCatalog::new();
        cat.register_table(
            "t",
            schema(),
            vec![Row::new(vec![Value::Int64(1), Value::Float64(1.0)])],
        )
        .unwrap();
        let count = cat
            .insert_rows("T", vec![Row::new(vec![Value::Int64(2), Value::Null])])
            .unwrap();
        assert_eq!(count, 2);
        assert_eq!(cat.table_row_count("t"), Some(2));
        let err = cat
            .insert_rows("t", vec![Row::new(vec![Value::Int64(3)])])
            .unwrap_err();
        assert!(err.to_string().contains("has 1 values"), "{err}");
        // Snapshot isolation: a reader holding the pre-insert Arc keeps
        // its rows while the catalog grows a fresh copy.
        let before = cat.table_rows("t").unwrap();
        cat.insert_rows("t", vec![Row::new(vec![Value::Int64(4), Value::Null])])
            .unwrap();
        assert_eq!(before.len(), 2);
        assert_eq!(cat.table_row_count("t"), Some(3));
    }

    #[test]
    fn registration_displaces_the_other_representation() {
        use sparkline_storage::WriterOptions;
        let dir = std::env::temp_dir().join(format!(
            "sparkline-catalog-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.spkb");
        let disk_rows = vec![
            Row::new(vec![Value::Int64(1), Value::Float64(1.0)]),
            Row::new(vec![Value::Int64(2), Value::Float64(2.0)]),
            Row::new(vec![Value::Int64(3), Value::Float64(3.0)]),
        ];
        sparkline_storage::write_table(
            &path,
            schema().into_ref(),
            &disk_rows,
            WriterOptions::default(),
        )
        .unwrap();
        let disk = Arc::new(DiskTable::open(&path).unwrap());

        // Memory then disk: the disk registration displaces the rows.
        let mut cat = SessionCatalog::new();
        cat.register_table(
            "t",
            schema(),
            vec![Row::new(vec![Value::Int64(9), Value::Null])],
        )
        .unwrap();
        cat.register_disk_table("t", Arc::clone(&disk));
        assert!(
            cat.table_rows("t").is_none(),
            "stale in-memory rows survive"
        );
        assert_eq!(cat.table_row_count("t"), Some(3));

        // Disk then memory: regression — the disk entry used to survive,
        // shadowing the fresh rows in table_row_count and scans.
        let mut cat = SessionCatalog::new();
        cat.register_disk_table("t", disk);
        cat.register_table(
            "t",
            schema(),
            vec![Row::new(vec![Value::Int64(9), Value::Null])],
        )
        .unwrap();
        assert!(
            cat.disk_table_named("t").is_none(),
            "stale disk entry survives"
        );
        assert_eq!(cat.table_row_count("t"), Some(1));

        // Mixed drop: one drop removes the single representation fully.
        assert!(cat.drop_table("t"));
        assert!(cat.table_rows("t").is_none());
        assert!(cat.disk_table_named("t").is_none());
        assert!(cat.table_schema("t").is_none());
        assert!(!cat.drop_table("t"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
