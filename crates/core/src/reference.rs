//! The plain-SQL *reference* formulation of skyline queries (paper
//! Listing 4), used as the baseline algorithm in the evaluation (§6.3,
//! algorithm 4).
//!
//! [`rewrite_to_reference`] replaces every skyline operator in a resolved
//! plan with the `NOT EXISTS` anti-join the SQL rewrite would produce:
//!
//! ```sql
//! SELECT ... FROM rel AS o WHERE NOT EXISTS(
//!   SELECT * FROM rel AS i
//!   WHERE i.min_dims <= o.min_dims AND i.max_dims >= o.max_dims
//!     AND i.diff_dims = o.diff_dims
//!     AND (i.min_dims < o.min_dims OR i.max_dims > o.max_dims))
//! ```
//!
//! The rewrite happens at the logical level (self anti-join with the
//! Listing 4 predicate), which is exactly what the engine's subquery
//! decorrelation produces for the textual query — the two paths share the
//! `NestedLoopJoinExec(LeftAnti)` execution.
//!
//! Note on NULL semantics: under SQL three-valued logic any NULL
//! comparison makes the `NOT EXISTS` predicate non-true, so on incomplete
//! data the reference query implements a *stricter* dominance than §3's
//! restricted relation — the paper accordingly compares against the
//! reference on incomplete data by runtime only.

use std::sync::Arc;

use sparkline_common::{Error, Result, SkylineType};
use sparkline_plan::{BoundColumn, Expr, JoinCondition, JoinType, LogicalPlan};

/// Replace every `Skyline` node with the Listing 4 anti-join. The plan
/// must be resolved. `SKYLINE OF DISTINCT` has no plain-SQL counterpart in
/// Listing 4 and is rejected.
pub fn rewrite_to_reference(plan: &LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        let LogicalPlan::Skyline {
            distinct,
            complete: _,
            dims,
            input,
        } = &node
        else {
            return Ok(node);
        };
        if *distinct {
            return Err(Error::plan(
                "SKYLINE OF DISTINCT has no plain-SQL reference rewrite (Listing 4)",
            ));
        }
        let width = input.schema()?.len();

        // Outer tuple `o` occupies columns [0, width); inner tuple `i`
        // occupies [width, 2*width).
        let shift_to_inner = |e: &Expr| -> Result<Expr> {
            e.clone().transform_up(&mut |x| {
                Ok(match x {
                    Expr::BoundColumn(c) => Expr::BoundColumn(BoundColumn {
                        index: c.index + width,
                        field: c.field,
                    }),
                    other => other,
                })
            })
        };

        let mut at_least_as_good: Option<Expr> = None;
        let mut strictly_better: Option<Expr> = None;
        for d in dims {
            let o = d.child.clone();
            let i = shift_to_inner(&d.child)?;
            let (weak, strict) = match d.ty {
                SkylineType::Min => (i.clone().lt_eq(o.clone()), Some(i.lt(o))),
                SkylineType::Max => (i.clone().gt_eq(o.clone()), Some(i.gt(o))),
                SkylineType::Diff => (i.eq(o), None),
            };
            at_least_as_good = Some(match at_least_as_good {
                Some(acc) => acc.and(weak),
                None => weak,
            });
            if let Some(s) = strict {
                strictly_better = Some(match strictly_better {
                    Some(acc) => acc.or(s),
                    None => s,
                });
            }
        }
        let weak = at_least_as_good
            .ok_or_else(|| Error::plan("skyline without dimensions cannot be rewritten"))?;
        let predicate = match strictly_better {
            Some(s) => weak.and(s),
            // Only DIFF dimensions: nothing can dominate, the anti join
            // keeps everything; use a never-true predicate.
            None => Expr::lit(false),
        };
        Ok(LogicalPlan::Join {
            left: Arc::clone(input),
            right: Arc::clone(input),
            join_type: JoinType::LeftAnti,
            condition: JoinCondition::On(predicate),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{DataType, Field, Schema};
    use sparkline_plan::SkylineDimension;

    fn scan() -> LogicalPlan {
        LogicalPlan::TableScan {
            name: "hotels".into(),
            schema: Schema::new(vec![
                Field::qualified("hotels", "price", DataType::Int64, false),
                Field::qualified("hotels", "rating", DataType::Int64, false),
            ])
            .into_ref(),
        }
    }

    fn bound(i: usize) -> Expr {
        let schema = scan().schema().unwrap();
        Expr::BoundColumn(BoundColumn {
            index: i,
            field: schema.field(i).clone(),
        })
    }

    #[test]
    fn listing_4_shape() {
        let plan = LogicalPlan::Skyline {
            distinct: false,
            complete: true,
            dims: vec![
                SkylineDimension::new(bound(0), SkylineType::Min),
                SkylineDimension::new(bound(1), SkylineType::Max),
            ],
            input: Arc::new(scan()),
        };
        let reference = rewrite_to_reference(&plan).unwrap();
        match &reference {
            LogicalPlan::Join {
                join_type,
                condition,
                ..
            } => {
                assert_eq!(*join_type, JoinType::LeftAnti);
                let JoinCondition::On(p) = condition else {
                    panic!("expected On");
                };
                assert_eq!(
                    p.to_string(),
                    "(((hotels.price#2 <= hotels.price#0) AND \
                      (hotels.rating#3 >= hotels.rating#1)) AND \
                      ((hotels.price#2 < hotels.price#0) OR \
                      (hotels.rating#3 > hotels.rating#1)))"
                );
            }
            other => panic!("expected anti join, got:\n{other}"),
        }
    }

    #[test]
    fn diff_dims_produce_equalities() {
        let plan = LogicalPlan::Skyline {
            distinct: false,
            complete: true,
            dims: vec![
                SkylineDimension::new(bound(0), SkylineType::Diff),
                SkylineDimension::new(bound(1), SkylineType::Min),
            ],
            input: Arc::new(scan()),
        };
        let reference = rewrite_to_reference(&plan).unwrap();
        let d = reference.display_indent();
        assert!(d.contains("(hotels.price#2 = hotels.price#0)"), "{d}");
    }

    #[test]
    fn distinct_is_rejected() {
        let plan = LogicalPlan::Skyline {
            distinct: true,
            complete: true,
            dims: vec![SkylineDimension::new(bound(0), SkylineType::Min)],
            input: Arc::new(scan()),
        };
        assert!(rewrite_to_reference(&plan).is_err());
    }

    #[test]
    fn plans_without_skyline_unchanged() {
        let plan = scan();
        assert_eq!(rewrite_to_reference(&plan).unwrap(), plan);
    }
}
