//! Column/literal constructors and the skyline-dimension helpers of the
//! paper's DataFrame API (§5.8): `smin()`, `smax()`, `sdiff()`.

use sparkline_common::{SkylineType, Value};
use sparkline_plan::{Expr, SkylineDimension, SortExpr};

/// An unqualified column reference.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::col(name)
}

/// A qualified column reference (`qcol("hotels", "price")`).
pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
    Expr::qcol(qualifier, name)
}

/// A literal value.
pub fn lit(value: impl Into<Value>) -> Expr {
    Expr::lit(value)
}

/// A `MIN` skyline dimension over an expression (paper §5.8 `smin()`).
pub fn smin(expr: Expr) -> SkylineDimension {
    SkylineDimension::new(expr, SkylineType::Min)
}

/// A `MAX` skyline dimension over an expression (paper §5.8 `smax()`).
pub fn smax(expr: Expr) -> SkylineDimension {
    SkylineDimension::new(expr, SkylineType::Max)
}

/// A `DIFF` skyline dimension over an expression (paper §5.8 `sdiff()`).
pub fn sdiff(expr: Expr) -> SkylineDimension {
    SkylineDimension::new(expr, SkylineType::Diff)
}

/// Ascending sort key.
pub fn asc(expr: Expr) -> SortExpr {
    SortExpr::asc(expr)
}

/// Descending sort key.
pub fn desc(expr: Expr) -> SortExpr {
    SortExpr::desc(expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_constructors() {
        assert_eq!(smin(col("a")).ty, SkylineType::Min);
        assert_eq!(smax(col("a")).ty, SkylineType::Max);
        assert_eq!(sdiff(col("a")).ty, SkylineType::Diff);
        assert_eq!(smin(col("price")).to_string(), "price MIN");
    }

    #[test]
    fn sort_constructors() {
        assert!(asc(col("a")).asc);
        assert!(!desc(col("a")).asc);
    }
}
