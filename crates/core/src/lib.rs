#![warn(missing_docs)]

//! # sparkline
//!
//! A distributed SQL query engine with **native skyline-query support**,
//! reproducing *"Integration of Skyline Queries into Spark SQL"*
//! (Grasmann, Pichler, Selzer — EDBT 2023) in Rust.
//!
//! The engine mirrors Spark SQL's pipeline (the paper's Figure 2): a SQL
//! parser with the `SKYLINE OF [DISTINCT] [COMPLETE] dim MIN|MAX|DIFF, ...`
//! clause, an analyzer with the paper's skyline resolution rules, a
//! rule-based optimizer with the §5.4 skyline rewrites, and a physical
//! planner that performs the Listing 8 algorithm selection over a
//! partitioned, multi-threaded executor runtime.
//!
//! ## Quickstart
//!
//! ```
//! use sparkline::{SessionContext, Row, Schema, Field, DataType, Value};
//!
//! let ctx = SessionContext::new();
//! ctx.register_table(
//!     "hotels",
//!     Schema::new(vec![
//!         Field::new("price", DataType::Int64, false),
//!         Field::new("user_rating", DataType::Int64, false),
//!     ]),
//!     vec![
//!         Row::new(vec![Value::Int64(50), Value::Int64(7)]),
//!         Row::new(vec![Value::Int64(80), Value::Int64(9)]),
//!         Row::new(vec![Value::Int64(90), Value::Int64(6)]), // dominated
//!     ],
//! ).unwrap();
//!
//! // Listing 2 of the paper:
//! let result = ctx
//!     .sql("SELECT price, user_rating FROM hotels \
//!           SKYLINE OF price MIN, user_rating MAX")
//!     .unwrap()
//!     .collect()
//!     .unwrap();
//! assert_eq!(result.num_rows(), 2);
//! ```
//!
//! The same query through the DataFrame API (paper §5.8):
//!
//! ```
//! use sparkline::{SessionContext, Row, Schema, Field, DataType, Value};
//! use sparkline::functions::{col, smin, smax};
//!
//! let ctx = SessionContext::new();
//! ctx.register_table(
//!     "hotels",
//!     Schema::new(vec![
//!         Field::new("price", DataType::Int64, false),
//!         Field::new("user_rating", DataType::Int64, false),
//!     ]),
//!     vec![Row::new(vec![Value::Int64(50), Value::Int64(7)])],
//! ).unwrap();
//! let df = ctx.table("hotels").unwrap()
//!     .skyline(vec![smin(col("price")), smax(col("user_rating"))]);
//! assert_eq!(df.collect().unwrap().num_rows(), 1);
//! ```

pub mod catalog;
pub mod dataframe;
pub mod functions;
pub mod reference;
pub mod result;
pub mod session;

pub use catalog::SessionCatalog;
pub use dataframe::DataFrame;
pub use reference::rewrite_to_reference;
pub use result::QueryResult;
pub use session::{Algorithm, SessionContext};

// Re-export the vocabulary users need without digging into sub-crates.
pub use sparkline_common::{
    DataType, DominanceKernel, Error, Field, MergeStrategy, Result, Row, Schema, SchemaRef,
    SessionConfig, SkylinePartitioning, SkylineStrategy, SkylineType, Value,
};
pub use sparkline_plan::{Expr, JoinCondition, JoinType, LogicalPlan, SkylineDimension, SortExpr};

#[cfg(test)]
mod tests {
    use super::functions::*;
    use super::*;

    fn hotel_session() -> SessionContext {
        let ctx = SessionContext::new();
        ctx.register_table(
            "hotels",
            Schema::new(vec![
                Field::new("id", DataType::Int64, false),
                Field::new("price", DataType::Int64, false),
                Field::new("rating", DataType::Int64, false),
            ]),
            vec![
                Row::new(vec![1.into(), 50.into(), 7.into()]),
                Row::new(vec![2.into(), 80.into(), 9.into()]),
                Row::new(vec![3.into(), 90.into(), 6.into()]), // dominated by 1 & 2
                Row::new(vec![4.into(), 50.into(), 7.into()]), // tie with 1
                Row::new(vec![5.into(), 40.into(), 3.into()]),
            ],
        )
        .unwrap();
        ctx
    }

    #[test]
    fn sql_skyline_end_to_end() {
        let ctx = hotel_session();
        let result = ctx
            .sql("SELECT price, rating FROM hotels SKYLINE OF price MIN, rating MAX")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(result.num_rows(), 4);
        assert!(result.metrics.dominance_tests > 0);
        assert!(result.peak_memory_bytes > 0);
    }

    #[test]
    fn sql_skyline_distinct() {
        let ctx = hotel_session();
        let result = ctx
            .sql(
                "SELECT price, rating FROM hotels \
                 SKYLINE OF DISTINCT price MIN, rating MAX",
            )
            .unwrap()
            .collect()
            .unwrap();
        // The (50,7) tie collapses to one representative.
        assert_eq!(result.num_rows(), 3);
    }

    #[test]
    fn dataframe_skyline_matches_sql() {
        let ctx = hotel_session();
        let sql = ctx
            .sql("SELECT * FROM hotels SKYLINE OF price MIN, rating MAX")
            .unwrap()
            .collect()
            .unwrap();
        let df = ctx
            .table("hotels")
            .unwrap()
            .skyline(vec![smin(col("price")), smax(col("rating"))])
            .collect()
            .unwrap();
        assert_eq!(sql.sorted_display(), df.sorted_display());
    }

    #[test]
    fn integrated_equals_reference_listing_1_vs_2() {
        let ctx = hotel_session();
        // Listing 2 (integrated).
        let integrated = ctx
            .sql("SELECT price, rating FROM hotels SKYLINE OF price MIN, rating MAX")
            .unwrap()
            .collect()
            .unwrap();
        // Listing 1 (hand-written plain SQL).
        let reference = ctx
            .sql(
                "SELECT price, rating FROM hotels AS o WHERE NOT EXISTS( \
                   SELECT * FROM hotels AS i WHERE \
                     i.price <= o.price AND i.rating >= o.rating \
                     AND (i.price < o.price OR i.rating > o.rating))",
            )
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(integrated.sorted_display(), reference.sorted_display());
    }

    #[test]
    fn all_four_algorithms_agree_on_complete_data() {
        let ctx = hotel_session();
        let df = ctx
            .sql("SELECT * FROM hotels SKYLINE OF price MIN, rating MAX")
            .unwrap();
        let auto = df.collect().unwrap().sorted_display();
        for algorithm in Algorithm::paper_algorithms() {
            let result = df.collect_with_algorithm(algorithm).unwrap();
            assert_eq!(
                result.sorted_display(),
                auto,
                "algorithm {} disagrees",
                algorithm.label()
            );
        }
    }

    #[test]
    fn executor_count_does_not_change_results() {
        let base = hotel_session();
        let df_sql = "SELECT * FROM hotels SKYLINE OF price MIN, rating MAX";
        let expected = base
            .sql(df_sql)
            .unwrap()
            .collect()
            .unwrap()
            .sorted_display();
        for executors in [1usize, 2, 3, 5, 10] {
            let ctx = base.with_shared_catalog(SessionConfig::default().with_executors(executors));
            let got = ctx.sql(df_sql).unwrap().collect().unwrap().sorted_display();
            assert_eq!(got, expected, "{executors} executors");
        }
    }

    #[test]
    fn explain_shows_all_stages() {
        let ctx = hotel_session();
        let df = ctx
            .sql("SELECT price FROM hotels SKYLINE OF price MIN, rating MAX")
            .unwrap();
        let explain = df.explain().unwrap();
        assert!(explain.contains("== Analyzed Logical Plan =="), "{explain}");
        assert!(
            explain.contains("== Optimized Logical Plan =="),
            "{explain}"
        );
        assert!(explain.contains("== Physical Plan =="), "{explain}");
        assert!(explain.contains("GlobalSkylineExec"), "{explain}");
        let reference = df.explain_with(Algorithm::Reference).unwrap();
        assert!(
            reference.contains("NestedLoopJoinExec [LeftAnti"),
            "{reference}"
        );
    }

    #[test]
    fn timeout_surfaces_as_error() {
        let ctx = hotel_session()
            .with_shared_catalog(SessionConfig::default().with_timeout(std::time::Duration::ZERO));
        let err = ctx
            .sql("SELECT * FROM hotels SKYLINE OF price MIN, rating MAX")
            .unwrap()
            .collect()
            .unwrap_err();
        assert!(err.is_timeout(), "{err}");
    }

    #[test]
    fn single_dimension_skyline_via_minmax() {
        let ctx = hotel_session();
        let df = ctx
            .sql("SELECT * FROM hotels SKYLINE OF price MIN")
            .unwrap();
        let explain = df.explain().unwrap();
        assert!(explain.contains("MinMaxFilterExec"), "{explain}");
        let result = df.collect().unwrap();
        assert_eq!(result.num_rows(), 1);
        assert_eq!(result.rows[0].get(1), &Value::Int64(40));
    }

    #[test]
    fn group_by_skyline_on_aggregate() {
        let ctx = SessionContext::new();
        ctx.register_table(
            "sales",
            Schema::new(vec![
                Field::new("store", DataType::Int64, false),
                Field::new("amount", DataType::Int64, false),
            ]),
            vec![
                Row::new(vec![1.into(), 10.into()]),
                Row::new(vec![1.into(), 20.into()]),
                Row::new(vec![2.into(), 40.into()]),
                Row::new(vec![3.into(), 5.into()]),
                Row::new(vec![3.into(), 5.into()]),
            ],
        )
        .unwrap();
        // Stores on the Pareto front of (few sales, high revenue).
        let result = ctx
            .sql(
                "SELECT store, sum(amount) AS revenue FROM sales GROUP BY store \
                 SKYLINE OF count(*) MIN, sum(amount) MAX ORDER BY store",
            )
            .unwrap()
            .collect()
            .unwrap();
        // store 1: (2, 30); store 2: (1, 40); store 3: (2, 10).
        // Store 2 dominates both others (fewer sales, more revenue).
        assert_eq!(result.num_rows(), 1);
        assert_eq!(result.rows[0].get(0), &Value::Int64(2));
    }

    #[test]
    fn table_management() {
        let ctx = hotel_session();
        assert_eq!(ctx.table_names(), vec!["hotels"]);
        assert_eq!(ctx.table_row_count("hotels"), Some(5));
        assert!(ctx.deregister_table("hotels"));
        assert!(ctx.table_row_count("hotels").is_none());
    }

    #[test]
    fn dataframe_composition() {
        let ctx = hotel_session();
        let df = ctx
            .table("hotels")
            .unwrap()
            .filter(col("price").lt(lit(85i64)))
            .select(vec![col("price"), col("rating")])
            .skyline(vec![smin(col("price")), smax(col("rating"))])
            .sort(vec![asc(col("price"))])
            .limit(10);
        let result = df.collect().unwrap();
        // Survivors of the filter: (50,7) twice (ties both kept), (80,9),
        // and (40,3) — all Pareto-optimal.
        assert_eq!(result.num_rows(), 4);
        assert_eq!(result.rows[0].get(0), &Value::Int64(40));
        let schema = df.schema().unwrap();
        assert_eq!(schema.len(), 2);
    }

    #[test]
    fn incomplete_data_auto_selects_incomplete_algorithm() {
        let ctx = SessionContext::new();
        ctx.register_table(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int64, true),
                Field::new("b", DataType::Int64, true),
                Field::new("c", DataType::Int64, true),
            ]),
            vec![
                // The Appendix A cycle: skyline must be empty.
                Row::new(vec![1.into(), Value::Null, 10.into()]),
                Row::new(vec![3.into(), 2.into(), Value::Null]),
                Row::new(vec![Value::Null, 5.into(), 3.into()]),
            ],
        )
        .unwrap();
        let df = ctx
            .sql("SELECT * FROM t SKYLINE OF a MIN, b MIN, c MIN")
            .unwrap();
        let explain = df.explain().unwrap();
        assert!(explain.contains("IncompleteGlobalSkylineExec"), "{explain}");
        assert_eq!(df.collect().unwrap().num_rows(), 0);
    }

    #[test]
    fn complete_keyword_forces_complete_algorithm() {
        let ctx = SessionContext::new();
        ctx.register_table(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int64, true),
                Field::new("b", DataType::Int64, true),
            ]),
            vec![Row::new(vec![1.into(), 2.into()])],
        )
        .unwrap();
        let df = ctx
            .sql("SELECT * FROM t SKYLINE OF COMPLETE a MIN, b MIN")
            .unwrap();
        let explain = df.explain().unwrap();
        assert!(
            explain.contains("GlobalSkylineExec") && !explain.contains("Incomplete"),
            "{explain}"
        );
    }
}
