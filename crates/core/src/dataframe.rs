//! The DataFrame API (paper §5.8): programmatic construction of skyline
//! queries, bypassing the parser and "directly creat[ing] a new skyline
//! operator node in the logical plan".

use sparkline_common::{Result, SchemaRef};
use sparkline_plan::{
    Expr, JoinCondition, JoinType, LogicalPlan, LogicalPlanBuilder, SkylineDimension, SortExpr,
};

use crate::result::QueryResult;
use crate::session::{Algorithm, SessionContext};

/// A lazily evaluated relational computation bound to a session.
#[derive(Clone)]
pub struct DataFrame {
    session: SessionContext,
    plan: LogicalPlan,
}

impl DataFrame {
    /// Wrap a logical plan (used by [`SessionContext`]).
    pub(crate) fn new(session: SessionContext, plan: LogicalPlan) -> Self {
        DataFrame { session, plan }
    }

    /// The underlying logical plan.
    pub fn logical_plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// The output schema (analyzes lazily built additions).
    pub fn schema(&self) -> Result<SchemaRef> {
        if self.plan.resolved() {
            self.plan.schema()
        } else {
            // Re-analyze to resolve builder-added, still-named expressions.
            let analyzed = self.session.sql_plan(&self.plan)?;
            analyzed.schema()
        }
    }

    fn with_plan(&self, plan: LogicalPlan) -> DataFrame {
        DataFrame {
            session: self.session.clone(),
            plan,
        }
    }

    /// `SELECT exprs`.
    pub fn select(&self, exprs: Vec<Expr>) -> DataFrame {
        self.with_plan(
            LogicalPlanBuilder::from(self.plan.clone())
                .project(exprs)
                .plan()
                .clone(),
        )
    }

    /// `WHERE predicate`.
    pub fn filter(&self, predicate: Expr) -> DataFrame {
        self.with_plan(
            LogicalPlanBuilder::from(self.plan.clone())
                .filter(predicate)
                .plan()
                .clone(),
        )
    }

    /// `GROUP BY group_exprs` with result expressions `aggr_exprs`.
    pub fn aggregate(&self, group_exprs: Vec<Expr>, aggr_exprs: Vec<Expr>) -> DataFrame {
        self.with_plan(
            LogicalPlanBuilder::from(self.plan.clone())
                .aggregate(group_exprs, aggr_exprs)
                .plan()
                .clone(),
        )
    }

    /// `ORDER BY keys`.
    pub fn sort(&self, keys: Vec<SortExpr>) -> DataFrame {
        self.with_plan(
            LogicalPlanBuilder::from(self.plan.clone())
                .sort(keys)
                .plan()
                .clone(),
        )
    }

    /// `LIMIT n`.
    pub fn limit(&self, n: usize) -> DataFrame {
        self.with_plan(
            LogicalPlanBuilder::from(self.plan.clone())
                .limit(n)
                .plan()
                .clone(),
        )
    }

    /// `SELECT DISTINCT`.
    pub fn distinct(&self) -> DataFrame {
        self.with_plan(
            LogicalPlanBuilder::from(self.plan.clone())
                .distinct()
                .plan()
                .clone(),
        )
    }

    /// Alias this relation (`AS name`).
    pub fn alias(&self, name: impl Into<String>) -> DataFrame {
        self.with_plan(
            LogicalPlanBuilder::from(self.plan.clone())
                .alias(name)
                .plan()
                .clone(),
        )
    }

    /// Join with another DataFrame.
    pub fn join(
        &self,
        right: &DataFrame,
        join_type: JoinType,
        condition: JoinCondition,
    ) -> DataFrame {
        self.with_plan(
            LogicalPlanBuilder::from(self.plan.clone())
                .join(right.plan.clone(), join_type, condition)
                .plan()
                .clone(),
        )
    }

    /// The skyline operator (paper §5.8): `skyline(vec![smin(col("price")),
    /// smax(col("rating"))])`.
    pub fn skyline(&self, dims: Vec<SkylineDimension>) -> DataFrame {
        self.skyline_with(false, false, dims)
    }

    /// Skyline with the `DISTINCT` / `COMPLETE` modifiers.
    pub fn skyline_with(
        &self,
        distinct: bool,
        complete: bool,
        dims: Vec<SkylineDimension>,
    ) -> DataFrame {
        self.with_plan(
            LogicalPlanBuilder::from(self.plan.clone())
                .skyline(distinct, complete, dims)
                .plan()
                .clone(),
        )
    }

    /// Execute with the session's (Listing 8 `Auto`) algorithm selection.
    pub fn collect(&self) -> Result<QueryResult> {
        self.session.execute_plan(&self.plan)
    }

    /// Execute forcing one of the paper's four algorithms.
    pub fn collect_with_algorithm(&self, algorithm: Algorithm) -> Result<QueryResult> {
        self.session.execute_plan_with(&self.plan, algorithm)
    }

    /// Number of result rows.
    pub fn count(&self) -> Result<usize> {
        Ok(self.collect()?.num_rows())
    }

    /// Render all pipeline stages (`EXPLAIN EXTENDED`).
    pub fn explain(&self) -> Result<String> {
        self.session.explain_plan(&self.plan, Algorithm::Auto)
    }

    /// Render the pipeline for a specific algorithm.
    pub fn explain_with(&self, algorithm: Algorithm) -> Result<String> {
        self.session.explain_plan(&self.plan, algorithm)
    }

    /// `EXPLAIN ANALYZE`: execute and render the physical plan with the
    /// measured metrics, including the stream gauges (`batches emitted`,
    /// `peak rows in flight`).
    pub fn explain_analyze(&self) -> Result<String> {
        self.session.explain_analyze(&self.plan, Algorithm::Auto)
    }

    /// [`explain_analyze`](Self::explain_analyze) forcing an algorithm.
    pub fn explain_analyze_with(&self, algorithm: Algorithm) -> Result<String> {
        self.session.explain_analyze(&self.plan, algorithm)
    }
}

impl SessionContext {
    /// Analyze an arbitrary (possibly DataFrame-built) plan against this
    /// session's catalog.
    pub(crate) fn sql_plan(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        let catalog = self.catalog_read();
        sparkline_analyzer::Analyzer::new(&*catalog).analyze(plan)
    }
}
