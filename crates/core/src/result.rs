//! Query results: rows plus the measurements the paper's evaluation
//! reports (wall time, dominance tests, peak memory).

use std::time::Duration;

use sparkline_common::{Row, SchemaRef, Value};
use sparkline_exec::MetricsSnapshot;

/// The outcome of executing a query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output schema.
    pub schema: SchemaRef,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Execution counters (dominance tests, rows exchanged, ...).
    pub metrics: MetricsSnapshot,
    /// Wall-clock execution time (excludes parsing/planning).
    pub elapsed: Duration,
    /// Peak tracked memory including the per-executor overhead — the
    /// quantity plotted in the paper's Appendix C memory charts.
    pub peak_memory_bytes: usize,
}

impl QueryResult {
    /// Number of result rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Rows rendered as sorted display strings (order-insensitive
    /// comparison helper used widely in tests).
    pub fn sorted_display(&self) -> Vec<String> {
        let mut v: Vec<String> = self.rows.iter().map(|r| r.to_string()).collect();
        v.sort();
        v
    }

    /// Pretty-print as an aligned text table (for examples and the CLI).
    pub fn format_table(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name().to_string())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = render(v);
                        if i < widths.len() {
                            widths[i] = widths[i].max(s.len());
                        }
                        s
                    })
                    .collect()
            })
            .collect();

        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &cells {
            out.push('|');
            for (c, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {c:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

fn render(v: &Value) -> String {
    v.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{DataType, Field, Schema};

    #[test]
    fn table_formatting() {
        let result = QueryResult {
            schema: Schema::new(vec![
                Field::new("price", DataType::Int64, false),
                Field::new("rating", DataType::Int64, true),
            ])
            .into_ref(),
            rows: vec![
                Row::new(vec![Value::Int64(50), Value::Int64(9)]),
                Row::new(vec![Value::Int64(120), Value::Null]),
            ],
            metrics: MetricsSnapshot::default(),
            elapsed: Duration::from_millis(5),
            peak_memory_bytes: 0,
        };
        let t = result.format_table();
        assert!(t.contains("| price | rating |"), "{t}");
        assert!(t.contains("| 120   | NULL   |"), "{t}");
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.sorted_display().len(), 2);
    }
}
