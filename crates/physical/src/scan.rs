//! Base-table and literal-row scans.

use std::sync::Arc;

use sparkline_common::{Result, Row, SchemaRef};
use sparkline_exec::{partition::even_ranges, FaultSite, PartitionStream, TaskContext};

use crate::ExecutionPlan;

/// Scans an in-memory table (or inline `VALUES` rows), splitting the data
/// evenly across `num_executors` partition streams — Spark's default
/// distribution for a fresh read.
///
/// Each stream clones only one batch of rows out of the shared
/// [`Arc`]'d table per pull; the seed model's upfront full-table copy
/// (`rows.as_ref().clone()`) is gone, and a `LIMIT`-short-circuited query
/// never touches (or counts in `rows_scanned`) the rows it does not read.
#[derive(Debug)]
pub struct ScanExec {
    label: String,
    rows: Arc<Vec<Row>>,
    schema: SchemaRef,
}

impl ScanExec {
    /// Scan over shared rows.
    pub fn new(label: impl Into<String>, rows: Arc<Vec<Row>>, schema: SchemaRef) -> Self {
        ScanExec {
            label: label.into(),
            rows,
            schema,
        }
    }
}

impl ExecutionPlan for ScanExec {
    fn name(&self) -> &'static str {
        "ScanExec"
    }

    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![]
    }

    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>> {
        ctx.control.check()?;
        // Same partition boundaries as the materialized model's
        // `split_evenly` — shared arithmetic, so the two can never drift.
        let ranges = even_ranges(self.rows.len(), ctx.runtime.num_executors());
        let batch_size = ctx.batch_size.max(1);
        Ok(ranges
            .into_iter()
            .enumerate()
            .map(|(part, (start, end))| {
                let rows = Arc::clone(&self.rows);
                let ctx = ctx.clone();
                let mut pos = start;
                let mut seq = 0u64;
                PartitionStream::new(self.schema(), Arc::clone(&ctx.metrics), move || {
                    if pos >= end {
                        return Ok(None);
                    }
                    ctx.control.check()?;
                    ctx.maybe_inject(FaultSite::Scan, part, seq)?;
                    seq += 1;
                    let upto = (pos + batch_size).min(end);
                    let batch: Vec<Row> = rows[pos..upto].to_vec();
                    ctx.metrics
                        .rows_scanned
                        .fetch_add(batch.len() as u64, std::sync::atomic::Ordering::Relaxed);
                    pos = upto;
                    Ok(Some(batch))
                })
            })
            .collect())
    }

    fn describe(&self) -> String {
        format!("ScanExec [{}: {} rows]", self.label, self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{DataType, Field, Schema, Value};

    fn scan(n: usize) -> ScanExec {
        let rows: Vec<Row> = (0..n)
            .map(|i| Row::new(vec![Value::Int64(i as i64)]))
            .collect();
        let schema = Schema::new(vec![Field::new("x", DataType::Int64, false)]).into_ref();
        ScanExec::new("t", Arc::new(rows), schema)
    }

    #[test]
    fn scan_partitions_by_executor_count() {
        let scan = scan(10);
        let ctx = TaskContext::new(4);
        let parts = scan.execute(&ctx).unwrap();
        assert_eq!(parts.len(), 4);
        assert_eq!(sparkline_exec::partition::total_rows(&parts), 10);
        // Identical boundaries to the materialized split_evenly.
        let expected = sparkline_exec::partition::split_evenly(
            (0..10).map(|i| Row::new(vec![Value::Int64(i)])).collect(),
            4,
        );
        assert_eq!(parts, expected);
        assert_eq!(
            ctx.metrics
                .rows_scanned
                .load(std::sync::atomic::Ordering::Relaxed),
            10
        );
    }

    #[test]
    fn unpulled_rows_are_never_scanned() {
        let scan = scan(10_000);
        let ctx = TaskContext::new(1).with_batch_size(64);
        let mut streams = scan.execute_stream(&ctx).unwrap();
        assert_eq!(streams.len(), 1);
        let first = streams[0].next_batch().unwrap().unwrap();
        assert_eq!(first.len(), 64);
        drop(streams);
        let snap = ctx.metrics.snapshot();
        assert_eq!(snap.rows_scanned, 64, "only the pulled batch is read");
        assert_eq!(snap.batches_emitted, 1);
    }
}
