//! Base-table and literal-row scans.

use std::sync::Arc;

use sparkline_common::{Result, Row, SchemaRef};
use sparkline_exec::{partition::split_evenly, Partition, TaskContext};

use crate::ExecutionPlan;

/// Scans an in-memory table (or inline `VALUES` rows), splitting the data
/// evenly across `num_executors` partitions — Spark's default distribution
/// for a fresh read.
#[derive(Debug)]
pub struct ScanExec {
    label: String,
    rows: Arc<Vec<Row>>,
    schema: SchemaRef,
}

impl ScanExec {
    /// Scan over shared rows.
    pub fn new(label: impl Into<String>, rows: Arc<Vec<Row>>, schema: SchemaRef) -> Self {
        ScanExec {
            label: label.into(),
            rows,
            schema,
        }
    }
}

impl ExecutionPlan for ScanExec {
    fn name(&self) -> &'static str {
        "ScanExec"
    }

    fn schema(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![]
    }

    fn execute(&self, ctx: &TaskContext) -> Result<Vec<Partition>> {
        ctx.deadline.check()?;
        ctx.metrics
            .rows_scanned
            .fetch_add(self.rows.len() as u64, std::sync::atomic::Ordering::Relaxed);
        let parts = split_evenly(self.rows.as_ref().clone(), ctx.runtime.num_executors());
        ctx.memory.grow(crate::partitions_bytes(&parts));
        ctx.memory.shrink(crate::partitions_bytes(&parts));
        Ok(parts)
    }

    fn describe(&self) -> String {
        format!("ScanExec [{}: {} rows]", self.label, self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparkline_common::{DataType, Field, Schema, Value};

    #[test]
    fn scan_partitions_by_executor_count() {
        let rows: Vec<Row> = (0..10).map(|i| Row::new(vec![Value::Int64(i)])).collect();
        let schema = Schema::new(vec![Field::new("x", DataType::Int64, false)]).into_ref();
        let scan = ScanExec::new("t", Arc::new(rows), schema);
        let ctx = TaskContext::new(4);
        let parts = scan.execute(&ctx).unwrap();
        assert_eq!(parts.len(), 4);
        assert_eq!(sparkline_exec::partition::total_rows(&parts), 10);
        assert_eq!(
            ctx.metrics
                .rows_scanned
                .load(std::sync::atomic::Ordering::Relaxed),
            10
        );
    }
}
