#![warn(missing_docs)]

//! # sparkline-physical
//!
//! Physical operators and the physical planner of the `sparkline` engine.
//! The planner translates optimized logical plans into executable operator
//! trees and performs the paper's skyline **algorithm selection**
//! (Listing 8): complete data runs the two-phase Block-Nested-Loop plan
//! (`LocalSkylineExec` + single-partition `GlobalSkylineExec`); potentially
//! incomplete data is hash-distributed by null bitmap for the local phase
//! and finished by the all-pairs `IncompleteGlobalSkylineExec`.
//!
//! Operators follow a **pull-based, batched stream model** (the analogue
//! of Spark's pipelined narrow transformations): `execute_stream` returns
//! one [`PartitionStream`] per output partition, and each stream yields
//! `RowBatch`es of `SessionConfig::batch_size` rows on demand. Narrow
//! operators — scan, project, filter, limit, distinct, join probe sides —
//! are true pipelined transforms: pulling one batch from the root pulls
//! exactly one batch through the whole chain, so peak memory is bounded
//! by `batch_size × pipeline depth` (plus breaker state) instead of the
//! sum of all intermediates, and `LIMIT k` cancels upstream work after
//! `O(k / batch_size)` batches. Pipeline breakers — sort, aggregation,
//! exchanges, the skyline phases, join build sides — consume their input
//! streams batch-by-batch into their internal state (the skyline
//! operators feed batches straight into the columnar kernel's
//! encode-once window builders) and fan the draining of multiple input
//! streams over the executor pool, which is where the `num_executors`-way
//! parallelism of the paper's local/global structure lives.
//!
//! The provided [`ExecutionPlan::execute`] adapter drains all streams
//! back into the seed's `Vec<Partition>` form — byte-identical results —
//! and `SessionConfig::streaming_execution = false` additionally
//! re-materializes every operator boundary, reproducing the seed model's
//! memory profile for A/B benchmarks (`peak_rows_in_flight`).

pub mod aggregate;
pub mod basic;
pub mod exchange;
pub mod join;
pub mod planner;
pub mod scan;
pub mod scan_disk;
pub mod skyline_exec;

use std::fmt;
use std::sync::{Arc, OnceLock};

use sparkline_common::{Error, Result, SchemaRef};
use sparkline_exec::{Partition, PartitionStream, TaskContext};

pub use aggregate::HashAggregateExec;
pub use basic::{DistinctExec, FilterExec, LimitExec, ProjectExec, SortExec};
pub use exchange::{ExchangeExec, ExchangeMode};
pub use join::{HashJoinExec, NestedLoopJoinExec};
pub use planner::{ExecTableSource, PhysicalPlanner};
pub use scan::ScanExec;
pub use scan_disk::{ColumnPredicate, DiskScanExec, DominanceSkip};
pub use skyline_exec::{
    GlobalSkylineExec, IncompleteGlobalSkylineExec, LocalSkylineExec, MinMaxFilterExec,
};

/// A physical operator.
pub trait ExecutionPlan: fmt::Debug + Send + Sync {
    /// Operator name for plan display.
    fn name(&self) -> &'static str;

    /// Output schema.
    fn schema(&self) -> SchemaRef;

    /// Child operators.
    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>>;

    /// Execute, producing one pull-based batch stream per output
    /// partition. Streams are lazy: no work happens until a batch is
    /// pulled, and dropping a stream cancels its remaining upstream work.
    fn execute_stream(&self, ctx: &TaskContext) -> Result<Vec<PartitionStream>>;

    /// Materialized adapter: drain every partition stream (fanned over
    /// the executor pool). Byte-identical to consuming the streams
    /// directly; kept for tests and the bench harness.
    ///
    /// Transient (retryable) partition failures are recovered by
    /// re-running `execute_stream` on this immutable plan subtree — the
    /// lineage — and recomputing only the failed partition, up to the
    /// context's retry budget. Finished sibling partitions keep their
    /// results.
    fn execute(&self, ctx: &TaskContext) -> Result<Vec<Partition>> {
        let streams = self.execute_stream(ctx)?;
        let expected = streams.len();
        ctx.drain_streams_retrying(streams, |i| {
            recreate_partition_stream(self, ctx, expected, i)
        })
    }

    /// One-line description (operator plus parameters).
    fn describe(&self) -> String {
        self.name().to_string()
    }

    /// The write-once dominance-skip slot of a disk scan, letting the
    /// skyline planner install representative skip points after the tree
    /// is built. `None` (the default) for every other operator.
    fn dominance_skip_slot(&self) -> Option<&OnceLock<DominanceSkip>> {
        None
    }

    /// Whether every output row of this operator is an unmodified input
    /// row (subset / reorder only — filters, sorts, distinct). Gates the
    /// planner's walk from a skyline operator down to a disk scan when
    /// installing dominance-skip points: through a value-preserving chain,
    /// column positions and values are those of the scan, so a point that
    /// survives the chain dominates block rows in scan space.
    fn preserves_row_values(&self) -> bool {
        false
    }
}

/// Walk a single-child chain of value-preserving operators down to a disk
/// scan's dominance-skip slot, if one is reachable.
pub fn find_dominance_skip_slot(plan: &dyn ExecutionPlan) -> Option<&OnceLock<DominanceSkip>> {
    if let Some(slot) = plan.dominance_skip_slot() {
        return Some(slot);
    }
    if !plan.preserves_row_values() {
        return None;
    }
    let children = plan.children();
    if children.len() != 1 {
        return None;
    }
    let only: &Arc<dyn ExecutionPlan> = children[0];
    find_dominance_skip_slot(only.as_ref())
}

/// Re-run `execute_stream` on an immutable plan subtree and keep only the
/// stream for partition `i` — the lineage-based recomputation behind
/// partition retry. Errors if the re-execution yields a different
/// partition count (the plan is immutable, so that would be a bug).
pub(crate) fn recreate_partition_stream<P: ExecutionPlan + ?Sized>(
    plan: &P,
    ctx: &TaskContext,
    expected: usize,
    i: usize,
) -> Result<PartitionStream> {
    let mut fresh = plan.execute_stream(ctx)?;
    if fresh.len() != expected || i >= fresh.len() {
        return Err(Error::internal(format!(
            "retry of partition {i} re-planned {} streams, expected {expected}",
            fresh.len()
        )));
    }
    Ok(fresh.swap_remove(i))
}

/// Render a physical plan tree, one operator per line.
pub fn display_physical(plan: &Arc<dyn ExecutionPlan>) -> String {
    fn build(plan: &Arc<dyn ExecutionPlan>, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&plan.describe());
        out.push('\n');
        for child in plan.children() {
            build(child, depth + 1, out);
        }
    }
    let mut out = String::new();
    build(plan, 0, &mut out);
    out
}

/// An operator's view of its child: the child's streams, re-materialized
/// at this boundary when the context runs the seed's materialized model
/// (`SessionConfig::streaming_execution = false`). The re-materialized
/// buffers count fully toward `rows_in_flight` for as long as the
/// consumer holds the streams — exactly the peak-memory profile of the
/// materialize-everything model the streaming benchmarks compare against.
pub(crate) fn input_streams(
    plan: &Arc<dyn ExecutionPlan>,
    ctx: &TaskContext,
) -> Result<Vec<PartitionStream>> {
    let streams = plan.execute_stream(ctx)?;
    if !ctx.materialized {
        return Ok(streams);
    }
    let expected = streams.len();
    let parts = ctx.drain_streams_retrying(streams, |i| {
        recreate_partition_stream(plan.as_ref(), ctx, expected, i)
    })?;
    // The re-materialized buffers hold budget-checked byte reservations
    // for as long as the consumer keeps the streams — the materialized
    // model's peak-memory profile, now enforced against the query budget.
    sparkline_exec::stream::streams_from_partitions_reserved(plan.schema(), ctx, parts)
}
