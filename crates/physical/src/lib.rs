#![warn(missing_docs)]

//! # sparkline-physical
//!
//! Physical operators and the physical planner of the `sparkline` engine.
//! The planner translates optimized logical plans into executable operator
//! trees and performs the paper's skyline **algorithm selection**
//! (Listing 8): complete data runs the two-phase Block-Nested-Loop plan
//! (`LocalSkylineExec` + single-partition `GlobalSkylineExec`); potentially
//! incomplete data is hash-distributed by null bitmap for the local phase
//! and finished by the all-pairs `IncompleteGlobalSkylineExec`.
//!
//! Operators follow a materialized, partition-parallel model: an operator
//! consumes its children's partitions and produces new partitions, with
//! per-partition work fanned out over the executor pool — the same
//! local/global structure Spark gives the paper's plans.

pub mod aggregate;
pub mod basic;
pub mod exchange;
pub mod join;
pub mod planner;
pub mod scan;
pub mod skyline_exec;

use std::fmt;
use std::sync::Arc;

use sparkline_common::{Result, SchemaRef};
use sparkline_exec::{Partition, TaskContext};

pub use aggregate::HashAggregateExec;
pub use basic::{DistinctExec, FilterExec, LimitExec, ProjectExec, SortExec};
pub use exchange::{ExchangeExec, ExchangeMode};
pub use join::{HashJoinExec, NestedLoopJoinExec};
pub use planner::{ExecTableSource, PhysicalPlanner};
pub use scan::ScanExec;
pub use skyline_exec::{
    GlobalSkylineExec, IncompleteGlobalSkylineExec, LocalSkylineExec, MinMaxFilterExec,
};

/// A physical operator.
pub trait ExecutionPlan: fmt::Debug + Send + Sync {
    /// Operator name for plan display.
    fn name(&self) -> &'static str;

    /// Output schema.
    fn schema(&self) -> SchemaRef;

    /// Child operators.
    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>>;

    /// Execute, producing output partitions.
    fn execute(&self, ctx: &TaskContext) -> Result<Vec<Partition>>;

    /// One-line description (operator plus parameters).
    fn describe(&self) -> String {
        self.name().to_string()
    }
}

/// Render a physical plan tree, one operator per line.
pub fn display_physical(plan: &Arc<dyn ExecutionPlan>) -> String {
    fn build(plan: &Arc<dyn ExecutionPlan>, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&plan.describe());
        out.push('\n');
        for child in plan.children() {
            build(child, depth + 1, out);
        }
    }
    let mut out = String::new();
    build(plan, 0, &mut out);
    out
}

/// Estimated bytes held by a set of partitions (memory accounting).
pub(crate) fn partitions_bytes(parts: &[Partition]) -> usize {
    parts
        .iter()
        .map(|p| p.iter().map(|r| r.estimated_bytes()).sum::<usize>())
        .sum()
}
