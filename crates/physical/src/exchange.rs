//! Repartitioning (exchange) operators.
//!
//! The planner inserts exchanges to satisfy the distribution requirements
//! of the paper's skyline plans: `Single` realizes Spark's `AllTuples`
//! distribution (global skyline, sorts), `RoundRobin` re-balances, and
//! `NullBitmap` is the §5.7 distribution that routes tuples with the same
//! NULL pattern in the skyline dimensions to the same executor (built on
//! the engine's `IsNull` evaluation, like the paper's crafted expression).

use std::sync::Arc;

use sparkline_common::{Result, SchemaRef, SkylineSpec};
use sparkline_exec::{
    partition::{coalesce, flatten, hash_partition, split_evenly, total_rows},
    Partition, TaskContext,
};
use sparkline_skyline::null_bitmap;

use crate::ExecutionPlan;

/// How the exchange redistributes rows.
#[derive(Debug, Clone)]
pub enum ExchangeMode {
    /// All rows into one partition (Spark's `AllTuples`).
    Single,
    /// Even redistribution over the executor count.
    RoundRobin,
    /// Partition by the null bitmap of the skyline dimensions (§5.7).
    NullBitmap(SkylineSpec),
    /// Angle-based partitioning over the first two ranked skyline
    /// dimensions (the §7 future-work scheme of Vlachou et al.): tuples on
    /// the same price/quality trade-off angle share an executor, which
    /// improves local pruning. Requires two passes (global min/max for
    /// normalization, then routing).
    AngleBased(SkylineSpec),
}

/// Repartitioning operator.
#[derive(Debug)]
pub struct ExchangeExec {
    mode: ExchangeMode,
    input: Arc<dyn ExecutionPlan>,
}

impl ExchangeExec {
    /// Exchange with the given mode.
    pub fn new(mode: ExchangeMode, input: Arc<dyn ExecutionPlan>) -> Self {
        ExchangeExec { mode, input }
    }

    /// Convenience: gather everything onto one executor.
    pub fn single(input: Arc<dyn ExecutionPlan>) -> Self {
        ExchangeExec::new(ExchangeMode::Single, input)
    }
}

impl ExecutionPlan for ExchangeExec {
    fn name(&self) -> &'static str {
        "ExchangeExec"
    }

    fn schema(&self) -> SchemaRef {
        self.input.schema()
    }

    fn children(&self) -> Vec<&Arc<dyn ExecutionPlan>> {
        vec![&self.input]
    }

    fn execute(&self, ctx: &TaskContext) -> Result<Vec<Partition>> {
        let input = self.input.execute(ctx)?;
        ctx.deadline.check()?;
        ctx.metrics
            .rows_exchanged
            .fetch_add(total_rows(&input) as u64, std::sync::atomic::Ordering::Relaxed);
        let n = ctx.runtime.num_executors();
        Ok(match &self.mode {
            ExchangeMode::Single => coalesce(input),
            ExchangeMode::RoundRobin => split_evenly(flatten(input), n),
            ExchangeMode::NullBitmap(spec) => {
                hash_partition(input, n, |row| null_bitmap(row, spec))
            }
            ExchangeMode::AngleBased(spec) => angle_partition(input, n, spec),
        })
    }

    fn describe(&self) -> String {
        match &self.mode {
            ExchangeMode::Single => "ExchangeExec [AllTuples]".to_string(),
            ExchangeMode::RoundRobin => "ExchangeExec [RoundRobin]".to_string(),
            ExchangeMode::NullBitmap(spec) => format!(
                "ExchangeExec [NullBitmap on {} dims]",
                spec.dims.len()
            ),
            ExchangeMode::AngleBased(spec) => format!(
                "ExchangeExec [AngleBased on {} dims]",
                spec.dims.len().min(2)
            ),
        }
    }
}

/// Angle-based partitioning (Vlachou et al., SIGMOD 2008, simplified to
/// the first two ranked dimensions): normalize both dimensions to [0, 1]
/// with MIN/MAX direction folded in (smaller = better), compute the polar
/// angle of each tuple, and split the `[0, π/2]` range into equal sectors.
///
/// Correctness does not depend on the scheme — local/global skylines are
/// sound under *any* partitioning of complete data — so tuples that do not
/// admit the numeric mapping (NULL or non-numeric) are routed to sector 0.
fn angle_partition(
    parts: Vec<Partition>,
    n: usize,
    spec: &SkylineSpec,
) -> Vec<Partition> {
    let ranked: Vec<_> = spec.ranked_dims().take(2).copied().collect();
    if ranked.len() < 2 || n == 1 {
        // One ranked dimension has no angular structure; keep it simple.
        return split_evenly(flatten(parts), n);
    }
    let numeric = |row: &sparkline_common::Row, dim: &sparkline_common::SkylineDim| {
        match row.get(dim.index) {
            sparkline_common::Value::Int64(i) => Some(*i as f64),
            sparkline_common::Value::Float64(f) => Some(*f),
            sparkline_common::Value::Boolean(b) => Some(f64::from(*b)),
            _ => None,
        }
        .map(|v| {
            if dim.ty == sparkline_common::SkylineType::Max {
                -v
            } else {
                v
            }
        })
    };
    // Pass 1: global min/max per dimension for normalization.
    let mut lo = [f64::INFINITY; 2];
    let mut hi = [f64::NEG_INFINITY; 2];
    for part in &parts {
        for row in part {
            for (k, dim) in ranked.iter().enumerate() {
                if let Some(v) = numeric(row, dim) {
                    lo[k] = lo[k].min(v);
                    hi[k] = hi[k].max(v);
                }
            }
        }
    }
    let span = [
        (hi[0] - lo[0]).max(f64::MIN_POSITIVE),
        (hi[1] - lo[1]).max(f64::MIN_POSITIVE),
    ];
    // Pass 2: route by polar angle sector.
    let mut out: Vec<Partition> = (0..n).map(|_| Vec::new()).collect();
    for part in parts {
        for row in part {
            let sector = match (numeric(&row, &ranked[0]), numeric(&row, &ranked[1])) {
                (Some(x), Some(y)) => {
                    let nx = ((x - lo[0]) / span[0]).clamp(0.0, 1.0);
                    let ny = ((y - lo[1]) / span[1]).clamp(0.0, 1.0);
                    let theta = ny.atan2(nx); // [0, π/2]
                    ((theta / std::f64::consts::FRAC_PI_2) * n as f64) as usize
                }
                _ => 0,
            };
            out[sector.min(n - 1)].push(row);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanExec;
    use sparkline_common::{DataType, Field, Row, Schema, SkylineDim, Value};

    fn input(rows: Vec<Row>) -> Arc<dyn ExecutionPlan> {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64, true),
            Field::new("b", DataType::Int64, true),
        ])
        .into_ref();
        Arc::new(ScanExec::new("t", Arc::new(rows), schema))
    }

    fn rows_with_nulls() -> Vec<Row> {
        (0..40)
            .map(|i| {
                let a = if i % 3 == 0 { Value::Null } else { Value::Int64(i) };
                let b = if i % 5 == 0 { Value::Null } else { Value::Int64(i) };
                Row::new(vec![a, b])
            })
            .collect()
    }

    #[test]
    fn single_gathers_everything() {
        let plan = ExchangeExec::single(input(rows_with_nulls()));
        let ctx = TaskContext::new(4);
        let parts = plan.execute(&ctx).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 40);
        assert_eq!(
            ctx.metrics
                .rows_exchanged
                .load(std::sync::atomic::Ordering::Relaxed),
            40
        );
    }

    #[test]
    fn null_bitmap_groups_same_pattern() {
        let spec = SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::min(1)]);
        let plan = ExchangeExec::new(ExchangeMode::NullBitmap(spec.clone()), input(rows_with_nulls()));
        let ctx = TaskContext::new(3);
        let parts = plan.execute(&ctx).unwrap();
        assert_eq!(total_rows(&parts), 40);
        // Every bitmap class must live in exactly one partition.
        for bitmap in 0u64..4 {
            let holders: Vec<usize> = parts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.iter().any(|r| null_bitmap(r, &spec) == bitmap))
                .map(|(i, _)| i)
                .collect();
            assert!(holders.len() <= 1, "bitmap {bitmap} split: {holders:?}");
        }
    }

    #[test]
    fn angle_based_partitions_by_trade_off() {
        use sparkline_common::SkylineDim;
        // Points on two extreme trade-offs: low-a/high-b vs high-a/low-b
        // (both MIN dims) must land in different sectors.
        let rows: Vec<Row> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    Row::new(vec![Value::Int64(1), Value::Int64(100 + i)])
                } else {
                    Row::new(vec![Value::Int64(100 + i), Value::Int64(1)])
                }
            })
            .collect();
        let spec = SkylineSpec::new(vec![SkylineDim::min(0), SkylineDim::min(1)]);
        let plan = ExchangeExec::new(ExchangeMode::AngleBased(spec), input(rows));
        let ctx = TaskContext::new(4);
        let parts = plan.execute(&ctx).unwrap();
        assert_eq!(total_rows(&parts), 20);
        // Low-a points (steep angle) and low-b points (flat angle) are in
        // different partitions.
        let holding = |pred: &dyn Fn(&Row) -> bool| -> Vec<usize> {
            parts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.iter().any(|r| pred(r)))
                .map(|(i, _)| i)
                .collect()
        };
        let steep = holding(&|r| r.get(0) == &Value::Int64(1));
        let flat = holding(&|r| r.get(1) == &Value::Int64(1));
        assert!(steep.iter().all(|s| !flat.contains(s)), "{steep:?} vs {flat:?}");
    }

    #[test]
    fn round_robin_balances() {
        let plan = ExchangeExec::new(ExchangeMode::RoundRobin, input(rows_with_nulls()));
        let ctx = TaskContext::new(4);
        let parts = plan.execute(&ctx).unwrap();
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|p| p.len() == 10));
    }
}
